//! Quickstart: discover what to extract from a web source.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! We have a cocktail website, an existing knowledge base that already knows
//! its classic cocktails, and automated extractions covering both classics
//! and (new to the KB) tiki drinks. MIDAS should tell us to extract the tiki
//! slice — and only that.

use midas::prelude::*;

fn main() {
    let mut terms = Interner::new();
    let page = SourceUrl::parse("http://cocktails.example.org/directory").unwrap();

    let mut facts = Vec::new();
    let mut kb = KnowledgeBase::new();

    // Classic cocktails: already in the knowledge base.
    for name in ["margarita", "martini", "negroni", "manhattan"] {
        for (p, v) in [("type", "cocktail"), ("style", "classic")] {
            let f = Fact::intern(&mut terms, name, p, v);
            facts.push(f);
            kb.insert(f);
        }
    }
    // Tiki drinks: profiled by the site, absent from the knowledge base.
    for name in [
        "mai-tai",
        "zombie",
        "painkiller",
        "jungle-bird",
        "hurricane",
    ] {
        for (p, v) in [("type", "cocktail"), ("style", "tiki")] {
            facts.push(Fact::intern(&mut terms, name, p, v));
        }
    }

    let source = SourceFacts::new(page, facts);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let slices = alg.run(&source, &kb);

    println!("MIDAS suggests extracting {} slice(s):\n", slices.len());
    for s in &slices {
        println!("  {}", s.describe(&terms));
        println!(
            "    {} entities, {} facts ({} new), profit {:.3}",
            s.entities.len(),
            s.num_facts,
            s.num_new_facts,
            s.profit
        );
    }

    assert_eq!(slices.len(), 1, "exactly the tiki slice");
    assert!(slices[0].describe(&terms).contains("style = tiki"));
    println!("\nThe classics are already known — only the tiki slice is worth extraction.");
}
