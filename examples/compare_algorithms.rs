//! Head-to-head comparison of MIDAS against the three baselines on the
//! §IV-D synthetic workload (a miniature of Figure 11).
//!
//! ```sh
//! cargo run --release --example compare_algorithms
//! ```

use midas::extract::synthetic::{generate, SyntheticConfig};
use midas::prelude::*;
use std::time::Instant;

fn main() {
    let ds = generate(&SyntheticConfig::new(5_000, 20, 10, 42));
    let src = &ds.sources[0];
    println!(
        "Synthetic source: {} facts, 20 slices, 10 of them optimal.\n",
        src.len()
    );

    let cfg = MidasConfig::default();
    let detectors: Vec<(&str, Box<dyn SliceDetector>)> = vec![
        ("midas", Box::new(MidasAlg::new(cfg.clone()))),
        ("greedy", Box::new(Greedy::new(cfg.cost))),
        ("aggcluster", Box::new(AggCluster::new(cfg.cost))),
        ("naive", Box::new(Naive::new(cfg.cost))),
    ];

    let mut table = Table::new(
        "Algorithm comparison (n=5000, b=20, m=10)",
        &[
            "algorithm",
            "slices",
            "precision",
            "recall",
            "F-measure",
            "time",
        ],
    );
    for (name, det) in &detectors {
        let start = Instant::now();
        let slices: Vec<DiscoveredSlice> = det
            .detect(DetectInput {
                source: src,
                kb: &ds.kb,
                seeds: &[],
            })
            .into_iter()
            .filter(|s| s.profit > 0.0)
            .collect();
        let elapsed = start.elapsed();
        let prf = match_to_gold(&slices, &ds.truth.gold);
        table.row(&[
            (*name).to_owned(),
            slices.len().to_string(),
            format!("{:.3}", prf.precision),
            format!("{:.3}", prf.recall),
            format!("{:.3}", prf.f_measure),
            format!("{elapsed:.2?}"),
        ]);
    }
    print!("{}", table.render());
    println!("\nMIDAS recovers all ten optimal slices; GREEDY is capped at one slice;");
    println!("AGGCLUSTER is accurate but slower; NAIVE cannot describe slices at all.");
}
