//! The paper's running example, end to end (Figures 2, 4, 5 and Example 16).
//!
//! ```sh
//! cargo run --example space_programs
//! ```
//!
//! Thirteen facts extracted from five pages of `http://space.skyrocket.de`;
//! Freebase already knows the space programs but not the rocket families.
//! MIDASalg on the collapsed source must report exactly S5 ("rocket families
//! sponsored by NASA") with profit 4.327, and the multi-source framework
//! must report it at the `/doc_lau_fam` sub-domain granularity.

use midas::core::fixtures::{skyrocket, skyrocket_pages};
use midas::prelude::*;

fn main() {
    let mut terms = Interner::new();

    // ---- Single-source MIDASalg (Figures 4 & 5) --------------------------
    let (source, kb) = skyrocket(&mut terms);
    println!(
        "Source {} has {} extracted facts, {} new to Freebase.\n",
        source.url,
        source.len(),
        kb.count_new(source.facts.iter())
    );

    let alg = MidasAlg::new(MidasConfig::running_example());
    let slices = alg.run(&source, &kb);
    println!("MIDASalg reports {} slice(s):", slices.len());
    for s in &slices {
        println!(
            "  {}  (profit {:.3}, {} new facts)",
            s.describe(&terms),
            s.profit,
            s.num_new_facts
        );
    }
    assert_eq!(slices.len(), 1);
    assert!((slices[0].profit - 4.327).abs() < 1e-9, "Figure 5's f(S5)");

    // ---- Multi-source framework (Example 16) -----------------------------
    let mut terms = Interner::new();
    let (pages, kb) = skyrocket_pages(&mut terms);
    println!("\nRunning the framework over {} pages…", pages.len());
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost).with_threads(2);
    let report = fw.run(pages, &kb);
    println!(
        "{} round(s), {} detector call(s), {} surviving slice(s):",
        report.rounds,
        report.detect_calls,
        report.slices.len()
    );
    for s in &report.slices {
        println!("  {}", s.describe(&terms));
    }
    assert_eq!(report.slices.len(), 1);
    assert_eq!(
        report.slices[0].source.as_str(),
        "http://space.skyrocket.de/doc_lau_fam",
        "S5 is consolidated to the sub-domain granularity"
    );
    println!("\nExample 16 reproduced: the two page slices consolidated into S5.");
}
