//! Augmenting a Freebase-like knowledge base from a KnowledgeVault-like
//! extraction corpus — the Figure 3 scenario.
//!
//! ```sh
//! cargo run --release --example augment_freebase
//! ```
//!
//! The corpus plants six verticals (golf courses, marine species, board
//! games, …) whose content is largely missing from the knowledge base,
//! buried inside domains whose remaining content is already known. MIDAS
//! must surface all six as its top suggestions.

use midas::extract::kvault::{generate, KVaultConfig};
use midas::prelude::*;

fn main() {
    let ds = generate(&KVaultConfig {
        scale: 0.5,
        seed: 42,
    });
    println!(
        "Corpus: {} page sources, {} facts; knowledge base: {} facts.\n",
        ds.sources.len(),
        ds.total_facts(),
        ds.kb.len()
    );

    let result = run_midas_framework(&MidasConfig::default(), ds.sources.clone(), &ds.kb, 4);
    println!(
        "MIDAS found {} slices in {:?}. Top suggestions:\n",
        result.slices.len(),
        result.duration
    );

    let mut table = Table::new(
        "What to extract, and from where",
        &["#", "slice", "source", "new facts", "new ratio"],
    );
    for (i, s) in result.slices.iter().take(8).enumerate() {
        table.row(&[
            (i + 1).to_string(),
            s.describe(&ds.terms)
                .split(" @ ")
                .next()
                .unwrap_or_default()
                .to_owned(),
            s.source.to_string(),
            s.num_new_facts.to_string(),
            format!("{:.0}%", s.new_ratio() * 100.0),
        ]);
    }
    print!("{}", table.render());

    // All six planted verticals must be recovered by the top slices.
    let recovered = ds
        .truth
        .gold
        .iter()
        .filter(|g| {
            result
                .slices
                .iter()
                .take(10)
                .any(|s| g.jaccard_entities(&s.entities) >= 0.95)
        })
        .count();
    println!(
        "\nRecovered {recovered} of {} planted verticals.",
        ds.truth.gold.len()
    );
    assert!(recovered >= 5);
}
