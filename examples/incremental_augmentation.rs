//! The operational loop: suggest → extract → augment → repeat.
//!
//! ```sh
//! cargo run --release --example incremental_augmentation
//! ```
//!
//! MIDAS suggests the most profitable slice; we "extract" it (simulated as a
//! perfect crawl), load the facts, and ask again. Watch the knowledge base
//! saturate and the suggestions dry up.

use midas::core::incremental::Augmenter;
use midas::extract::slim::{generate, SlimConfig, SlimFlavor};
use midas::prelude::*;

fn main() {
    let ds = generate(&SlimConfig {
        flavor: SlimFlavor::ReVerb,
        scale: 0.002,
        seed: 42,
    });
    println!(
        "Corpus: {} sources, {} facts. Starting with an empty knowledge base.\n",
        ds.sources.len(),
        ds.total_facts()
    );

    let mut augmenter = Augmenter::new(
        MidasConfig::default(),
        ds.sources.clone(),
        KnowledgeBase::new(),
    )
    .with_threads(4);

    let mut round = 0;
    loop {
        round += 1;
        let suggestions = augmenter.suggest();
        let Some(best) = suggestions.iter().find(|s| s.profit > 0.0) else {
            println!("round {round}: nothing left worth extracting — saturated.");
            break;
        };
        let remaining = suggestions.iter().filter(|s| s.profit > 0.0).count();
        let step = augmenter.accept(best);
        println!(
            "round {round}: accepted \"{}\" (+{} facts, KB now {}; {} suggestions remained)",
            step.slice.describe(&ds.terms),
            step.facts_added,
            step.kb_size,
            remaining
        );
        if round >= 80 {
            println!("stopping after 80 rounds");
            break;
        }
    }

    println!(
        "\nAccepted {} slices; final knowledge base holds {} facts.",
        augmenter.history().len(),
        augmenter.kb().len()
    );
    assert!(augmenter.history().len() >= 10, "many slices were absorbed");
}
