//! Integration: cross-algorithm contracts every detector must satisfy.

use midas::extract::slim::{generate as slim_gen, SlimConfig, SlimFlavor};
use midas::extract::synthetic::{generate as syn_gen, SyntheticConfig};
use midas::prelude::*;

fn detectors(cost: CostModel) -> Vec<(&'static str, Box<dyn SliceDetector>)> {
    vec![
        (
            "midas",
            Box::new(MidasAlg::new(MidasConfig::default().with_cost(cost))),
        ),
        ("greedy", Box::new(Greedy::new(cost))),
        ("aggcluster", Box::new(AggCluster::new(cost))),
        ("naive", Box::new(Naive::new(cost))),
    ]
}

/// Structural invariants of every returned slice, for every detector.
#[test]
fn slices_satisfy_structural_invariants() {
    let ds = syn_gen(&SyntheticConfig::new(2_000, 20, 5, 3));
    let src = &ds.sources[0];
    for (name, det) in detectors(CostModel::default()) {
        for s in det.detect(DetectInput {
            source: src,
            kb: &ds.kb,
            seeds: &[],
        }) {
            assert!(!s.entities.is_empty(), "{name}: empty extent");
            assert!(s.num_new_facts <= s.num_facts, "{name}: new > total");
            assert!(
                s.entities.windows(2).all(|w| w[0] < w[1]),
                "{name}: entities not sorted/deduped"
            );
            assert!(
                s.properties.windows(2).all(|w| w[0] <= w[1]),
                "{name}: properties not sorted"
            );
            assert_eq!(s.source, src.url, "{name}: wrong source URL");
            assert!(s.profit.is_finite(), "{name}: non-finite profit");
        }
    }
}

/// The reported per-slice profit must equal an independent recomputation
/// from the slice's entity extent (for the property-defined detectors).
#[test]
fn reported_profits_are_recomputable() {
    let ds = syn_gen(&SyntheticConfig::new(2_000, 20, 5, 4));
    let src = &ds.sources[0];
    let cost = CostModel::default();
    let table = FactTable::build(src, &ds.kb);
    let ctx = ProfitCtx::new(&table, cost);
    for (name, det) in detectors(cost) {
        for s in det.detect(DetectInput {
            source: src,
            kb: &ds.kb,
            seeds: &[],
        }) {
            let ids: Vec<u32> = s.entities.iter().filter_map(|&e| table.entity(e)).collect();
            assert_eq!(ids.len(), s.entities.len(), "{name}: unknown entity");
            let extent = ExtentSet::from_unsorted(table.num_entities() as u32, ids);
            let recomputed = ctx.profit_single(&extent);
            assert!(
                (recomputed - s.profit).abs() < 1e-6,
                "{name}: profit {} vs recomputed {recomputed}",
                s.profit
            );
        }
    }
}

/// Every selected slice covers at least one previously-uncovered entity: a
/// fully-covered candidate always has marginal profit −f_p < 0, so
/// Algorithm 1 can never add it. (Partial entity overlap *is* allowed —
/// e.g. an entity carrying the defining properties of two slices.)
#[test]
fn midas_slices_add_fresh_coverage() {
    let ds = syn_gen(&SyntheticConfig::new(5_000, 20, 10, 6));
    let alg = MidasAlg::new(MidasConfig::default());
    let slices = alg.run(&ds.sources[0], &ds.kb);
    assert!(!slices.is_empty());
    let mut covered = std::collections::BTreeSet::new();
    for s in &slices {
        let fresh = s.entities.iter().filter(|e| !covered.contains(*e)).count();
        assert!(fresh > 0, "slice added no uncovered entity");
        covered.extend(s.entities.iter().copied());
    }
}

/// Framework determinism: 1 thread and 8 threads produce identical output
/// on a multi-domain corpus.
#[test]
fn framework_parallelism_is_deterministic() {
    let ds = slim_gen(&SlimConfig {
        flavor: SlimFlavor::ReVerb,
        scale: 0.002,
        seed: 13,
    });
    let cfg = MidasConfig::default();
    let run = |threads| {
        let alg = MidasAlg::new(cfg.clone());
        Framework::new(&alg, cfg.cost)
            .with_threads(threads)
            .run(ds.sources.clone(), &ds.kb)
            .slices
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.source, y.source);
        assert_eq!(x.entities, y.entities);
        assert_eq!(x.properties, y.properties);
    }
}

/// All detectors plug into the framework and produce *some* sane output.
#[test]
fn framework_accepts_any_detector() {
    let ds = slim_gen(&SlimConfig {
        flavor: SlimFlavor::Nell,
        scale: 0.002,
        seed: 19,
    });
    let cost = CostModel::default();
    let greedy = Greedy::new(cost);
    let report = Framework::new(&greedy, cost).run(ds.sources.clone(), &ds.kb);
    assert!(!report.slices.is_empty());
    for s in &report.slices {
        assert!(s.profit > 0.0, "positive-only export policy");
    }
}

/// An algorithm run against a knowledge base that already contains the
/// whole corpus returns nothing actionable.
#[test]
fn saturated_kb_yields_nothing_actionable() {
    let ds = syn_gen(&SyntheticConfig::new(1_000, 20, 5, 8));
    let src = &ds.sources[0];
    let full_kb: KnowledgeBase = src.facts.iter().copied().collect();
    for (name, det) in detectors(CostModel::default()) {
        let positive = det
            .detect(DetectInput {
                source: src,
                kb: &full_kb,
                seeds: &[],
            })
            .into_iter()
            .filter(|s| s.profit > 0.0)
            .count();
        assert_eq!(positive, 0, "{name} found profit in a saturated KB");
    }
}
