//! Integration: the paper's running example through the public facade API —
//! every number the paper prints for Figures 2/4/5 and Examples 10–16.

use midas::core::fixtures::{skyrocket, skyrocket_pages};
use midas::prelude::*;

#[test]
fn figure_2_fixture_shape() {
    let mut terms = Interner::new();
    let (source, kb) = skyrocket(&mut terms);
    assert_eq!(source.len(), 13, "t1–t13");
    assert_eq!(
        kb.count_new(source.facts.iter()),
        6,
        "t6–t8, t11–t13 are new"
    );
}

#[test]
fn figure_4_fact_table_and_properties() {
    let mut terms = Interner::new();
    let (source, kb) = skyrocket(&mut terms);
    let table = FactTable::build(&source, &kb);
    assert_eq!(table.num_entities(), 5, "e1–e5");
    assert_eq!(table.catalog().len(), 6, "c1–c6");
    let c6 = table
        .catalog()
        .get(terms.get("sponsor").unwrap(), terms.get("NASA").unwrap())
        .unwrap();
    assert_eq!(table.catalog().extent(c6).len(), 5, "c6 covers everything");
}

#[test]
fn figure_5_profits_through_public_api() {
    let mut terms = Interner::new();
    let (source, kb) = skyrocket(&mut terms);
    let table = FactTable::build(&source, &kb);
    let cfg = MidasConfig::running_example();
    let ctx = ProfitCtx::new(&table, cfg.cost);
    let extent_of = |props: &[(&str, &str)]| {
        let ids: Vec<_> = props
            .iter()
            .map(|&(p, v)| {
                table
                    .catalog()
                    .get(terms.get(p).unwrap(), terms.get(v).unwrap())
                    .unwrap()
            })
            .collect();
        table.extent_of(&ids)
    };
    let s5 = extent_of(&[("category", "rocket_family"), ("sponsor", "NASA")]);
    let s4 = extent_of(&[("category", "space_program"), ("sponsor", "NASA")]);
    let s6 = extent_of(&[("sponsor", "NASA")]);
    assert!((ctx.profit_single(&s5) - 4.327).abs() < 1e-9);
    assert!((ctx.profit_single(&s4) + 1.083).abs() < 1e-9);
    assert!((ctx.profit_single(&s6) - 4.257).abs() < 1e-9);
}

#[test]
fn example_14_midasalg_returns_s5_only() {
    let mut terms = Interner::new();
    let (source, kb) = skyrocket(&mut terms);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let slices = alg.run(&source, &kb);
    assert_eq!(slices.len(), 1);
    let desc = slices[0].describe(&terms);
    assert!(desc.contains("category = rocket_family"));
    assert!(desc.contains("sponsor = NASA"));
}

#[test]
fn example_16_framework_consolidates_to_subdomain() {
    let mut terms = Interner::new();
    let (pages, kb) = skyrocket_pages(&mut terms);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost);
    let report = fw.run(pages, &kb);
    assert_eq!(report.slices.len(), 1);
    assert_eq!(
        report.slices[0].source.as_str(),
        "http://space.skyrocket.de/doc_lau_fam"
    );
    assert_eq!(report.slices[0].num_new_facts, 6);
}

#[test]
fn baselines_on_the_running_example() {
    let mut terms = Interner::new();
    let (source, kb) = skyrocket(&mut terms);
    let cost = CostModel::running_example();

    // GREEDY finds an S5-equivalent slice (single-source, single slice).
    let greedy = Greedy::new(cost);
    let g = greedy.detect(DetectInput {
        source: &source,
        kb: &kb,
        seeds: &[],
    });
    assert_eq!(g.len(), 1);
    assert_eq!(g[0].entities.len(), 2);

    // AGGCLUSTER over-merges into "sponsored by NASA" — a local optimum
    // with strictly lower profit than S5.
    let agg = AggCluster::new(cost);
    let a = agg.detect(DetectInput {
        source: &source,
        kb: &kb,
        seeds: &[],
    });
    assert!(!a.is_empty());
    assert_eq!(a[0].entities.len(), 5);
    assert!(a[0].profit < g[0].profit);

    // NAIVE reports the whole source.
    let naive = Naive::new(cost);
    let n = naive.detect(DetectInput {
        source: &source,
        kb: &kb,
        seeds: &[],
    });
    assert_eq!(n.len(), 1);
    assert!(n[0].properties.is_empty());
    assert_eq!(n[0].num_facts, 13);
}
