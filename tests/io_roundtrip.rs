//! Integration: persistence round-trips across the kb and extract crates.

use midas::extract::synthetic::{generate, SyntheticConfig};
use midas::kb::io::{read_ntriples, read_tsv, write_ntriples, write_tsv};
use midas::prelude::*;

/// A generated corpus survives a TSV round-trip with identical slice
/// discovery results.
#[test]
fn tsv_round_trip_preserves_discovery() {
    let ds = generate(&SyntheticConfig::new(1_500, 20, 5, 2));
    let src = &ds.sources[0];

    let mut buf = Vec::new();
    write_tsv(&mut buf, &ds.terms, src.facts.iter().copied()).unwrap();

    let mut terms2 = Interner::new();
    let facts2 = read_tsv(&buf[..], &mut terms2).unwrap();
    assert_eq!(facts2.len(), src.facts.len());

    // Rebuild the KB in the new symbol space.
    let mut kb2 = KnowledgeBase::new();
    for f in ds.kb.iter() {
        kb2.insert(Fact::intern(
            &mut terms2,
            ds.terms.resolve(f.subject),
            ds.terms.resolve(f.predicate),
            ds.terms.resolve(f.object),
        ));
    }
    let src2 = SourceFacts::new(src.url.clone(), facts2);

    let alg = MidasAlg::new(MidasConfig::default());
    let s1 = alg.run(src, &ds.kb);
    let s2 = alg.run(&src2, &kb2);
    assert_eq!(s1.len(), s2.len());
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.entities.len(), b.entities.len());
        assert_eq!(a.num_new_facts, b.num_new_facts);
        assert!((a.profit - b.profit).abs() < 1e-9);
    }
}

/// N-Triples round-trip over the running example, cross-format.
#[test]
fn ntriples_round_trip_matches_tsv() {
    let mut terms = Interner::new();
    let (src, _) = midas::core::fixtures::skyrocket(&mut terms);

    let mut nt = Vec::new();
    write_ntriples(&mut nt, &terms, src.facts.iter().copied()).unwrap();
    let mut tsv = Vec::new();
    write_tsv(&mut tsv, &terms, src.facts.iter().copied()).unwrap();

    let mut t1 = Interner::new();
    let from_nt = read_ntriples(&nt[..], &mut t1).unwrap();
    let mut t2 = Interner::new();
    let from_tsv = read_tsv(&tsv[..], &mut t2).unwrap();

    assert_eq!(from_nt.len(), from_tsv.len());
    for (a, b) in from_nt.iter().zip(&from_tsv) {
        assert_eq!(t1.resolve(a.subject), t2.resolve(b.subject));
        assert_eq!(t1.resolve(a.predicate), t2.resolve(b.predicate));
        assert_eq!(t1.resolve(a.object), t2.resolve(b.object));
    }
}

/// Terms with every awkward character survive both formats.
#[test]
fn awkward_terms_survive_both_formats() {
    let mut terms = Interner::new();
    let nasty = [
        ("tab\there", "new\nline", "back\\slash"),
        ("<angles>", "percent%25", "dot ."),
        ("ünïcode ✓", "emoji 🚀", "mixed\t<%\n>"),
    ];
    let facts: Vec<Fact> = nasty
        .iter()
        .map(|&(s, p, o)| Fact::intern(&mut terms, s, p, o))
        .collect();

    for format in ["tsv", "nt"] {
        let mut buf = Vec::new();
        match format {
            "tsv" => write_tsv(&mut buf, &terms, facts.iter().copied()).unwrap(),
            _ => write_ntriples(&mut buf, &terms, facts.iter().copied()).unwrap(),
        }
        let mut t2 = Interner::new();
        let back = match format {
            "tsv" => read_tsv(&buf[..], &mut t2).unwrap(),
            _ => read_ntriples(&buf[..], &mut t2).unwrap(),
        };
        assert_eq!(back.len(), facts.len(), "{format}");
        for (orig, round) in facts.iter().zip(&back) {
            assert_eq!(
                terms.resolve(orig.subject),
                t2.resolve(round.subject),
                "{format}"
            );
            assert_eq!(
                terms.resolve(orig.predicate),
                t2.resolve(round.predicate),
                "{format}"
            );
            assert_eq!(
                terms.resolve(orig.object),
                t2.resolve(round.object),
                "{format}"
            );
        }
    }
}
