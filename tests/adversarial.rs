//! Failure injection and adversarial inputs across the public API.

use midas::prelude::*;

fn url(s: &str) -> SourceUrl {
    SourceUrl::parse(s).unwrap()
}

/// A source where one entity has dozens of values for one predicate — the
/// multi-valued cross-product blow-up must stay capped.
#[test]
fn massively_multivalued_entity_is_bounded() {
    let mut t = Interner::new();
    let mut facts = Vec::new();
    for i in 0..40 {
        facts.push(Fact::intern(&mut t, "hub", "links_to", &format!("v{i}")));
        facts.push(Fact::intern(&mut t, "hub", "tag", &format!("t{i}")));
    }
    let src = SourceFacts::new(url("http://hub.example/page"), facts);
    let mut cfg = MidasConfig::running_example();
    cfg.max_initial_combinations_per_entity = 16;
    let alg = MidasAlg::new(cfg);
    // Must terminate quickly and produce at most a handful of slices.
    let slices = alg.run(&src, &KnowledgeBase::new());
    assert!(slices.len() <= 16);
}

/// An entity with many distinct single-valued predicates — the 2^k property
/// lattice must be bounded by the per-entity property cap.
#[test]
fn wide_entity_lattice_is_bounded() {
    let mut t = Interner::new();
    let mut facts = Vec::new();
    for e in 0..4 {
        for p in 0..30 {
            facts.push(Fact::intern(
                &mut t,
                &format!("e{e}"),
                &format!("p{p}"),
                "shared",
            ));
        }
    }
    let src = SourceFacts::new(url("http://wide.example/page"), facts);
    let mut cfg = MidasConfig::running_example();
    cfg.max_properties_per_entity = 8;
    cfg.max_hierarchy_nodes = 100_000;
    let alg = MidasAlg::new(cfg);
    let slices = alg.run(&src, &KnowledgeBase::new());
    // 4 entities share all properties: one slice describes them all.
    assert_eq!(slices.len(), 1);
    assert_eq!(slices[0].entities.len(), 4);
    assert!(slices[0].properties.len() <= 8);
}

/// The hierarchy node cap degrades gracefully instead of exhausting memory.
#[test]
fn hierarchy_node_cap_degrades_gracefully() {
    let mut t = Interner::new();
    let mut facts = Vec::new();
    for e in 0..20 {
        for p in 0..10 {
            // Two value groups → plenty of distinct property subsets.
            facts.push(Fact::intern(
                &mut t,
                &format!("e{e}"),
                &format!("p{p}"),
                &format!("v{}", e % 2),
            ));
        }
    }
    let src = SourceFacts::new(url("http://dense.example/page"), facts);
    let mut cfg = MidasConfig::running_example();
    cfg.max_hierarchy_nodes = 50;
    let alg = MidasAlg::new(cfg);
    // Truncated construction must still return valid (possibly suboptimal)
    // slices without panicking.
    let slices = alg.run(&src, &KnowledgeBase::new());
    for s in &slices {
        assert!(!s.entities.is_empty());
        assert!(s.num_new_facts <= s.num_facts);
    }
}

/// Single-fact and single-entity sources across every algorithm.
#[test]
fn degenerate_sources_are_handled_by_all_algorithms() {
    let mut t = Interner::new();
    let f = Fact::intern(&mut t, "only", "p", "v");
    let src = SourceFacts::new(url("http://tiny.example/page"), vec![f]);
    let kb = KnowledgeBase::new();
    let cost = CostModel::running_example();
    let detectors: Vec<Box<dyn SliceDetector>> = vec![
        Box::new(MidasAlg::new(MidasConfig::running_example())),
        Box::new(Greedy::new(cost)),
        Box::new(AggCluster::new(cost)),
        Box::new(Naive::new(cost)),
    ];
    for det in &detectors {
        let out = det.detect(DetectInput {
            source: &src,
            kb: &kb,
            seeds: &[],
        });
        for s in &out {
            assert_eq!(s.entities.len(), 1);
            assert_eq!(s.num_facts, 1);
        }
    }
}

/// Unicode-heavy terms and URLs flow through discovery and description.
#[test]
fn unicode_terms_and_urls() {
    let mut t = Interner::new();
    let mut facts = Vec::new();
    for i in 0..6 {
        facts.push(Fact::intern(
            &mut t,
            &format!("飲み物{i}"),
            "種類",
            "カクテル",
        ));
        facts.push(Fact::intern(
            &mut t,
            &format!("飲み物{i}"),
            "味",
            &format!("风味{i}"),
        ));
    }
    let src = SourceFacts::new(url("https://例え.jp/ドリンク/一覧"), facts);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let slices = alg.run(&src, &KnowledgeBase::new());
    assert_eq!(slices.len(), 1);
    let desc = slices[0].describe(&t);
    assert!(desc.contains("種類 = カクテル"), "{desc}");
}

/// A framework run where every page belongs to a different domain — no
/// consolidation opportunities, but everything must still work.
#[test]
fn framework_with_all_distinct_domains() {
    let mut t = Interner::new();
    let mut sources = Vec::new();
    for d in 0..12 {
        let mut facts = Vec::new();
        for e in 0..6 {
            facts.push(Fact::intern(
                &mut t,
                &format!("d{d}e{e}"),
                "kind",
                &format!("k{d}"),
            ));
            facts.push(Fact::intern(
                &mut t,
                &format!("d{d}e{e}"),
                "id",
                &format!("i{d}{e}"),
            ));
        }
        sources.push(SourceFacts::new(
            url(&format!("http://domain{d}.example/page.html")),
            facts,
        ));
    }
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost).with_threads(4);
    let report = fw.run(sources, &KnowledgeBase::new());
    assert_eq!(report.slices.len(), 12, "one slice per domain");
}

/// Deeply nested URL hierarchies (10 levels) propagate correctly.
#[test]
fn deep_url_hierarchy_propagates() {
    let mut t = Interner::new();
    let deep = "http://deep.example/a/b/c/d/e/f/g/h/i/page.html";
    let mut facts = Vec::new();
    for e in 0..8 {
        facts.push(Fact::intern(&mut t, &format!("x{e}"), "kind", "thing"));
        facts.push(Fact::intern(
            &mut t,
            &format!("x{e}"),
            "num",
            &format!("{e}"),
        ));
    }
    let src = SourceFacts::new(url(deep), facts);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost);
    let report = fw.run(vec![src], &KnowledgeBase::new());
    assert_eq!(report.slices.len(), 1);
    assert!(report.rounds >= 9, "one round per level: {}", report.rounds);
}

/// A knowledge base far larger than the corpus (augmentation, not creation).
#[test]
fn huge_kb_small_corpus() {
    let mut t = Interner::new();
    let mut kb = KnowledgeBase::new();
    for i in 0..50_000 {
        kb.insert(Fact::intern(&mut t, &format!("known{i}"), "type", "old"));
    }
    let mut facts = Vec::new();
    for e in 0..10 {
        facts.push(Fact::intern(
            &mut t,
            &format!("fresh{e}"),
            "type",
            "new_thing",
        ));
        facts.push(Fact::intern(
            &mut t,
            &format!("fresh{e}"),
            "val",
            &format!("{e}"),
        ));
    }
    let src = SourceFacts::new(url("http://fresh.example/page"), facts);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let slices = alg.run(&src, &kb);
    assert_eq!(slices.len(), 1);
    assert_eq!(slices[0].num_new_facts, 20);
}
