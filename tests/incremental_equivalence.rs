//! Incremental-vs-rebuild equivalence: at every round of the augmentation
//! loop, `Augmenter::suggest` (cached, dirty-subtree re-runs only) must be
//! bit-identical — slices *and* quarantine — to a from-scratch
//! `Framework::run` on the same knowledge-base state, across the
//! threads × stream-window matrix, clean and with injected faults.
//!
//! The fault-injection plan is process-global, so tests that install one
//! serialise on [`PLAN_LOCK`] (this file is its own test binary).

use midas::core::{faultinject, Augmenter, FrameworkReport};
use midas::prelude::*;
use std::sync::{Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Holds the global-plan lock for one test and clears any installed plan on
/// drop, so a failing test cannot poison the ones after it.
struct PlanSession(#[allow(dead_code)] MutexGuard<'static, ()>);

fn plan_session() -> PlanSession {
    PlanSession(PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Drop for PlanSession {
    fn drop(&mut self) {
        faultinject::clear();
    }
}

fn url(s: &str) -> SourceUrl {
    SourceUrl::parse(s).unwrap()
}

/// `pages` pages under `section`, each with `per_page` entities of one
/// vertical (2 defining properties + 1 unique fact per entity).
fn vertical_pages(
    t: &mut Interner,
    section: &str,
    stem: &str,
    pages: usize,
    per_page: usize,
) -> Vec<SourceFacts> {
    let mut out = Vec::new();
    for p in 0..pages {
        let mut facts = Vec::new();
        for e in 0..per_page {
            let name = format!("{stem}_{p}_{e}");
            facts.push(Fact::intern(t, &name, "kind", stem));
            facts.push(Fact::intern(t, &name, "site", &format!("{stem}_dir")));
            facts.push(Fact::intern(t, &name, "serial", &format!("{stem}{p}{e}")));
        }
        out.push(SourceFacts::new(
            url(&format!("{section}/page{p}.html")),
            facts,
        ));
    }
    out
}

/// 12 sources: 4 single-vertical domains of descending richness, so the
/// saturation loop accepts the verticals one by one over several rounds.
fn multi_vertical_corpus(t: &mut Interner) -> Vec<SourceFacts> {
    let mut sources = Vec::new();
    for (d, per_page) in [(0usize, 8usize), (1, 6), (2, 4), (3, 3)] {
        sources.extend(vertical_pages(
            t,
            &format!("http://domain{d}.example.org/dir"),
            &format!("stem{d}"),
            3,
            per_page,
        ));
    }
    sources
}

fn config_for(window: Option<usize>) -> MidasConfig {
    MidasConfig {
        stream_window: window,
        ..MidasConfig::running_example()
    }
}

/// Slices bit-identical and quarantine entry-for-entry identical. The
/// execution counters intentionally differ (`detect_calls` counts only
/// executed tasks on the incremental side), so they are not compared.
fn assert_round_identical(incr: &FrameworkReport, fresh: &FrameworkReport) {
    assert_eq!(incr.slices.len(), fresh.slices.len(), "slice counts differ");
    for (x, y) in incr.slices.iter().zip(&fresh.slices) {
        assert_eq!(x.source, y.source);
        assert_eq!(x.properties, y.properties);
        assert_eq!(x.entities, y.entities);
        assert_eq!(x.num_facts, y.num_facts);
        assert_eq!(x.num_new_facts, y.num_new_facts);
        assert_eq!(
            x.profit.to_bits(),
            y.profit.to_bits(),
            "profits not bit-identical"
        );
    }
    assert_eq!(incr.quarantine.len(), fresh.quarantine.len());
    for (x, y) in incr.quarantine.iter().zip(fresh.quarantine.iter()) {
        assert_eq!(x.source, y.source);
        assert_eq!(x.stage, y.stage);
        assert_eq!(x.cause.tag(), y.cause.tag());
        assert_eq!(x.facts_seen, y.facts_seen);
    }
    assert_eq!(incr.rounds, fresh.rounds);
}

/// One accepted round, as recorded for cross-cell comparison.
#[derive(Debug, PartialEq)]
struct RoundTrace {
    accepted_source: String,
    facts_added: usize,
    quarantined: usize,
}

/// Drives the augmentation loop at one (threads, window) cell, asserting
/// incremental == fresh every round, and returns the accepted-round trace.
fn drive_loop(corpus: &[SourceFacts], threads: usize, window: Option<usize>) -> Vec<RoundTrace> {
    let mut aug = Augmenter::new(config_for(window), corpus.to_vec(), KnowledgeBase::new())
        .with_threads(threads);
    let mut trace = Vec::new();
    for round in 0..20 {
        let fresh = aug.suggest_fresh();
        let incr = aug.suggest_report();
        assert_round_identical(&incr, &fresh);
        assert_eq!(
            fresh.hierarchies_reused, 0,
            "from-scratch rebuilds never warm-patch"
        );
        let warm_disabled = std::env::var_os("MIDAS_NO_WARM_HIERARCHY").is_some();
        if round == 0 {
            assert_eq!(incr.reused, 0, "first round runs on a cold cache");
            assert_eq!(
                incr.hierarchies_reused, 0,
                "round 0 has no hierarchy to patch"
            );
        } else {
            assert!(incr.reused > 0, "round {round} replayed nothing");
            assert!(
                incr.detect_calls < fresh.detect_calls,
                "round {round}: incremental ran {} tasks, rebuild ran {}",
                incr.detect_calls,
                fresh.detect_calls
            );
            if warm_disabled {
                assert_eq!(
                    incr.hierarchies_reused, 0,
                    "round {round}: MIDAS_NO_WARM_HIERARCHY must force rebuilds"
                );
            } else {
                assert!(
                    incr.hierarchies_reused > 0,
                    "round {round}: no leaf hierarchy was warm-patched"
                );
            }
        }
        let Some(best) = incr.slices.into_iter().find(|s| s.profit > 0.0) else {
            break;
        };
        let quarantined = fresh.quarantine.len();
        let step = aug.accept(&best);
        trace.push(RoundTrace {
            accepted_source: best.source.as_str().to_string(),
            facts_added: step.facts_added,
            quarantined,
        });
        if step.facts_added == 0 {
            break;
        }
    }
    trace
}

const WINDOWS: [Option<usize>; 2] = [Some(1), None];
const THREADS: [usize; 2] = [1, 4];

/// Clean corpus: ≥3 augmentation rounds, every cell matching the sequential
/// unbounded reference round for round.
#[test]
fn clean_loop_is_incremental_invariant() {
    let _session = plan_session();
    let mut t = Interner::new();
    let corpus = multi_vertical_corpus(&mut t);
    let reference = drive_loop(&corpus, 1, None);
    assert!(
        reference.len() >= 3,
        "corpus must take ≥3 rounds to saturate: {reference:?}"
    );
    assert!(reference.iter().all(|r| r.quarantined == 0));
    for window in WINDOWS {
        for threads in THREADS {
            let trace = drive_loop(&corpus, threads, window);
            assert_eq!(trace, reference, "cell ({threads}, {window:?}) diverged");
        }
    }
}

/// A leaf that gets quarantined *mid-loop* must have its retained warm
/// hierarchy dropped, and — once the fault stops firing and the leaf is
/// dirtied again — rebuild cold, with every round still bit-identical to
/// the from-scratch rebuild under the same fault plan.
#[test]
fn quarantined_leaf_drops_warm_hierarchy_and_rebuilds_cold() {
    let _session = plan_session();
    let mut t = Interner::new();
    let mut corpus = multi_vertical_corpus(&mut t);
    let n_leaves = corpus.len();
    let target_url = "domain0.example.org/dir/page1";

    // Give the target page a small private vertical. Its entities exist
    // nowhere else, so accepting the domain0 vertical in phase 1 leaves
    // these facts unknown — phase 3 accepts them to dirty exactly this leaf.
    let slot = corpus
        .iter()
        .position(|s| s.url.as_str().contains(target_url))
        .expect("corpus has the target page");
    let mut spare_entities: Vec<Symbol> = Vec::new();
    let mut spare_count = 0usize;
    {
        let mut facts: Vec<Fact> = corpus[slot].facts.to_vec();
        for e in 0..3 {
            let name = format!("spare_{e}");
            facts.push(Fact::intern(&mut t, &name, "kind", "spare"));
            facts.push(Fact::intern(&mut t, &name, "site", "spare_dir"));
            facts.push(Fact::intern(&mut t, &name, "serial", &format!("sp{e}")));
            spare_entities.push(facts[facts.len() - 1].subject);
            spare_count += 3;
        }
        corpus[slot] = SourceFacts::new(corpus[slot].url.clone(), facts);
    }
    spare_entities.sort_unstable();
    spare_entities.dedup();
    let target_source = corpus[slot].url.clone();
    // Under the escape hatch no hierarchy is ever retained, so every
    // cached-count expectation collapses to zero; the bit-identity and
    // quarantine assertions still hold unchanged.
    let warm_disabled = std::env::var_os("MIDAS_NO_WARM_HIERARCHY").is_some();
    let expect = |n: usize| if warm_disabled { 0 } else { n };

    for threads in THREADS {
        for window in WINDOWS {
            let mut aug = Augmenter::new(config_for(window), corpus.clone(), KnowledgeBase::new())
                .with_threads(threads);

            // Phase 1 — clean round: every leaf succeeds and retains its
            // hierarchy; accepting the top slice (the richest vertical,
            // domain0) dirties the target page for phase 2.
            let r1 = aug.suggest_report();
            assert_round_identical(&r1, &aug.suggest_fresh());
            assert_eq!(aug.warm_hierarchies(), expect(n_leaves));
            let best = r1
                .slices
                .into_iter()
                .find(|s| s.profit > 0.0)
                .expect("phase 1 suggests the domain0 vertical");
            assert!(
                best.source.as_str().contains("domain0"),
                "richest vertical first: {best:?}"
            );
            aug.accept(&best);

            // Phase 2 — the dirty target leaf panics mid-round. Its warm
            // hierarchy must be dropped (quarantined sources never keep warm
            // state), and the report must still match a fresh rebuild under
            // the same plan.
            faultinject::install(FaultPlan::parse(&format!("panic@{target_url}")).unwrap());
            let r2 = aug.suggest_report();
            let f2 = aug.suggest_fresh();
            faultinject::clear();
            assert_round_identical(&r2, &f2);
            assert_eq!(r2.quarantine.len(), 1, "exactly the target is dropped");
            assert_eq!(
                aug.warm_hierarchies(),
                expect(n_leaves - 1),
                "the quarantined leaf's hierarchy must be dropped"
            );
            assert!(
                warm_disabled || r2.hierarchies_reused > 0,
                "the other dirty domain0 pages still warm-patch"
            );

            // Phase 3 — fault gone; dirty exactly the target leaf again by
            // accepting its private spare vertical (those entities live only
            // on this page). It re-executes with no warm hierarchy (dropped
            // in phase 2) and rebuilds cold.
            let step = aug.accept(&DiscoveredSlice {
                source: target_source.clone(),
                properties: Vec::new(),
                entities: spare_entities.clone(),
                num_facts: spare_count,
                num_new_facts: spare_count,
                profit: 1.0,
            });
            assert!(step.facts_added > 0, "the target still had unknown facts");
            let r3 = aug.suggest_report();
            let f3 = aug.suggest_fresh();
            assert_round_identical(&r3, &f3);
            assert!(
                r3.quarantine.is_empty(),
                "no plan, no quarantine: {:?}",
                r3.quarantine
            );
            assert_eq!(
                r3.hierarchies_reused, 0,
                "the only dirty leaf rebuilds cold, not warm"
            );
            assert_eq!(
                aug.warm_hierarchies(),
                expect(n_leaves),
                "the cold rebuild re-retains the target's hierarchy"
            );
        }
    }
}

/// With metric recording (and, when the environment sets `MIDAS_TRACE`,
/// span streaming) active, the augmentation loop still matches the
/// untraced sequential reference round for round, the registry's counters
/// stay monotone across the loop, and the folded snapshot survives a JSON
/// round-trip. `scripts/check.sh` runs this whole binary again under
/// `MIDAS_TRACE=spans:…` + `MIDAS_TELEMETRY=1`, extending the same
/// assertions to the live-sink configuration.
#[test]
fn telemetry_active_loop_is_incremental_invariant() {
    use midas::core::telemetry;
    let _session = plan_session();
    let mut t = Interner::new();
    let corpus = multi_vertical_corpus(&mut t);
    // Reference first, telemetry untouched — matching the suites' usual
    // runs — then the same cells with recording force-enabled.
    let reference = drive_loop(&corpus, 1, None);
    assert!(reference.len() >= 3);
    telemetry::enable();
    let before = telemetry::snapshot();
    for window in WINDOWS {
        for threads in THREADS {
            let trace = drive_loop(&corpus, threads, window);
            assert_eq!(
                trace, reference,
                "cell ({threads}, {window:?}) diverged with telemetry on"
            );
        }
    }
    let after = telemetry::snapshot();
    assert!(after.dominates(&before), "counters regressed mid-loop");
    assert!(
        after.counter("framework.tasks_reused") > before.counter("framework.tasks_reused"),
        "warm rounds must have recorded task replays"
    );
    let parsed = telemetry::Snapshot::from_json(&after.to_json()).expect("own JSON parses");
    assert_eq!(parsed, after, "snapshot JSON round-trips losslessly");
    telemetry::flush_trace();
}

/// With a round-0 panic and a budget exhaustion injected (by sorted source
/// index), every cell still matches its from-scratch rebuild at every round
/// and reproduces the same quarantine — cached fault outcomes replay
/// exactly like recomputed ones.
#[test]
fn faulted_loop_is_incremental_invariant() {
    let _session = plan_session();
    let mut t = Interner::new();
    let corpus = multi_vertical_corpus(&mut t);
    let plan = FaultPlan::parse("panic@#2,budget@#9").unwrap();

    faultinject::install(plan.clone());
    let reference = drive_loop(&corpus, 1, None);
    faultinject::clear();
    assert!(
        reference.len() >= 3,
        "corpus must take ≥3 rounds to saturate: {reference:?}"
    );
    assert!(
        reference.iter().all(|r| r.quarantined == 2),
        "both injected faults fire every round: {reference:?}"
    );

    for window in WINDOWS {
        for threads in THREADS {
            faultinject::install(plan.clone());
            let trace = drive_loop(&corpus, threads, window);
            faultinject::clear();
            assert_eq!(trace, reference, "cell ({threads}, {window:?}) diverged");
        }
    }
}
