//! Streaming-window equivalence: the framework's report — slices *and*
//! quarantine — is bit-identical across every `--stream-window` × thread
//! count combination, with and without injected faults. The window may only
//! change peak memory, never a result bit.
//!
//! The fault-injection plan is process-global, so tests that install one
//! serialise on [`PLAN_LOCK`] (this file is its own test binary).

use midas::core::faultinject;
use midas::prelude::*;
use std::sync::{Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Holds the global-plan lock for one test and clears any installed plan on
/// drop, so a failing test cannot poison the ones after it.
struct PlanSession(#[allow(dead_code)] MutexGuard<'static, ()>);

fn plan_session() -> PlanSession {
    PlanSession(PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Drop for PlanSession {
    fn drop(&mut self) {
        faultinject::clear();
    }
}

fn url(s: &str) -> SourceUrl {
    SourceUrl::parse(s).unwrap()
}

/// `pages` pages under `section`, each with `per_page` entities of one
/// vertical (2 defining properties + 1 unique fact per entity).
fn vertical_pages(
    t: &mut Interner,
    section: &str,
    stem: &str,
    pages: usize,
    per_page: usize,
) -> Vec<SourceFacts> {
    let mut out = Vec::new();
    for p in 0..pages {
        let mut facts = Vec::new();
        for e in 0..per_page {
            let name = format!("{stem}_{p}_{e}");
            facts.push(Fact::intern(t, &name, "kind", stem));
            facts.push(Fact::intern(t, &name, "site", &format!("{stem}_dir")));
            facts.push(Fact::intern(t, &name, "serial", &format!("{stem}{p}{e}")));
        }
        out.push(SourceFacts::new(
            url(&format!("{section}/page{p}.html")),
            facts,
        ));
    }
    out
}

/// 20 sources: 5 domains × 4 pages, each domain a distinct vertical.
fn twenty_source_corpus(t: &mut Interner) -> Vec<SourceFacts> {
    let mut sources = Vec::new();
    for d in 0..5 {
        sources.extend(vertical_pages(
            t,
            &format!("http://domain{d}.example.org/dir"),
            &format!("stem{d}"),
            4,
            4,
        ));
    }
    sources
}

fn run_with(
    sources: Vec<SourceFacts>,
    threads: usize,
    window: Option<usize>,
) -> midas::core::FrameworkReport {
    let alg = MidasAlg::new(MidasConfig::running_example());
    Framework::new(&alg, alg.config.cost)
        .with_threads(threads)
        .with_stream_window(window)
        .run(sources, &KnowledgeBase::new())
}

/// Slices bit-identical, quarantine entry-for-entry identical, and the same
/// round/detector accounting.
fn assert_reports_identical(a: &midas::core::FrameworkReport, b: &midas::core::FrameworkReport) {
    assert_eq!(a.slices.len(), b.slices.len(), "slice counts differ");
    for (x, y) in a.slices.iter().zip(&b.slices) {
        assert_eq!(x.source, y.source);
        assert_eq!(x.properties, y.properties);
        assert_eq!(x.entities, y.entities);
        assert_eq!(x.num_facts, y.num_facts);
        assert_eq!(x.num_new_facts, y.num_new_facts);
        assert_eq!(
            x.profit.to_bits(),
            y.profit.to_bits(),
            "profits not bit-identical"
        );
    }
    assert_eq!(a.quarantine.len(), b.quarantine.len());
    for (x, y) in a.quarantine.iter().zip(b.quarantine.iter()) {
        assert_eq!(x.source, y.source);
        assert_eq!(x.stage, y.stage);
        assert_eq!(x.cause.tag(), y.cause.tag());
        assert_eq!(x.facts_seen, y.facts_seen);
    }
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.detect_calls, b.detect_calls);
}

const WINDOWS: [Option<usize>; 3] = [Some(1), Some(4), None];
const THREADS: [usize; 3] = [1, 4, 8];

/// Clean corpus: every (window, threads) cell reproduces the sequential
/// unbounded reference bit for bit.
#[test]
fn clean_run_is_window_invariant() {
    let _session = plan_session();
    let mut t = Interner::new();
    let corpus = twenty_source_corpus(&mut t);
    let reference = run_with(corpus.clone(), 1, None);
    assert!(!reference.slices.is_empty());
    assert!(reference.quarantine.is_empty());
    for window in WINDOWS {
        for threads in THREADS {
            let report = run_with(corpus.clone(), threads, window);
            assert_reports_identical(&report, &reference);
        }
    }
}

/// With a round-0 panic and a budget exhaustion injected (by sorted source
/// index), every cell quarantines the same two sources and reports the same
/// surviving slices.
#[test]
fn faulted_run_is_window_invariant() {
    let _session = plan_session();
    let mut t = Interner::new();
    let corpus = twenty_source_corpus(&mut t);
    let plan = FaultPlan::parse("panic@#2,budget@#7").unwrap();

    faultinject::install(plan.clone());
    let reference = run_with(corpus.clone(), 1, None);
    faultinject::clear();
    assert_eq!(reference.quarantine.len(), 2);

    for window in WINDOWS {
        for threads in THREADS {
            faultinject::install(plan.clone());
            let report = run_with(corpus.clone(), threads, window);
            faultinject::clear();
            assert_reports_identical(&report, &reference);
        }
    }
}

/// With metric recording (and, when the environment sets `MIDAS_TRACE`,
/// span streaming) active, every cell still reproduces the untraced
/// reference bit for bit, the registry's counters only ever grow, and the
/// folded snapshot survives a JSON round-trip. `scripts/check.sh` runs this
/// whole binary again under `MIDAS_TRACE=spans:…` + `MIDAS_TELEMETRY=1`,
/// so each assertion above also holds with the trace sink live.
#[test]
fn telemetry_active_run_is_window_invariant() {
    use midas::core::telemetry;
    let _session = plan_session();
    telemetry::enable();
    let mut t = Interner::new();
    let corpus = twenty_source_corpus(&mut t);
    let reference = run_with(corpus.clone(), 1, None);
    let before = telemetry::snapshot();
    for window in WINDOWS {
        for threads in THREADS {
            let report = run_with(corpus.clone(), threads, window);
            assert_reports_identical(&report, &reference);
        }
    }
    let after = telemetry::snapshot();
    assert!(after.dominates(&before), "counters regressed mid-run");
    assert!(
        after.counter("framework.rounds") > before.counter("framework.rounds"),
        "the matrix runs must have recorded rounds"
    );
    assert!(
        after.counter("framework.detect_calls") > before.counter("framework.detect_calls"),
        "the matrix runs must have recorded detector calls"
    );
    let parsed = telemetry::Snapshot::from_json(&after.to_json()).expect("own JSON parses");
    assert_eq!(parsed, after, "snapshot JSON round-trips losslessly");
    telemetry::flush_trace();
}

/// Merge-round (consolidate-stage) faults: a fact cap between leaf and
/// section size quarantines every parent task; the recovered child
/// candidates are identical at every window.
#[test]
fn consolidate_faults_are_window_invariant() {
    let _session = plan_session();
    let mut t = Interner::new();
    let pages = vertical_pages(&mut t, "http://site.example/dir", "rocket", 6, 4);
    let leaf_size = pages[0].len();
    let alg = MidasAlg::new(MidasConfig::running_example());

    let run = |threads: usize, window: Option<usize>| {
        Framework::new(&alg, alg.config.cost)
            .with_threads(threads)
            .with_stream_window(window)
            .with_budget(SourceBudget::unlimited().with_max_facts(leaf_size + 1))
            .run(pages.clone(), &KnowledgeBase::new())
    };
    let reference = run(1, None);
    assert!(!reference.quarantine.is_empty());
    assert!(reference
        .quarantine
        .iter()
        .all(|f| f.stage == Stage::Consolidate));
    assert_eq!(reference.slices.len(), 6, "page slices survive");

    for window in WINDOWS {
        for threads in THREADS {
            assert_reports_identical(&run(threads, window), &reference);
        }
    }
}
