//! Randomized differential suite for the extent kernel dispatch layer.
//!
//! Every kernel entry point — `and_into`, `or_into`, `andnot_into`,
//! `and_assign`, `or_assign`, `count`, `is_subset`, `union_into` — is run
//! through every available dispatch table (portable scalar, AVX2 where the
//! host supports it, and whatever `active()` selected for this process)
//! against a straight-line word-loop reference, over inputs that cover the
//! shapes the SIMD paths special-case: lengths straddling the 4-word vector
//! width (0, 1, 3, 4, 5, …), remainder tails, all-empty and all-full
//! blocks, and dense random fills. Tables must agree with the reference
//! *bit for bit* — outputs and returned popcounts both — which is the
//! contract that lets `MIDAS_KERNEL` switch kernels without changing any
//! report byte.

use midas::core::extent::kernels::{self, active, avx2_ops, scalar_ops, KernelOps};

/// xorshift64* word stream; every 7th word forced empty or full so the
/// boundary patterns appear at every length.
fn blocks(mut seed: u64, len: usize) -> Vec<u64> {
    seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|i| match i % 7 {
            0 => 0,
            1 => u64::MAX,
            _ => {
                seed ^= seed >> 12;
                seed ^= seed << 25;
                seed ^= seed >> 27;
                seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
            }
        })
        .collect()
}

fn ref_count(xs: &[u64]) -> u32 {
    xs.iter().map(|w| w.count_ones()).sum()
}

/// Every dispatch table available on this host, by name.
fn tables() -> Vec<(&'static str, &'static KernelOps)> {
    let mut t = vec![("scalar", scalar_ops()), ("active", active())];
    if let Some(avx2) = avx2_ops() {
        t.push(("avx2", avx2));
    }
    t
}

/// Lengths covering empty input, sub-vector widths, the 4-word vector
/// boundary, tails of every residue, and multi-vector spans.
const LENS: [usize; 18] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16, 17, 31, 64, 127, 200,
];

#[test]
fn binary_kernels_match_word_loop_reference() {
    for (name, ops) in tables() {
        for &len in &LENS {
            for seed in 0..6u64 {
                let a = blocks(seed * 2 + 1, len);
                let b = blocks(seed * 2 + 2, len);
                let and_ref: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
                let or_ref: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
                let andnot_ref: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & !y).collect();

                let mut out = vec![0u64; len];
                let n = (ops.and_into)(&mut out, &a, &b);
                assert_eq!(out, and_ref, "{name} and_into len {len} seed {seed}");
                assert_eq!(n, ref_count(&and_ref), "{name} and_into count");

                let n = (ops.or_into)(&mut out, &a, &b);
                assert_eq!(out, or_ref, "{name} or_into len {len} seed {seed}");
                assert_eq!(n, ref_count(&or_ref), "{name} or_into count");

                let n = (ops.andnot_into)(&mut out, &a, &b);
                assert_eq!(out, andnot_ref, "{name} andnot_into len {len} seed {seed}");
                assert_eq!(n, ref_count(&andnot_ref), "{name} andnot_into count");

                let mut acc = a.clone();
                let n = (ops.and_assign)(&mut acc, &b);
                assert_eq!(acc, and_ref, "{name} and_assign len {len} seed {seed}");
                assert_eq!(n, ref_count(&and_ref), "{name} and_assign count");

                let mut acc = a.clone();
                let n = (ops.or_assign)(&mut acc, &b);
                assert_eq!(acc, or_ref, "{name} or_assign len {len} seed {seed}");
                assert_eq!(n, ref_count(&or_ref), "{name} or_assign count");
            }
        }
    }
}

#[test]
fn count_and_subset_match_reference() {
    for (name, ops) in tables() {
        for &len in &LENS {
            for seed in 0..6u64 {
                let a = blocks(seed * 3 + 1, len);
                let b = blocks(seed * 3 + 2, len);
                assert_eq!((ops.count)(&a), ref_count(&a), "{name} count len {len}");

                let subset_ref = a.iter().zip(&b).all(|(x, y)| x & !y == 0);
                assert_eq!(
                    (ops.is_subset)(&a, &b),
                    subset_ref,
                    "{name} is_subset len {len} seed {seed}"
                );
                // A set is always a subset of itself and of all-ones.
                assert!((ops.is_subset)(&a, &a), "{name} reflexive len {len}");
                assert!(
                    (ops.is_subset)(&a, &vec![u64::MAX; len]),
                    "{name} subset of full len {len}"
                );
                // And a strict superset is never a subset (when non-equal).
                let grown: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
                if grown != a {
                    assert!(!(ops.is_subset)(&grown, &a), "{name} strict len {len}");
                }
            }
        }
    }
}

#[test]
fn union_into_matches_sequential_or_for_any_fanin() {
    for (name, ops) in tables() {
        for &len in &LENS {
            for fanin in [0usize, 1, 2, 3, 7, 8, 9] {
                let srcs: Vec<Vec<u64>> =
                    (0..fanin).map(|i| blocks(41 * i as u64 + 5, len)).collect();
                let refs: Vec<&[u64]> = srcs.iter().map(|s| s.as_slice()).collect();

                // Reference: fold sequential word-wise ORs over a non-zero
                // starting accumulator (union_into ORs into `acc`, it does
                // not clear it).
                let start = blocks(977, len);
                let mut expect = start.clone();
                for s in &srcs {
                    for (w, x) in expect.iter_mut().zip(s) {
                        *w |= x;
                    }
                }

                let mut acc = start.clone();
                let n = (ops.union_into)(&mut acc, &refs);
                assert_eq!(acc, expect, "{name} union_into len {len} fanin {fanin}");
                assert_eq!(n, ref_count(&expect), "{name} union_into count");
            }
        }
    }
}

#[test]
fn all_tables_agree_with_each_other() {
    let tables = tables();
    for &len in &LENS {
        for seed in 10..14u64 {
            let a = blocks(seed * 5 + 1, len);
            let b = blocks(seed * 5 + 2, len);
            let mut outputs: Vec<(&str, Vec<u64>, u32)> = Vec::new();
            for (name, ops) in &tables {
                let mut out = vec![0u64; len];
                let n = (ops.and_into)(&mut out, &a, &b);
                outputs.push((name, out, n));
            }
            let (base_name, base_out, base_n) = &outputs[0];
            for (name, out, n) in &outputs[1..] {
                assert_eq!(out, base_out, "{name} vs {base_name} blocks, len {len}");
                assert_eq!(n, base_n, "{name} vs {base_name} count, len {len}");
            }
        }
    }
}

#[test]
fn dispatch_wrappers_route_through_active_table() {
    let ops = active();
    let a = blocks(21, 33);
    let b = blocks(22, 33);
    let mut via_table = vec![0u64; 33];
    let mut via_wrapper = vec![0u64; 33];
    assert_eq!(
        (ops.and_into)(&mut via_table, &a, &b),
        kernels::and_into(&mut via_wrapper, &a, &b)
    );
    assert_eq!(via_table, via_wrapper);
    assert_eq!((ops.count)(&a), kernels::count(&a));
    assert_eq!((ops.is_subset)(&a, &b), kernels::is_subset(&a, &b));
}
