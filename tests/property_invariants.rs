//! Property-based invariants across the whole stack (proptest).

use midas::prelude::*;
use proptest::prelude::*;

/// Builds a source + KB from compact triples: `(subject, predicate, object,
/// in_kb)` drawn from small id pools so that slices actually form.
fn build(triples: &[(u8, u8, u8, bool)]) -> (Interner, SourceFacts, KnowledgeBase) {
    let mut terms = Interner::new();
    let mut facts = Vec::new();
    let mut kb = KnowledgeBase::new();
    for &(s, p, o, known) in triples {
        let f = Fact::intern(
            &mut terms,
            &format!("e{}", s % 24),
            &format!("p{}", p % 6),
            &format!("v{}", o % 8),
        );
        facts.push(f);
        if known {
            kb.insert(f);
        }
    }
    let url = SourceUrl::parse("http://prop.example.org/data").unwrap();
    (terms, SourceFacts::new(url, facts), kb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every slice MIDASalg reports (a) has the extent its own property
    /// conjunction selects, (b) has recomputable counts, and (c) the full
    /// result set has positive total profit.
    #[test]
    fn midasalg_output_is_consistent(triples in proptest::collection::vec(any::<(u8, u8, u8, bool)>(), 1..120)) {
        let (_terms, source, kb) = build(&triples);
        let cfg = MidasConfig::running_example();
        let alg = MidasAlg::new(cfg.clone());
        let slices = alg.run(&source, &kb);

        let table = FactTable::build(&source, &kb);
        let ctx = ProfitCtx::new(&table, cfg.cost);
        let mut acc = ctx.accumulator();
        for s in &slices {
            // (a) extent == σ_props(F_W)
            let prop_ids: Vec<u32> = s
                .properties
                .iter()
                .map(|&(p, v)| table.catalog().get(p, v).expect("known property"))
                .collect();
            let extent = table.extent_of(&prop_ids);
            let mut subjects: Vec<Symbol> = extent.iter().map(|e| table.subject(e)).collect();
            subjects.sort_unstable();
            prop_assert_eq!(&subjects, &s.entities);

            // (b) counts and profit recompute
            prop_assert_eq!(table.facts_sum(&extent) as usize, s.num_facts);
            prop_assert_eq!(table.new_sum(&extent) as usize, s.num_new_facts);
            prop_assert!((ctx.profit_single(&extent) - s.profit).abs() < 1e-9);

            acc.add(&ctx, &extent);
        }
        // (c) a non-empty result always has positive set profit (Algorithm 1
        // only adds positive-marginal slices).
        if !slices.is_empty() {
            prop_assert!(acc.profit(&ctx) > 0.0);
        }
    }

    /// Every selected slice covers at least one entity no earlier-selected
    /// slice covered (a fully-covered candidate has marginal −f_p < 0 and
    /// Algorithm 1 never adds it). Slices are returned in selection order.
    #[test]
    fn every_slice_adds_fresh_coverage(triples in proptest::collection::vec(any::<(u8, u8, u8, bool)>(), 1..120)) {
        let (_t, source, kb) = build(&triples);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let slices = alg.run(&source, &kb);
        let mut covered = std::collections::BTreeSet::new();
        for s in &slices {
            let fresh = s.entities.iter().filter(|e| !covered.contains(*e)).count();
            prop_assert!(fresh > 0, "slice added no uncovered entity");
            covered.extend(s.entities.iter().copied());
        }
    }

    /// Adding facts to the knowledge base never increases any slice's
    /// profit (gain is monotone in novelty).
    #[test]
    fn profit_is_monotone_in_kb_coverage(triples in proptest::collection::vec(any::<(u8, u8, u8, bool)>(), 1..80)) {
        let (_t, source, kb) = build(&triples);
        let mut bigger = kb.clone();
        for f in source.facts.iter().take(source.facts.len() / 2) {
            bigger.insert(*f);
        }
        let cfg = MidasConfig::running_example();
        let t1 = FactTable::build(&source, &kb);
        let t2 = FactTable::build(&source, &bigger);
        let c1 = ProfitCtx::new(&t1, cfg.cost);
        let c2 = ProfitCtx::new(&t2, cfg.cost);
        let all = midas::prelude::ExtentSet::full(t1.num_entities() as u32);
        prop_assert!(c2.profit_single(&all) <= c1.profit_single(&all) + 1e-9);
    }

    /// URL parsing is idempotent and parents strictly reduce depth.
    #[test]
    fn url_parse_idempotent(host in "[a-z]{1,8}(\\.[a-z]{2,3})?", segs in proptest::collection::vec("[a-z0-9_-]{1,6}", 0..5)) {
        let raw = format!("http://{}/{}", host, segs.join("/"));
        let u = SourceUrl::parse(&raw).unwrap();
        let reparsed = SourceUrl::parse(u.as_str()).unwrap();
        prop_assert_eq!(&u, &reparsed);
        prop_assert_eq!(u.depth(), segs.len());
        let mut cur = u.clone();
        while let Some(p) = cur.parent() {
            prop_assert_eq!(p.depth() + 1, cur.depth());
            prop_assert!(p.contains(&cur));
            cur = p;
        }
        prop_assert!(cur.is_domain());
    }

    /// The source trie contains every ancestor of every inserted URL.
    #[test]
    fn trie_closure_over_ancestors(segs in proptest::collection::vec(proptest::collection::vec("[a-z]{1,4}", 0..4), 1..12)) {
        let urls: Vec<SourceUrl> = segs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                SourceUrl::parse(&format!("http://d{}.com/{}", i % 3, s.join("/"))).unwrap()
            })
            .collect();
        let trie = SourceTrie::build(&urls);
        for u in &urls {
            let mut cur = Some(u.clone());
            while let Some(x) = cur {
                prop_assert!(trie.get(&x).is_some(), "missing {}", x);
                cur = x.parent();
            }
        }
    }

    /// Knowledge-base set semantics under arbitrary insert sequences.
    #[test]
    fn kb_set_semantics(ops in proptest::collection::vec(any::<(u8, u8, u8)>(), 1..200)) {
        let mut terms = Interner::new();
        let mut kb = KnowledgeBase::new();
        let mut reference = std::collections::BTreeSet::new();
        for &(s, p, o) in &ops {
            let f = Fact::intern(&mut terms, &format!("s{s}"), &format!("p{p}"), &format!("o{o}"));
            prop_assert_eq!(kb.insert(f), reference.insert(f));
        }
        prop_assert_eq!(kb.len(), reference.len());
        for f in &reference {
            prop_assert!(kb.contains(f));
        }
    }
}
