//! Fine-grained semantics of the §III-B framework's consolidation phase,
//! exercised through hand-built multi-granularity scenarios.

use midas::prelude::*;

fn url(s: &str) -> SourceUrl {
    SourceUrl::parse(s).unwrap()
}

/// Builds `pages` pages under `section`, each holding `per_page` entities of
/// one vertical with 2 defining properties + 1 unique fact.
fn vertical_pages(
    t: &mut Interner,
    section: &str,
    stem: &str,
    pages: usize,
    per_page: usize,
) -> Vec<SourceFacts> {
    let mut out = Vec::new();
    for p in 0..pages {
        let mut facts = Vec::new();
        for e in 0..per_page {
            let name = format!("{stem}_{p}_{e}");
            facts.push(Fact::intern(t, &name, "kind", stem));
            // Stem-specific: two verticals must not share any property, or
            // the merged domain slice legitimately beats them (Def. 9).
            facts.push(Fact::intern(t, &name, "site", &format!("{stem}_dir")));
            facts.push(Fact::intern(t, &name, "serial", &format!("{stem}{p}{e}")));
        }
        out.push(SourceFacts::new(
            url(&format!("{section}/page{p}.html")),
            facts,
        ));
    }
    out
}

/// Example 16's shape generalised: many sibling pages of one vertical must
/// consolidate into a single slice at the section granularity.
#[test]
fn sibling_pages_consolidate_upward() {
    let mut t = Interner::new();
    let pages = vertical_pages(&mut t, "http://site.example/dir", "rocket", 6, 4);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost);
    let report = fw.run(pages, &KnowledgeBase::new());
    assert_eq!(report.slices.len(), 1, "{:?}", report.slices);
    let s = &report.slices[0];
    assert_eq!(s.source.as_str(), "http://site.example/dir");
    assert_eq!(s.entities.len(), 24);
}

/// Two different verticals in sibling sections must stay distinct at the
/// domain level — the domain slice (if any) never covers both profitably.
#[test]
fn distinct_verticals_stay_separate() {
    let mut t = Interner::new();
    let mut sources = vertical_pages(&mut t, "http://site.example/golf", "golf", 4, 4);
    sources.extend(vertical_pages(
        &mut t,
        "http://site.example/games",
        "game",
        4,
        4,
    ));
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost);
    let report = fw.run(sources, &KnowledgeBase::new());
    assert_eq!(report.slices.len(), 2, "{:?}", report.slices);
    let mut urls: Vec<&str> = report.slices.iter().map(|s| s.source.as_str()).collect();
    urls.sort();
    assert_eq!(
        urls,
        vec!["http://site.example/games", "http://site.example/golf"]
    );
}

/// When the page-level slices are *already known* in the KB, nothing should
/// propagate past round one (positive-only export policy).
#[test]
fn known_content_exports_nothing() {
    let mut t = Interner::new();
    let pages = vertical_pages(&mut t, "http://site.example/dir", "known", 4, 4);
    let kb: KnowledgeBase = pages.iter().flat_map(|p| p.facts.iter().copied()).collect();
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost);
    let report = fw.run(pages, &kb);
    assert!(report.slices.is_empty());
}

/// With f_p high enough that individual pages are unprofitable, the
/// positive-only policy (the paper's) loses the vertical entirely, while
/// export-all still finds it at the section level — the ablation's point.
#[test]
fn export_all_rescues_small_pages() {
    let mut t = Interner::new();
    // 8 pages × 2 entities × 3 facts: per-page profit with f_p = 10 is
    // 6 new · 0.9 − 10 − … < 0, but the 16-entity section slice is worth it.
    let pages = vertical_pages(&mut t, "http://site.example/dir", "tiny", 8, 2);
    let cfg = MidasConfig::default(); // f_p = 10
    let alg = MidasAlg::new(cfg.clone());

    let positive_only = Framework::new(&alg, cfg.cost).run(pages.clone(), &KnowledgeBase::new());
    assert!(
        positive_only.slices.is_empty(),
        "paper policy drops sub-threshold pages: {:?}",
        positive_only.slices
    );

    // Export-all needs detectors that report their best slice even when it
    // is unprofitable on its own (`always_report_best`).
    let rescue_cfg = MidasConfig {
        always_report_best: true,
        ..cfg.clone()
    };
    let rescue_alg = MidasAlg::new(rescue_cfg);
    let export_all = Framework::new(&rescue_alg, cfg.cost)
        .with_policy(ExportPolicy::ExportAll)
        .run(pages, &KnowledgeBase::new());
    let best = export_all
        .slices
        .iter()
        .max_by(|a, b| a.profit.partial_cmp(&b.profit).unwrap())
        .expect("export-all finds the section slice");
    assert!(best.profit > 0.0);
    assert_eq!(best.entities.len(), 16);
    assert_eq!(best.source.as_str(), "http://site.example/dir");
}

/// Parent-vs-children consolidation: a section slice with *strictly more*
/// value than its page slices displaces them, and the reverse keeps the
/// pages… which cannot happen for nested extents (the parent always wins on
/// crawl cost at equal coverage), so assert the direction that is possible.
#[test]
fn consolidation_prefers_the_parent_at_equal_coverage() {
    let mut t = Interner::new();
    let pages = vertical_pages(&mut t, "http://site.example/dir", "thing", 3, 5);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost);
    let report = fw.run(pages, &KnowledgeBase::new());
    assert_eq!(report.slices.len(), 1);
    // The winner is the section-granularity slice, not three page slices:
    // one training fee instead of three.
    assert_eq!(report.slices[0].source.depth(), 1);
}

/// Detector calls are bounded: one per leaf source plus one per parent
/// shard per round.
#[test]
fn detect_call_accounting() {
    let mut t = Interner::new();
    let pages = vertical_pages(&mut t, "http://site.example/dir", "acc", 5, 3);
    let alg = MidasAlg::new(MidasConfig::running_example());
    let fw = Framework::new(&alg, alg.config.cost);
    let report = fw.run(pages, &KnowledgeBase::new());
    // 5 leaf detections + 1 section shard + 1 domain shard.
    assert_eq!(report.detect_calls, 7);
    assert_eq!(report.rounds, 2);
}
