//! Proptest equivalence suite for the extent engine and the parallel
//! hierarchy construction.
//!
//! Two families of properties:
//!
//! 1. **`ExtentSet` vs sorted-vec references** — every set operation must
//!    agree with the plain `intersect_sorted` / `union_sorted` merge
//!    references, for both representations (sparse id vector and dense
//!    bitset) and — explicitly — across the density-crossover boundary
//!    (`len · DENSITY_DIVISOR` vs `universe`).
//! 2. **Parallel vs sequential construction** — `SliceHierarchy::build`
//!    with `threads = 4` must produce a node-for-node identical hierarchy
//!    to `threads = 1`: same ids, same extents, same links, same pruning
//!    decisions, bit-identical profits.

use midas::core::extent::DENSITY_DIVISOR;
use midas::core::fact_table::{intersect_sorted, union_sorted};
use midas::core::hierarchy::SliceHierarchy;
use midas::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A universe plus two arbitrary subsets of it. Set sizes are drawn across
/// the full `0..=universe` range, so both representations (and mixes of the
/// two) occur naturally.
fn subset_of(universe: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..universe, 0..universe as usize * 2).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn two_sets() -> impl Strategy<Value = (u32, Vec<u32>, Vec<u32>)> {
    (1u32..300).prop_flat_map(|universe| (Just(universe), subset_of(universe), subset_of(universe)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round-trip and point queries agree with the source id list.
    #[test]
    fn extent_roundtrip_and_contains(tc in two_sets()) {
        let (universe, ids, _) = tc;
        let set = ExtentSet::from_sorted(universe, ids.clone());
        prop_assert_eq!(set.len(), ids.len());
        prop_assert_eq!(set.universe(), universe);
        prop_assert_eq!(set.to_vec(), ids.clone());
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), ids.clone());
        let member: BTreeSet<u32> = ids.iter().copied().collect();
        for e in 0..universe {
            prop_assert_eq!(set.contains(e), member.contains(&e));
        }
    }

    /// `intersect`/`union` (pure and in-place) match the sorted-vec merge
    /// references for every representation pairing.
    #[test]
    fn extent_ops_match_sorted_references(tc in two_sets()) {
        let (universe, a, b) = tc;
        let sa = ExtentSet::from_sorted(universe, a.clone());
        let sb = ExtentSet::from_sorted(universe, b.clone());

        let want_inter = intersect_sorted(&a, &b);
        let want_union = union_sorted(&a, &b);

        prop_assert_eq!(sa.intersect(&sb).to_vec(), want_inter.clone());
        prop_assert_eq!(sb.intersect(&sa).to_vec(), want_inter.clone());
        prop_assert_eq!(sa.union(&sb).to_vec(), want_union.clone());
        prop_assert_eq!(sb.union(&sa).to_vec(), want_union.clone());

        let mut inplace = sa.clone();
        inplace.intersect_with(&sb);
        prop_assert_eq!(&inplace, &sa.intersect(&sb));
        prop_assert_eq!(inplace.to_vec(), want_inter);

        let mut inplace = sa.clone();
        inplace.union_with(&sb);
        prop_assert_eq!(&inplace, &sa.union(&sb));
        prop_assert_eq!(inplace.to_vec(), want_union);

        // Subset relation against the reference definition.
        let bset: BTreeSet<u32> = b.iter().copied().collect();
        prop_assert_eq!(sa.is_subset_of(&sb), a.iter().all(|e| bset.contains(e)));
    }

    /// Equality is *set* equality: two equal sets compare equal however
    /// they were produced, and equal sets land in the same representation.
    #[test]
    fn extent_equality_is_representation_independent(tc in two_sets()) {
        let (universe, a, b) = tc;
        let sa = ExtentSet::from_sorted(universe, a.clone());
        let sb = ExtentSet::from_sorted(universe, b.clone());
        prop_assert_eq!(a == b, sa == sb);
        // An intersection that reproduces one operand equals it exactly.
        let self_inter = sa.intersect(&sa);
        prop_assert_eq!(&self_inter, &sa);
        prop_assert_eq!(self_inter.is_dense(), sa.is_dense());
    }

    /// The density-crossover boundary: sets whose size sits exactly at,
    /// just below, and just above `universe / DENSITY_DIVISOR` behave
    /// identically regardless of which representation they select.
    #[test]
    fn extent_density_boundary(universe in DENSITY_DIVISOR..2000u32, raw_delta in 0u32..5) {
        let delta = i64::from(raw_delta) - 2;
        let boundary = universe.div_ceil(DENSITY_DIVISOR) as i64;
        let k = (boundary + delta).clamp(0, i64::from(universe)) as u32;
        // Spread ids across the universe so dense blocks are non-trivial.
        let step = (universe / k.max(1)).max(1);
        let ids: Vec<u32> = (0..universe).step_by(step as usize).take(k as usize).collect();
        let set = ExtentSet::from_sorted(universe, ids.clone());
        prop_assert_eq!(set.len(), ids.len());
        prop_assert_eq!(set.to_vec(), ids.clone());
        // The representation choice follows the documented rule.
        let expect_dense =
            !ids.is_empty() && ids.len() as u64 * u64::from(DENSITY_DIVISOR) >= u64::from(universe);
        prop_assert_eq!(set.is_dense(), expect_dense);
        // Ops at the boundary still match the references.
        let other: Vec<u32> = ids.iter().copied().filter(|e| e % 3 != 0).collect();
        let so = ExtentSet::from_sorted(universe, other.clone());
        prop_assert_eq!(set.intersect(&so).to_vec(), intersect_sorted(&ids, &other));
        prop_assert_eq!(set.union(&so).to_vec(), union_sorted(&ids, &other));
    }
}

/// Builds a source + KB from compact triples (same shape as the
/// property-invariant suite, so hierarchies of non-trivial depth form).
fn build(triples: &[(u8, u8, u8, bool)]) -> (SourceFacts, KnowledgeBase) {
    let mut terms = Interner::new();
    let mut facts = Vec::new();
    let mut kb = KnowledgeBase::new();
    for &(s, p, o, known) in triples {
        let f = Fact::intern(
            &mut terms,
            &format!("e{}", s % 24),
            &format!("p{}", p % 6),
            &format!("v{}", o % 8),
        );
        facts.push(f);
        if known {
            kb.insert(f);
        }
    }
    let url = SourceUrl::parse("http://par.example.org/data").unwrap();
    (SourceFacts::new(url, facts), kb)
}

fn assert_identical(a: &SliceHierarchy, b: &SliceHierarchy) {
    assert_eq!(a.capacity(), b.capacity(), "node counts differ");
    assert_eq!(a.len(), b.len());
    assert_eq!(a.max_level(), b.max_level());
    assert_eq!(a.capped, b.capped);
    for id in 0..a.capacity() as u32 {
        let (x, y) = (a.node(id), b.node(id));
        assert_eq!(x.props, y.props, "node {id}: props");
        assert_eq!(x.extent, y.extent, "node {id}: extent");
        assert_eq!(x.children, y.children, "node {id}: children");
        assert_eq!(x.parents, y.parents, "node {id}: parents");
        assert_eq!(x.is_initial, y.is_initial, "node {id}: is_initial");
        assert_eq!(x.removed, y.removed, "node {id}: removed");
        assert_eq!(x.canonical, y.canonical, "node {id}: canonical");
        assert_eq!(x.valid, y.valid, "node {id}: valid");
        assert_eq!(x.profit.to_bits(), y.profit.to_bits(), "node {id}: profit");
        assert_eq!(
            x.slb_profit.to_bits(),
            y.slb_profit.to_bits(),
            "node {id}: slb"
        );
        assert_eq!(x.slb_slices, y.slb_slices, "node {id}: slb_slices");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hierarchy construction with worker threads is node-for-node
    /// identical to the sequential build, pruning decisions included.
    #[test]
    fn parallel_hierarchy_equals_sequential(
        triples in proptest::collection::vec(any::<(u8, u8, u8, bool)>(), 1..120),
        disable_pruning in any::<bool>(),
    ) {
        let (source, kb) = build(&triples);
        let table = FactTable::build(&source, &kb);
        let mut cfg = MidasConfig::running_example();
        cfg.disable_profit_pruning = disable_pruning;
        let ctx = ProfitCtx::new(&table, cfg.cost);
        let h1 = SliceHierarchy::build(&table, &ctx, &cfg);
        let h4 = SliceHierarchy::build(&table, &ctx, &cfg.clone().with_threads(4));
        assert_identical(&h1, &h4);
    }
}
