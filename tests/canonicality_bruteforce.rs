//! Brute-force validation of Proposition 12.
//!
//! A slice is *canonical* (Definition 7) iff its property set is **closed**:
//! equal to the intersection of the property sets of the entities in its
//! extent. For small, single-valued fact tables we can enumerate all closed
//! property sets directly and compare them against the canonical nodes the
//! hierarchy construction marks via Proposition 12 ("initial, or ≥ 2
//! canonical children").

use midas::core::hierarchy::SliceHierarchy;
use midas::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds a small single-valued fact table: entity e gets property p with a
/// value determined by `grid[e][p]` (None = absent).
fn build_table(grid: &[Vec<Option<u8>>]) -> (Interner, SourceFacts) {
    let mut terms = Interner::new();
    let mut facts = Vec::new();
    for (e, row) in grid.iter().enumerate() {
        for (p, v) in row.iter().enumerate() {
            if let Some(v) = v {
                facts.push(Fact::intern(
                    &mut terms,
                    &format!("e{e}"),
                    &format!("p{p}"),
                    &format!("v{}", v % 3),
                ));
            }
        }
    }
    let url = SourceUrl::parse("http://brute.example/t").unwrap();
    (terms, SourceFacts::new(url, facts))
}

/// All closed property sets (with ≥ 1 property) of a fact table, computed
/// by exhaustive brute force. A property set `C` with non-empty extent is
/// closed iff `C = ∩_{e ∈ extent(C)} C_e`; conversely, every intersection
/// `∩_{e ∈ S} C_e` over a non-empty entity subset `S` is closed (its extent
/// contains `S`, and every extent entity carries all of `C`). So the closed
/// sets are exactly the intersections over the `2^n − 1` entity subsets —
/// enumerable exactly for the small tables this test generates.
fn closed_sets(table: &FactTable) -> BTreeSet<Vec<u32>> {
    let n = table.num_entities();
    assert!(n <= 16, "exhaustive enumeration only");
    let mut out = BTreeSet::new();
    for mask in 1u32..(1 << n) {
        let mut inter: Option<Vec<u32>> = None;
        for e in 0..n as u32 {
            if mask & (1 << e) == 0 {
                continue;
            }
            let eprops = table.entity_properties(e);
            inter = Some(match inter {
                None => eprops.to_vec(),
                Some(mut acc) => {
                    acc.retain(|p| eprops.contains(p));
                    acc
                }
            });
        }
        let inter = inter.expect("mask is non-empty");
        if !inter.is_empty() {
            out.insert(inter);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The canonical (live) nodes of the constructed hierarchy are exactly
    /// the closed property sets of the fact table.
    #[test]
    fn canonical_nodes_are_exactly_the_closed_sets(
        grid in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u8..3), 4),
            1..8,
        )
    ) {
        let (_terms, source) = build_table(&grid);
        if source.is_empty() {
            return Ok(());
        }
        let kb = KnowledgeBase::new();
        let table = FactTable::build(&source, &kb);
        let mut cfg = MidasConfig::running_example();
        // No caps, no surprises: the test needs the full lattice.
        cfg.max_properties_per_entity = 64;
        cfg.max_initial_combinations_per_entity = 4096;
        cfg.disable_profit_pruning = true;
        let ctx = ProfitCtx::new(&table, cfg.cost);
        let hierarchy = SliceHierarchy::build(&table, &ctx, &cfg);

        let expected = closed_sets(&table);
        let mut actual: BTreeSet<Vec<u32>> = BTreeSet::new();
        for id in hierarchy.iter() {
            let node = hierarchy.node(id);
            if node.canonical {
                actual.insert(node.props.to_vec());
            }
        }
        prop_assert_eq!(
            &actual,
            &expected,
            "canonical nodes must equal closed sets (grid {:?})",
            grid
        );
    }

    /// Non-canonical slices are redundant: removing them loses no extent —
    /// for every live node, some canonical node has the same extent with at
    /// least as many properties.
    #[test]
    fn every_extent_is_represented_canonically(
        grid in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u8..3), 3),
            1..7,
        )
    ) {
        let (_terms, source) = build_table(&grid);
        if source.is_empty() {
            return Ok(());
        }
        let kb = KnowledgeBase::new();
        let table = FactTable::build(&source, &kb);
        let mut cfg = MidasConfig::running_example();
        cfg.max_properties_per_entity = 64;
        cfg.max_initial_combinations_per_entity = 4096;
        cfg.disable_profit_pruning = true;
        let ctx = ProfitCtx::new(&table, cfg.cost);
        let hierarchy = SliceHierarchy::build(&table, &ctx, &cfg);

        let canon: Vec<(midas::prelude::ExtentSet, Vec<u32>)> = hierarchy
            .iter()
            .filter(|&id| hierarchy.node(id).canonical)
            .map(|id| {
                let n = hierarchy.node(id);
                (n.extent.clone(), n.props.to_vec())
            })
            .collect();
        for id in hierarchy.iter() {
            let node = hierarchy.node(id);
            let found = canon
                .iter()
                .any(|(ext, props)| *ext == node.extent && props.len() >= node.props.len());
            prop_assert!(found, "extent of a live node lacks a canonical representative");
        }
    }
}
