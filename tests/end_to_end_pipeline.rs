//! Integration: the full pipeline from simulated noisy extraction to
//! evaluated slice discovery.

use midas::extract::model::extractions_to_sources;
use midas::extract::slim::{generate as slim_gen, SlimConfig, SlimFlavor};
use midas::extract::synthetic::{generate as syn_gen, SyntheticConfig};
use midas::extract::ExtractionSim;
use midas::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Noisy extraction → confidence filter → MIDASalg still finds the slice.
#[test]
fn noisy_extraction_still_yields_the_right_slice() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut terms = Interner::new();
    let page = SourceUrl::parse("http://museum.example.org/paintings").unwrap();

    // The "true web": 120 paintings with three facts each.
    let mut true_facts = Vec::new();
    for i in 0..120 {
        let name = format!("painting_{i}");
        true_facts.push(Fact::intern(&mut terms, &name, "type", "painting"));
        true_facts.push(Fact::intern(&mut terms, &name, "museum", "louvre"));
        true_facts.push(Fact::intern(
            &mut terms,
            &name,
            "room",
            &format!("r{}", i % 40),
        ));
    }

    // A realistic pipeline: 40% recall, noise, 0.7-confidence filter.
    let sim = ExtractionSim {
        recall: 0.4,
        noise_rate: 0.3,
        noise_leak: 0.05,
        threshold: 0.7,
    };
    let extractions = sim.extract(&mut rng, &mut terms, &page, &true_facts);
    let sources = extractions_to_sources(&extractions, 0.7);
    assert_eq!(sources.len(), 1);
    let source = &sources[0];
    assert!(source.len() < true_facts.len(), "low recall");

    let alg = MidasAlg::new(MidasConfig::running_example());
    let slices = alg.run(source, &KnowledgeBase::new());
    assert!(
        !slices.is_empty(),
        "the partial extractions still reveal the slice"
    );
    // Slices come back in selection order, so pick the best by profit.
    let top = slices
        .iter()
        .max_by(|a, b| a.profit.total_cmp(&b.profit))
        .unwrap();
    let desc = top.describe(&terms);
    assert!(
        desc.contains("type = painting") || desc.contains("museum = louvre"),
        "the slice describes the painting vertical: {desc}"
    );
}

/// Slim corpus end-to-end: generation → framework → silver-standard P/R.
#[test]
fn slim_corpus_framework_beats_naive() {
    let ds = slim_gen(&SlimConfig {
        flavor: SlimFlavor::Nell,
        scale: 0.002,
        seed: 5,
    });
    let midas = run_midas_framework(&MidasConfig::default(), ds.sources.clone(), &ds.kb, 2);
    let midas_prf = match_to_gold(
        &midas
            .slices
            .iter()
            .filter(|s| s.profit > 0.0)
            .cloned()
            .collect::<Vec<_>>(),
        &ds.truth.gold,
    );
    assert!(midas_prf.f_measure > 0.8, "MIDAS F = {:?}", midas_prf);

    let naive = Naive::new(CostModel::default());
    let merged = merge_by_domain(&ds.sources);
    let naive_run = run_detector_per_source(&naive, &merged, &ds.kb);
    let naive_prf = match_to_gold(&naive_run.slices, &ds.truth.gold);
    assert!(
        midas_prf.f_measure > naive_prf.f_measure,
        "MIDAS {midas_prf:?} vs NAIVE {naive_prf:?}"
    );
}

/// Coverage adjustment monotonically shrinks the optimal output and never
/// hurts MIDAS precision.
#[test]
fn coverage_adjustment_behaves() {
    let ds = slim_gen(&SlimConfig {
        flavor: SlimFlavor::ReVerb,
        scale: 0.002,
        seed: 9,
    });
    let mut last_gold = usize::MAX;
    for &coverage in &[0.0, 0.4, 0.8] {
        let (kb, gold) = coverage_adjusted(&ds, coverage, 3);
        assert!(gold.len() <= last_gold);
        last_gold = gold.len();
        let run = run_midas_framework(&MidasConfig::default(), ds.sources.clone(), &kb, 2);
        let positive: Vec<_> = run
            .slices
            .iter()
            .filter(|s| s.profit > 0.0)
            .cloned()
            .collect();
        let prf = match_to_gold(&positive, &gold);
        assert!(
            prf.precision > 0.8,
            "coverage {coverage}: precision {:.3}",
            prf.precision
        );
    }
}

/// The whole pipeline is deterministic under fixed seeds.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let ds = syn_gen(&SyntheticConfig::new(2_000, 20, 5, 11));
        let alg = MidasAlg::new(MidasConfig::default());
        let slices = alg.run(&ds.sources[0], &ds.kb);
        slices
            .iter()
            .map(|s| {
                (
                    s.entities.len(),
                    s.num_new_facts,
                    format!("{:.6}", s.profit),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Annotator + top-k metric glue: a forum-like slice is rejected even with
/// plenty of new facts.
#[test]
fn annotator_rejects_inhomogeneous_slices() {
    let ds = slim_gen(&SlimConfig {
        flavor: SlimFlavor::ReVerb,
        scale: 0.002,
        seed: 21,
    });
    let naive = Naive::new(CostModel::default());
    let merged = merge_by_domain(&ds.sources);
    let mut run = run_detector_per_source(&naive, &merged, &ds.kb);
    run.slices
        .sort_by_key(|s| std::cmp::Reverse(s.num_new_facts));
    let annotator = SimulatedAnnotator::default();
    let p_all =
        midas::eval::top_k_precision(&run.slices, 100, |s| annotator.is_correct(s, &ds.truth));
    assert!(
        p_all < 0.8,
        "many whole-source returns fail labeling: {p_all}"
    );
}
