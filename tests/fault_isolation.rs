//! Fault isolation end to end: injected faults quarantine exactly their
//! targets, and a k-fault run over N sources emits the same slices as a
//! clean run over the surviving N−k sources, at any thread count.
//!
//! The fault-injection plan is process-global, so every test that installs
//! one serialises on [`PLAN_LOCK`] (this file is its own test binary; unit
//! tests elsewhere never install plans).

use midas::core::faultinject;
use midas::core::parallel::par_map_isolated;
use midas::prelude::*;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Holds the global-plan lock for one test and clears any installed plan on
/// drop, so a failing test cannot poison the ones after it.
struct PlanSession(#[allow(dead_code)] MutexGuard<'static, ()>);

fn plan_session() -> PlanSession {
    PlanSession(PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Drop for PlanSession {
    fn drop(&mut self) {
        faultinject::clear();
    }
}

fn url(s: &str) -> SourceUrl {
    SourceUrl::parse(s).unwrap()
}

/// `pages` pages under `section`, each with `per_page` entities of one
/// vertical (2 defining properties + 1 unique fact per entity).
fn vertical_pages(
    t: &mut Interner,
    section: &str,
    stem: &str,
    pages: usize,
    per_page: usize,
) -> Vec<SourceFacts> {
    let mut out = Vec::new();
    for p in 0..pages {
        let mut facts = Vec::new();
        for e in 0..per_page {
            let name = format!("{stem}_{p}_{e}");
            facts.push(Fact::intern(t, &name, "kind", stem));
            facts.push(Fact::intern(t, &name, "site", &format!("{stem}_dir")));
            facts.push(Fact::intern(t, &name, "serial", &format!("{stem}{p}{e}")));
        }
        out.push(SourceFacts::new(
            url(&format!("{section}/page{p}.html")),
            facts,
        ));
    }
    out
}

/// 20 sources: 5 domains × 4 pages, each domain a distinct vertical.
fn twenty_source_corpus(t: &mut Interner) -> Vec<SourceFacts> {
    let mut sources = Vec::new();
    for d in 0..5 {
        sources.extend(vertical_pages(
            t,
            &format!("http://domain{d}.example.org/dir"),
            &format!("stem{d}"),
            4,
            4,
        ));
    }
    sources
}

fn run_framework(sources: Vec<SourceFacts>, threads: usize) -> midas::core::FrameworkReport {
    let alg = MidasAlg::new(MidasConfig::running_example());
    Framework::new(&alg, alg.config.cost)
        .with_threads(threads)
        .run(sources, &KnowledgeBase::new())
}

fn assert_bit_identical(a: &[DiscoveredSlice], b: &[DiscoveredSlice]) {
    assert_eq!(a.len(), b.len(), "slice counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.source, y.source);
        assert_eq!(x.properties, y.properties);
        assert_eq!(x.entities, y.entities);
        assert_eq!(x.num_facts, y.num_facts);
        assert_eq!(x.num_new_facts, y.num_new_facts);
        assert_eq!(
            x.profit.to_bits(),
            y.profit.to_bits(),
            "profits not bit-identical"
        );
    }
}

/// The acceptance scenario at the framework level: 20 sources, one injected
/// worker panic and one injected budget exhaustion (by round-0 source
/// index). The run completes, quarantines exactly those 2, and its slices
/// are bit-identical to a clean run over the 18 survivors — at every thread
/// count.
#[test]
fn k_fault_run_matches_clean_run_over_survivors() {
    let _session = plan_session();
    let mut t = Interner::new();
    let corpus = twenty_source_corpus(&mut t);
    assert_eq!(corpus.len(), 20);

    // Round-0 indices follow the framework's sorted source order.
    let mut sorted_urls: Vec<SourceUrl> = corpus.iter().map(|s| s.url.clone()).collect();
    sorted_urls.sort();
    let panicked = sorted_urls[2].clone();
    let exhausted = sorted_urls[7].clone();
    let survivors: Vec<SourceFacts> = corpus
        .iter()
        .filter(|s| s.url != panicked && s.url != exhausted)
        .cloned()
        .collect();
    assert_eq!(survivors.len(), 18);

    let plan = FaultPlan::parse("panic@#2,budget@#7").unwrap();
    for threads in [1, 2, 4, 8] {
        faultinject::install(plan.clone());
        let faulted = run_framework(corpus.clone(), threads);
        faultinject::clear();
        let clean = run_framework(survivors.clone(), threads);

        assert_eq!(faulted.quarantine.len(), 2, "threads={threads}");
        assert!(faulted.quarantine.contains_source(panicked.as_str()));
        assert!(faulted.quarantine.contains_source(exhausted.as_str()));
        let tags: Vec<&str> = faulted.quarantine.iter().map(|f| f.cause.tag()).collect();
        assert!(
            tags.contains(&"panic") && tags.contains(&"budget"),
            "{tags:?}"
        );
        for fault in faulted.quarantine.iter() {
            assert_eq!(fault.stage, Stage::Detect);
        }
        assert!(clean.quarantine.is_empty());
        assert_bit_identical(&faulted.slices, &clean.slices);
    }
}

/// URL-substring targeting: a panic injected into one leaf quarantines only
/// that leaf, with the injected message preserved in the fault record.
#[test]
fn injected_worker_panic_quarantines_only_the_target() {
    let _session = plan_session();
    let mut t = Interner::new();
    let corpus = twenty_source_corpus(&mut t);
    let target = "domain3.example.org/dir/page1";
    faultinject::install(FaultPlan::parse(&format!("panic@{target}")).unwrap());
    let report = run_framework(corpus.clone(), 4);
    faultinject::clear();

    assert_eq!(report.quarantine.len(), 1);
    let fault = report.quarantine.iter().next().unwrap();
    assert!(fault.source.contains(target));
    match &fault.cause {
        FaultCause::Panic { message } => {
            assert!(message.contains("injected worker panic"), "{message}");
        }
        other => panic!("unexpected cause {other:?}"),
    }
    let clean: Vec<SourceFacts> = corpus
        .into_iter()
        .filter(|s| !s.url.as_str().contains(target))
        .collect();
    let clean_report = run_framework(clean, 4);
    assert_bit_identical(&report.slices, &clean_report.slices);
}

/// Every source faulted: the run still completes, returns no slices, and
/// quarantines all N sources.
#[test]
fn all_sources_faulted_still_completes() {
    let _session = plan_session();
    let mut t = Interner::new();
    let corpus = twenty_source_corpus(&mut t);
    let n = corpus.len();
    faultinject::install(FaultPlan::parse("panic@http").unwrap());
    let report = run_framework(corpus, 4);
    faultinject::clear();
    assert!(report.slices.is_empty());
    assert_eq!(report.quarantine.len(), n);
    assert_eq!(report.rounds, 0, "no surviving leaves, no merge rounds");
}

/// A budget breach in a merge round (the section/domain shards outgrow the
/// fact cap) quarantines the parent task but keeps the children's page-level
/// slices competing: degraded, finer-grained output instead of none.
#[test]
fn consolidate_fault_keeps_children_competing() {
    // No injection plan needed — the fact cap does the faulting — but the
    // clean reference run must not race against another test's plan.
    let _session = plan_session();
    let mut t = Interner::new();
    let pages = vertical_pages(&mut t, "http://site.example/dir", "rocket", 6, 4);
    let leaf_size = pages[0].len();
    let alg = MidasAlg::new(MidasConfig::running_example());

    // Clean run: the 6 sibling pages consolidate into one section slice.
    let clean = Framework::new(&alg, alg.config.cost).run(pages.clone(), &KnowledgeBase::new());
    assert_eq!(clean.slices.len(), 1);

    // Cap between leaf size and merged-section size: round 0 passes, every
    // merge round breaches.
    let budgeted = Framework::new(&alg, alg.config.cost)
        .with_budget(SourceBudget::unlimited().with_max_facts(leaf_size + 1))
        .run(pages, &KnowledgeBase::new());
    assert!(!budgeted.quarantine.is_empty());
    for fault in budgeted.quarantine.iter() {
        assert_eq!(fault.stage, Stage::Consolidate);
        assert_eq!(fault.cause.tag(), "budget");
    }
    assert_eq!(
        budgeted.slices.len(),
        6,
        "page-level slices survive the lost consolidation: {:?}",
        budgeted.slices
    );
    assert!(budgeted
        .slices
        .iter()
        .all(|s| s.source.as_str().contains("page")));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Panic-isolated mapping: whatever the fault positions, every surviving
    /// task's result appears unperturbed, in place, in input order.
    #[test]
    fn fault_positions_never_perturb_surviving_results(
        mask in proptest::collection::vec(any::<bool>(), 1..48),
        threads in 1usize..5,
    ) {
        let items: Vec<(usize, bool)> = mask.iter().copied().enumerate().collect();
        let results = par_map_isolated(threads, items, |(i, faulty)| {
            if faulty {
                panic!("injected fault at {i}");
            }
            i * 3 + 1
        });
        prop_assert_eq!(results.len(), mask.len());
        for (i, (result, &faulty)) in results.iter().zip(&mask).enumerate() {
            match result {
                Ok(v) => {
                    prop_assert!(!faulty, "task {i} should have faulted");
                    prop_assert_eq!(*v, i * 3 + 1);
                }
                Err(fault) => {
                    prop_assert!(faulty, "task {i} should have survived");
                    prop_assert_eq!(fault.index, i);
                }
            }
        }
    }
}
