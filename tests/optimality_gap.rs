//! Measuring MIDASalg against the provable optimum on small instances.
//!
//! Slice discovery is APX-complete (Theorem 11), so MIDASalg carries no
//! approximation guarantee. The [`Exact`] reference solver quantifies the
//! gap on adversarial random sources (dense, heavily-overlapping extents —
//! much nastier than real web verticals): Algorithm 1's greedy marginal
//! rule tends to *over-select*, paying roughly one extra training fee `f_p`
//! when a leaner combination would have covered the same entities. On this
//! distribution MIDAS lands exactly on the optimum in ≈ 60 % of instances
//! with a mean relative gap of a few percent; on the paper-shaped corpora
//! (clean verticals) it is optimal essentially always (see the Figure 9/11
//! experiments).

use midas::prelude::*;
use midas_baselines::Exact;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random small source: up to 12 entities over 4 predicates with 3 values
/// each, each fact known with probability `known_p`.
fn random_instance(seed: u64) -> (SourceFacts, KnowledgeBase) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut terms = Interner::new();
    let n_entities = rng.gen_range(2..=12usize);
    let known_p: f64 = rng.gen_range(0.0..0.9);
    let mut facts = Vec::new();
    let mut kb = KnowledgeBase::new();
    for e in 0..n_entities {
        for p in 0..4 {
            if rng.gen::<f64>() < 0.7 {
                let v = rng.gen_range(0..3u8);
                let f = Fact::intern(
                    &mut terms,
                    &format!("e{e}"),
                    &format!("p{p}"),
                    &format!("v{v}"),
                );
                facts.push(f);
                if rng.gen::<f64>() < known_p {
                    kb.insert(f);
                }
            }
        }
    }
    let url = SourceUrl::parse("http://gap.example/src").unwrap();
    (SourceFacts::new(url, facts), kb)
}

#[test]
fn midas_is_near_optimal_on_small_instances() {
    let cost = CostModel::running_example();
    let exact = Exact::new(cost);
    let midas = MidasAlg::new(MidasConfig::running_example());
    let greedy = Greedy::new(cost);

    let mut total = 0usize;
    let mut midas_optimal = 0usize;
    let mut midas_gap_sum = 0.0f64;
    let mut greedy_optimal = 0usize;
    for seed in 0..150u64 {
        let (src, kb) = random_instance(seed);
        if src.is_empty() {
            continue;
        }
        let Some(optimal) = exact.solve(&src, &kb) else {
            continue;
        };
        let f_opt = exact.set_profit(&src, &kb, &optimal);
        let f_midas = exact.set_profit(&src, &kb, &midas.run(&src, &kb));
        let f_greedy = exact.set_profit(
            &src,
            &kb,
            &greedy
                .detect(DetectInput {
                    source: &src,
                    kb: &kb,
                    seeds: &[],
                })
                .into_iter()
                .filter(|s| s.profit > 0.0)
                .collect::<Vec<_>>(),
        );

        // The optimum really is an upper bound for every algorithm.
        assert!(
            f_midas <= f_opt + 1e-9,
            "seed {seed}: MIDAS {f_midas} exceeds the optimum {f_opt}"
        );
        assert!(
            f_greedy <= f_opt + 1e-9,
            "seed {seed}: GREEDY {f_greedy} exceeds the optimum {f_opt}"
        );

        total += 1;
        if (f_opt - f_midas).abs() < 1e-9 {
            midas_optimal += 1;
        }
        if (f_opt - f_greedy).abs() < 1e-9 {
            greedy_optimal += 1;
        }
        if f_opt > 0.0 {
            midas_gap_sum += (f_opt - f_midas) / f_opt;
        }
    }

    assert!(total >= 100, "enough solvable instances: {total}");
    let midas_rate = midas_optimal as f64 / total as f64;
    let mean_gap = midas_gap_sum / total as f64;
    assert!(
        midas_rate >= 0.55,
        "MIDAS should hit the optimum on most adversarial instances, got {midas_rate:.2}"
    );
    assert!(
        mean_gap <= 0.05,
        "mean relative optimality gap should stay small, got {mean_gap:.4}"
    );
    // And MIDAS is at least as often optimal as single-slice GREEDY.
    assert!(
        midas_optimal >= greedy_optimal,
        "MIDAS {midas_optimal} vs GREEDY {greedy_optimal} of {total}"
    );
}
