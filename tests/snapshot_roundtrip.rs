//! End-to-end contract of `--snapshot-cache`: a warm (memory-mapped) run is
//! byte-identical to a cold run for every subcommand, and a damaged or
//! stale snapshot degrades to cold extraction with a note — never to a
//! wrong answer, never to an abort.
//!
//! These tests drive the real CLI (`midas_cli::run`) over a generated
//! kvault corpus, so they cover the full chain: cache-key hashing, the
//! `MSNP` container, zero-copy fact-table reassembly, and the framework
//! consuming prebuilt tables.

use midas_cli::run;
use std::path::{Path, PathBuf};

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn cli(parts: &[&str]) -> String {
    let mut out = Vec::new();
    run(&argv(parts), &mut out).expect("cli run succeeds");
    String::from_utf8(out).expect("cli output is UTF-8")
}

/// Output with cache-activity notes stripped: the only permitted
/// difference between cached and uncached runs.
fn body(text: &str) -> String {
    text.lines()
        .filter(|l| {
            let l = l.trim_start_matches("# ");
            !l.starts_with("snapshot cache") && !l.starts_with("slice cache")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        Fixture::with_seed(tag, 42)
    }

    fn with_seed(tag: &str, seed: u32) -> Fixture {
        let dir = std::env::temp_dir().join(format!("midas_snap_rt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        cli(&[
            "generate",
            "--dataset",
            "kvault",
            "--scale",
            "0.05",
            "--seed",
            &seed.to_string(),
            "--out",
            dir.to_str().unwrap(),
        ]);
        Fixture { dir }
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_str().unwrap().to_owned()
    }

    fn cache(&self) -> String {
        self.path("cache")
    }

    /// The single corpus snapshot in the cache directory (the dir also
    /// holds the lock file, the manifest, and any slice-report snapshots).
    fn snapshot_file(&self) -> PathBuf {
        let mut files: Vec<PathBuf> = corpus_snapshots(&self.dir.join("cache"));
        assert_eq!(files.len(), 1, "expected exactly one snapshot: {files:?}");
        files.pop().unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Corpus (`.snap`, non-slices) snapshot files in a cache directory.
fn corpus_snapshots(cache: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_str().unwrap();
            name.ends_with(".snap") && !name.ends_with("-slices.snap")
        })
        .collect();
    files.sort();
    files
}

fn discover_args(f: &Fixture, cached: bool) -> Vec<String> {
    let mut v = argv(&[
        "discover",
        "--facts",
        &f.path("facts.tsv"),
        "--kb",
        &f.path("kb.tsv"),
        "--top",
        "8",
        "--explain",
    ]);
    if cached {
        v.extend(argv(&["--snapshot-cache", &f.cache()]));
    }
    v
}

fn run_discover(f: &Fixture, cached: bool) -> String {
    let mut out = Vec::new();
    run(&discover_args(f, cached), &mut out).expect("discover succeeds");
    String::from_utf8(out).unwrap()
}

/// Cold, miss (writes the snapshot), and warm (maps it) discover runs all
/// print the same report; eval metrics agree as well.
#[test]
fn warm_runs_are_bit_identical_to_cold_runs() {
    let f = Fixture::new("identical");

    let cold = run_discover(&f, false);
    let miss = run_discover(&f, true);
    let warm = run_discover(&f, true);

    assert!(miss.contains("snapshot cache write:"), "{miss}");
    assert!(warm.contains("snapshot cache hit:"), "{warm}");
    assert_eq!(body(&cold), body(&miss), "miss must match uncached");
    assert_eq!(body(&cold), body(&warm), "warm must match uncached");

    let eval = |cached: bool| {
        let mut v = argv(&[
            "eval",
            "--facts",
            &f.path("facts.tsv"),
            "--kb",
            &f.path("kb.tsv"),
            "--gold",
            &f.path("gold.tsv"),
        ]);
        if cached {
            v.extend(argv(&["--snapshot-cache", &f.cache()]));
        }
        let mut out = Vec::new();
        run(&v, &mut out).expect("eval succeeds");
        String::from_utf8(out).unwrap()
    };
    let cold_eval = eval(false);
    let warm_eval = eval(true);
    assert!(warm_eval.contains("snapshot cache hit:"), "{warm_eval}");
    assert_eq!(body(&cold_eval), body(&warm_eval), "eval metrics identical");
}

fn damage_then_rerun(f: &Fixture, damage: impl FnOnce(&Path)) {
    let cold = run_discover(f, false);
    let miss = run_discover(f, true);
    assert!(miss.contains("snapshot cache write:"), "{miss}");

    let snap = f.snapshot_file();
    damage(&snap);

    let fallback = run_discover(f, true);
    assert!(
        fallback.contains("snapshot cache: quarantined"),
        "damaged snapshot must be reported: {fallback}"
    );
    assert!(
        fallback.contains("snapshot cache write:"),
        "damaged snapshot must be replaced: {fallback}"
    );
    assert_eq!(body(&cold), body(&fallback), "fallback output identical");

    let healed = run_discover(f, true);
    assert!(healed.contains("snapshot cache hit:"), "{healed}");
    assert_eq!(body(&cold), body(&healed), "healed output identical");
}

/// A truncated snapshot (interrupted write, disk-full copy) is detected,
/// ignored, and rewritten in place.
#[test]
fn truncated_snapshot_falls_back_and_heals() {
    let f = Fixture::new("truncate");
    damage_then_rerun(&f, |snap| {
        let bytes = std::fs::read(snap).unwrap();
        std::fs::write(snap, &bytes[..bytes.len() / 2]).unwrap();
    });
}

/// A bit flip deep in the payload trips the container checksum.
#[test]
fn corrupted_snapshot_falls_back_and_heals() {
    let f = Fixture::new("corrupt");
    damage_then_rerun(&f, |snap| {
        let mut bytes = std::fs::read(snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(snap, bytes).unwrap();
    });
}

/// A structurally sound snapshot of *different* inputs planted at the
/// expected path fails the stored-key check (stale cache entry).
#[test]
fn stale_snapshot_with_wrong_key_falls_back_and_heals() {
    // A different seed yields different inputs, hence a different stored
    // key inside the foreign snapshot.
    let other = Fixture::with_seed("stale_other", 7);
    let _ = run_discover(&other, true);
    let foreign = std::fs::read(other.snapshot_file()).unwrap();

    let f = Fixture::new("stale_main");
    damage_then_rerun(&f, move |snap| {
        std::fs::write(snap, foreign).unwrap();
    });
}

/// Editing an input file addresses a different snapshot: the stale entry
/// is simply not consulted, and the new corpus gets its own.
#[test]
fn editing_inputs_addresses_a_new_snapshot() {
    let f = Fixture::new("invalidate");
    let first_cached = run_discover(&f, true);
    assert!(
        first_cached.contains("snapshot cache write:"),
        "{first_cached}"
    );

    let facts = f.path("facts.tsv");
    let mut tsv = std::fs::read_to_string(&facts).unwrap();
    tsv.push_str("http://late-addition.example.org/page\tnew_entity\ttype\tstraggler\n");
    std::fs::write(&facts, tsv).unwrap();

    let cold = run_discover(&f, false);
    let miss = run_discover(&f, true);
    assert!(
        miss.contains("snapshot cache write:"),
        "edited corpus is a miss: {miss}"
    );
    let warm = run_discover(&f, true);
    assert!(warm.contains("snapshot cache hit:"), "{warm}");
    assert_eq!(body(&cold), body(&miss));
    assert_eq!(body(&cold), body(&warm));
    assert_eq!(
        corpus_snapshots(&f.dir.join("cache")).len(),
        2,
        "old and new snapshots coexist"
    );
}
