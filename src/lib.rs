//! # MIDAS — finding the right web sources to fill knowledge gaps
//!
//! A from-scratch Rust reproduction of *"MIDAS: Finding the Right Web
//! Sources to Fill Knowledge Gaps"* (Wang, Dong, Li, Meliou — ICDE 2019).
//!
//! MIDAS consumes the (noisy, low-recall) output of automated knowledge
//! extraction pipelines and identifies **web source slices** — conjunctive
//! property queries like *"rocket families sponsored by NASA at
//! `http://space.skyrocket.de/doc_lau_fam`"* — that are the most profitable
//! targets for augmenting an existing knowledge base.
//!
//! ## Crate map
//!
//! * [`kb`] — dictionary-encoded triple store (the knowledge base
//!   substrate): interning, SPO/POS/OSP indexes, N-Triples/TSV IO.
//! * [`weburl`] — URL normalisation and the multi-granularity source
//!   hierarchy.
//! * [`core`] — the paper's contribution: fact tables, slices, the profit
//!   function, MIDASalg, and the shard/detect/consolidate framework.
//! * [`baselines`] — NAIVE, GREEDY, and AGGCLUSTER.
//! * [`extract`] — the extraction-pipeline simulator and every corpus
//!   generator used by the evaluation (ReVerb / NELL / slim / §IV-D
//!   synthetic / KnowledgeVault-like).
//! * [`eval`] — precision/recall metrics, the silver standard, the
//!   simulated annotator, and timed runners.
//!
//! ## Quickstart
//!
//! ```
//! use midas::prelude::*;
//!
//! // Facts extracted from a page of one web site (with interned terms).
//! let mut terms = Interner::new();
//! let page = SourceUrl::parse("http://cocktails.example.org/margarita").unwrap();
//! let facts = vec![
//!     Fact::intern(&mut terms, "margarita", "type", "cocktail"),
//!     Fact::intern(&mut terms, "margarita", "ingredient", "tequila"),
//!     Fact::intern(&mut terms, "mojito", "type", "cocktail"),
//!     Fact::intern(&mut terms, "mojito", "ingredient", "rum"),
//! ];
//! let source = SourceFacts::new(page, facts);
//!
//! // An existing knowledge base that knows none of this.
//! let kb = KnowledgeBase::new();
//!
//! // Run MIDASalg with the paper's running-example cost model.
//! let alg = MidasAlg::new(MidasConfig::running_example());
//! let slices = alg.run(&source, &kb);
//! assert_eq!(slices.len(), 1);
//! assert!(slices[0].describe(&terms).contains("type = cocktail"));
//! ```

pub use midas_baselines as baselines;
pub use midas_core as core;
pub use midas_eval as eval;
pub use midas_extract as extract;
pub use midas_kb as kb;
pub use midas_weburl as weburl;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use midas_baselines::{AggCluster, Greedy, Naive};
    pub use midas_core::{
        AugmentationStep, Augmenter, BreachKind, BudgetBreach, BudgetScope, CostModel, DetectInput,
        DiscoveredSlice, ExportPolicy, ExtentSet, FactTable, FaultCause, FaultPlan, Framework,
        KbDelta, MidasAlg, MidasConfig, ProfitCtx, Quarantine, RoundCache, SliceDetector,
        SliceHierarchy, SourceBudget, SourceFacts, SourceFault, Stage,
    };
    pub use midas_eval::{
        coverage_adjusted, match_to_gold, merge_by_domain, quarantine_table,
        run_detector_per_source, run_detector_per_source_budgeted, run_midas_framework,
        SimulatedAnnotator, Table,
    };
    pub use midas_extract::{Dataset, GoldSlice, GroundTruth};
    pub use midas_kb::{Fact, Interner, KnowledgeBase, SharedInterner, Symbol};
    pub use midas_weburl::{SourceTrie, SourceUrl};
}
