//! The AGGCLUSTER baseline: agglomerative clustering with profit linkage.
//!
//! §IV-B: *"agglomerative clustering, using our proposed objective function
//! as the distance metric. This algorithm initializes a cluster for each
//! individual entity, and it merges two clusters that lead to the highest
//! non-negative profit gain at each iteration. The time complexity of this
//! algorithm is O(|E|² log |E|)."*
//!
//! A cluster is described by the *common properties* of its entities; its
//! slice extent is the selection of those properties over the whole fact
//! table (merging two thematically unrelated clusters produces an empty
//! description, i.e. the whole source, and a large de-duplication cost — so
//! such merges never have positive gain). Candidate pairs are kept in a
//! lazy max-heap keyed by merge gain; entries are re-validated against
//! cluster versions on pop, giving the `O(|E|² log |E|)` behaviour the paper
//! reports — including its cliff on disproportionately large sources.

use midas_core::fact_table::intersect_sorted;
use midas_core::{
    CostModel, DetectInput, DiscoveredSlice, EntityId, ExtentSet, FactTable, ProfitCtx, PropertyId,
    SliceDetector, SourceFacts,
};
use midas_kb::{KnowledgeBase, Symbol};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Agglomerative clustering baseline.
#[derive(Debug, Clone)]
pub struct AggCluster {
    /// The Definition 9 cost model used as linkage.
    pub cost: CostModel,
    /// Safety valve: sources with more entities than this are truncated to
    /// the first `max_entities` (the quadratic heap otherwise makes giant
    /// sources intractable; the paper simply lets them dominate runtime).
    pub max_entities: usize,
}

impl Default for AggCluster {
    fn default() -> Self {
        AggCluster {
            cost: CostModel::default(),
            max_entities: 20_000,
        }
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    props: Vec<PropertyId>,
    extent: ExtentSet,
    profit: f64,
    version: u32,
    alive: bool,
}

struct HeapEntry {
    gain: f64,
    a: usize,
    b: usize,
    version_a: u32,
    version_b: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain.total_cmp(&other.gain)
    }
}

impl AggCluster {
    /// Creates the baseline with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        AggCluster {
            cost,
            ..AggCluster::default()
        }
    }

    /// Clusters the entities of `source` and reports the resulting slices
    /// (multi-entity clusters and positive-profit singletons).
    pub fn cluster(&self, source: &SourceFacts, kb: &KnowledgeBase) -> Vec<DiscoveredSlice> {
        if source.is_empty() {
            return Vec::new();
        }
        let table = FactTable::build(source, kb);
        let ctx = ProfitCtx::new(&table, self.cost);
        let n = table.num_entities().min(self.max_entities);

        let mut clusters: Vec<Cluster> = (0..n as EntityId)
            .map(|e| {
                let props = table.entity_properties(e).to_vec();
                let extent = if props.is_empty() {
                    ExtentSet::from_sorted(table.num_entities() as u32, vec![e])
                } else {
                    table.extent_of(&props)
                };
                let profit = ctx.profit_single(&extent);
                Cluster {
                    props,
                    extent,
                    profit,
                    version: 0,
                    alive: true,
                }
            })
            .collect();

        // Initial candidate pairs: clusters sharing at least one property
        // (merging property-disjoint clusters yields the whole source and
        // never has positive gain).
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        {
            let mut by_prop: std::collections::HashMap<PropertyId, Vec<usize>> =
                std::collections::HashMap::new();
            for (i, c) in clusters.iter().enumerate() {
                for &p in &c.props {
                    by_prop.entry(p).or_default().push(i);
                }
            }
            let mut seen: std::collections::HashSet<(usize, usize)> =
                std::collections::HashSet::new();
            for members in by_prop.values() {
                for (x, &i) in members.iter().enumerate() {
                    for &j in &members[x + 1..] {
                        if seen.insert((i, j)) {
                            if let Some(e) = self.gain_entry(&ctx, &table, &clusters, i, j) {
                                heap.push(e);
                            }
                        }
                    }
                }
            }
        }

        while let Some(entry) = heap.pop() {
            let (i, j) = (entry.a, entry.b);
            if !clusters[i].alive
                || !clusters[j].alive
                || clusters[i].version != entry.version_a
                || clusters[j].version != entry.version_b
            {
                continue;
            }
            if entry.gain < 0.0 {
                break;
            }
            // Merge j into a fresh cluster.
            let props = intersect_sorted_props(&clusters[i].props, &clusters[j].props);
            let extent = if props.is_empty() {
                clusters[i].extent.union(&clusters[j].extent)
            } else {
                table.extent_of(&props)
            };
            let profit = ctx.profit_single(&extent);
            clusters[i].alive = false;
            clusters[j].alive = false;
            let merged = Cluster {
                props,
                extent,
                profit,
                version: 0,
                alive: true,
            };
            let mid = clusters.len();
            clusters.push(merged);
            // New candidate pairs against all alive clusters sharing a prop.
            for k in 0..mid {
                if clusters[k].alive && shares_property(&clusters[mid].props, &clusters[k].props) {
                    if let Some(e) = self.gain_entry(&ctx, &table, &clusters, k, mid) {
                        heap.push(e);
                    }
                }
            }
        }

        let mut out: Vec<DiscoveredSlice> = Vec::new();
        let mut reported_props: Vec<Vec<PropertyId>> = Vec::new();
        for c in clusters.iter().filter(|c| c.alive) {
            if c.extent.len() < 2 && c.profit <= 0.0 {
                continue; // unmerged singletons with no value
            }
            if reported_props.contains(&c.props) {
                continue; // identical description already reported
            }
            reported_props.push(c.props.clone());
            let mut properties: Vec<(Symbol, Symbol)> =
                c.props.iter().map(|&p| table.catalog().pair(p)).collect();
            properties.sort_unstable();
            let mut entities: Vec<Symbol> = c.extent.iter().map(|e| table.subject(e)).collect();
            entities.sort_unstable();
            out.push(DiscoveredSlice {
                source: source.url.clone(),
                properties,
                entities,
                num_facts: table.facts_sum(&c.extent) as usize,
                num_new_facts: table.new_sum(&c.extent) as usize,
                profit: c.profit,
            });
        }
        out.sort_by(|a, b| b.profit.partial_cmp(&a.profit).expect("finite profits"));
        out
    }

    /// Gain of replacing clusters {i, j} by their merge.
    fn gain_entry(
        &self,
        ctx: &ProfitCtx<'_>,
        table: &FactTable,
        clusters: &[Cluster],
        i: usize,
        j: usize,
    ) -> Option<HeapEntry> {
        let (ci, cj) = (&clusters[i], &clusters[j]);
        let props = intersect_sorted_props(&ci.props, &cj.props);
        let merged_extent = if props.is_empty() {
            return None;
        } else {
            table.extent_of(&props)
        };
        let merged_profit = ctx.profit_single(&merged_extent);
        // f({merged}) vs f({i, j}): the pair shares one crawl term, so the
        // difference is the union-based set profit with k = 2.
        let union = ci.extent.union(&cj.extent);
        let pair_profit = ctx.profit_set(&union, 2);
        let gain = merged_profit - pair_profit;
        Some(HeapEntry {
            gain,
            a: i,
            b: j,
            version_a: ci.version,
            version_b: cj.version,
        })
    }
}

fn intersect_sorted_props(a: &[PropertyId], b: &[PropertyId]) -> Vec<PropertyId> {
    intersect_sorted(a, b)
}

fn shares_property(a: &[PropertyId], b: &[PropertyId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => return true,
        }
    }
    false
}

impl SliceDetector for AggCluster {
    fn name(&self) -> &'static str {
        "aggcluster"
    }

    fn detect(&self, input: DetectInput<'_>) -> Vec<DiscoveredSlice> {
        self.cluster(input.source, input.kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_core::fixtures::skyrocket;
    use midas_kb::Interner;

    /// On the running example AGGCLUSTER keeps merging until it reaches the
    /// "sponsored by NASA" cluster (all five entities, profit 4.257): a
    /// *local optimum* — merging can never drop the worthless space-program
    /// entities again, whereas MIDASalg reports S5 with profit 4.327. This
    /// is exactly the failure mode §IV-C attributes to AGGCLUSTER.
    #[test]
    fn reaches_the_sponsor_nasa_local_optimum() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let agg = AggCluster::new(CostModel::running_example());
        let slices = agg.cluster(&src, &kb);
        assert!(!slices.is_empty());
        let best = &slices[0];
        assert_eq!(
            best.entities.len(),
            5,
            "merged to everything NASA-sponsored"
        );
        assert_eq!(best.num_new_facts, 6);
        assert!((best.profit - 4.257).abs() < 1e-9);
        assert!(
            best.profit < 4.327,
            "strictly worse than MIDASalg's S5 — the local optimum"
        );
        let names: Vec<String> = best
            .properties
            .iter()
            .map(|&(p, v)| format!("{}={}", t.resolve(p), t.resolve(v)))
            .collect();
        assert_eq!(names, vec!["sponsor=NASA".to_owned()]);
    }

    #[test]
    fn never_merges_unrelated_verticals() {
        let mut t = Interner::new();
        let mut facts = Vec::new();
        for i in 0..8 {
            facts.push(midas_kb::Fact::intern(
                &mut t,
                &format!("golf{i}"),
                "type",
                "golf",
            ));
            facts.push(midas_kb::Fact::intern(
                &mut t,
                &format!("golf{i}"),
                "hole",
                &format!("h{i}"),
            ));
            facts.push(midas_kb::Fact::intern(
                &mut t,
                &format!("game{i}"),
                "kind",
                "boardgame",
            ));
            facts.push(midas_kb::Fact::intern(
                &mut t,
                &format!("game{i}"),
                "player",
                &format!("p{i}"),
            ));
        }
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://mixed.com/x").unwrap(),
            facts,
        );
        let agg = AggCluster::new(CostModel::running_example());
        let slices = agg.cluster(&src, &KnowledgeBase::new());
        // Both verticals found as separate clusters (no shared property).
        let big: Vec<&DiscoveredSlice> = slices.iter().filter(|s| s.entities.len() == 8).collect();
        assert_eq!(big.len(), 2, "two separate 8-entity clusters: {slices:?}");
    }

    #[test]
    fn respects_entity_cap() {
        let mut t = Interner::new();
        let mut facts = Vec::new();
        for i in 0..50 {
            facts.push(midas_kb::Fact::intern(
                &mut t,
                &format!("e{i}"),
                "type",
                "thing",
            ));
        }
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://big.com/x").unwrap(),
            facts,
        );
        let mut agg = AggCluster::new(CostModel::running_example());
        agg.max_entities = 10;
        let slices = agg.cluster(&src, &KnowledgeBase::new());
        for s in &slices {
            assert!(s.entities.len() <= 50);
        }
    }

    #[test]
    fn empty_source_yields_nothing() {
        let agg = AggCluster::default();
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://empty.com").unwrap(),
            vec![],
        );
        assert!(agg.cluster(&src, &KnowledgeBase::new()).is_empty());
        assert_eq!(agg.name(), "aggcluster");
    }
}
