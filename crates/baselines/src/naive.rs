//! The NAIVE baseline: whole sources ranked by new-fact count.

use midas_core::{
    CostModel, DetectInput, DiscoveredSlice, ExtentSet, FactTable, ProfitCtx, SliceDetector,
    SourceFacts,
};
use midas_kb::{KnowledgeBase, Symbol};

/// Ranks entire web sources by the number of facts they would add.
///
/// NAIVE has no notion of content: it reports one property-free slice per
/// source covering every entity, ranked by `|T_W \ E|`. The paper notes it
/// "may consider a forum or a news website, which contains a large number of
/// loosely related extractions, as a good web source slice".
#[derive(Debug, Clone, Default)]
pub struct Naive {
    /// Cost model used only to attach a Definition 9 profit to the reported
    /// whole-source slices (the *ranking* is by new-fact count).
    pub cost: CostModel,
}

impl Naive {
    /// Creates the baseline with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Naive { cost }
    }

    /// The whole-source slice of `source`.
    pub fn whole_source_slice(
        &self,
        source: &SourceFacts,
        kb: &KnowledgeBase,
    ) -> Option<DiscoveredSlice> {
        if source.is_empty() {
            return None;
        }
        let table = FactTable::build(source, kb);
        let ctx = ProfitCtx::new(&table, self.cost);
        let extent = ExtentSet::full(table.num_entities() as u32);
        let mut entities: Vec<Symbol> = extent.iter().map(|e| table.subject(e)).collect();
        entities.sort_unstable();
        Some(DiscoveredSlice {
            source: source.url.clone(),
            properties: Vec::new(),
            entities,
            num_facts: table.facts_sum(&extent) as usize,
            num_new_facts: table.new_sum(&extent) as usize,
            profit: ctx.profit_single(&extent),
        })
    }

    /// Ranks a corpus of sources by descending new-fact count.
    pub fn rank(&self, sources: &[SourceFacts], kb: &KnowledgeBase) -> Vec<DiscoveredSlice> {
        let mut out: Vec<DiscoveredSlice> = sources
            .iter()
            .filter_map(|s| self.whole_source_slice(s, kb))
            .collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.num_new_facts));
        out
    }
}

impl SliceDetector for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn detect(&self, input: DetectInput<'_>) -> Vec<DiscoveredSlice> {
        self.whole_source_slice(input.source, input.kb)
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_core::fixtures::{skyrocket, skyrocket_pages};
    use midas_kb::Interner;

    #[test]
    fn whole_source_slice_covers_everything() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let naive = Naive::new(CostModel::running_example());
        let s = naive.whole_source_slice(&src, &kb).unwrap();
        assert!(s.properties.is_empty());
        assert_eq!(s.entities.len(), 5);
        assert_eq!(s.num_facts, 13);
        assert_eq!(s.num_new_facts, 6);
    }

    #[test]
    fn ranking_is_by_new_fact_count() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let naive = Naive::new(CostModel::running_example());
        let ranked = naive.rank(&pages, &kb);
        assert_eq!(ranked.len(), 5);
        for w in ranked.windows(2) {
            assert!(w[0].num_new_facts >= w[1].num_new_facts);
        }
        // The two rocket-family pages (3 new facts each) come first.
        assert!(ranked[0].source.as_str().contains("doc_lau_fam"));
        assert!(ranked[1].source.as_str().contains("doc_lau_fam"));
    }

    #[test]
    fn empty_source_is_skipped() {
        let naive = Naive::default();
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://empty.com").unwrap(),
            vec![],
        );
        assert!(naive
            .whole_source_slice(&src, &KnowledgeBase::new())
            .is_none());
    }

    #[test]
    fn detector_interface_returns_one_slice() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let naive = Naive::new(CostModel::running_example());
        let out = naive.detect(DetectInput {
            source: &src,
            kb: &kb,
            seeds: &[],
        });
        assert_eq!(out.len(), 1);
        assert_eq!(naive.name(), "naive");
    }
}
