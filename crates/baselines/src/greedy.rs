//! The GREEDY baseline: one best slice per source.
//!
//! GREEDY "focuses on deriving a single slice with the maximum profit from a
//! web source. It relies on our proposed profit function and generates the
//! slice in a web source by iteratively selecting conditions that improve
//! the profit of the slice the most" (§IV-B).

use midas_core::{
    CostModel, DetectInput, DiscoveredSlice, ExtentSet, FactTable, ProfitCtx, PropertyId,
    SliceDetector, SourceFacts,
};
use midas_kb::{KnowledgeBase, Symbol};

/// Greedy single-slice refinement.
#[derive(Debug, Clone, Default)]
pub struct Greedy {
    /// The Definition 9 cost model driving the refinement.
    pub cost: CostModel,
}

impl Greedy {
    /// Creates the baseline with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Greedy { cost }
    }

    /// Derives the single greedy slice of `source` (None for empty sources).
    pub fn best_slice(&self, source: &SourceFacts, kb: &KnowledgeBase) -> Option<DiscoveredSlice> {
        if source.is_empty() {
            return None;
        }
        let table = FactTable::build(source, kb);
        let ctx = ProfitCtx::new(&table, self.cost);

        // Start from the empty slice (profit 0) and grow it one condition at
        // a time. Starting from the *whole source* instead would often beat
        // any conditioned slice under Definition 9 (scattered new facts are
        // cheap to keep at f_d = 0.01), collapsing GREEDY into NAIVE — the
        // paper's GREEDY demonstrably conditions (it finds the optimal slice
        // when there is exactly one, §IV-D), so the empty start is the
        // faithful reading of "iteratively selecting conditions".
        let mut props: Vec<PropertyId> = Vec::new();
        let mut extent = ExtentSet::full(table.num_entities() as u32);
        let mut profit = 0.0;

        loop {
            // Candidate conditions: properties carried by entities still in
            // the extent and not yet selected.
            let mut best: Option<(PropertyId, ExtentSet, f64)> = None;
            let mut candidates: Vec<PropertyId> = extent
                .iter()
                .flat_map(|e| table.entity_properties(e).iter().copied())
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            for cand in candidates {
                if props.contains(&cand) {
                    continue;
                }
                let new_extent = extent.intersect(table.catalog().extent(cand));
                if new_extent.is_empty() {
                    continue;
                }
                let p = ctx.profit_single(&new_extent);
                if p > profit && best.as_ref().is_none_or(|(_, _, bp)| p > *bp) {
                    best = Some((cand, new_extent, p));
                }
            }
            match best {
                Some((cand, new_extent, p)) => {
                    props.push(cand);
                    extent = new_extent;
                    profit = p;
                }
                None => break,
            }
        }

        if props.is_empty() {
            // No condition ever improved on the empty slice: nothing worth
            // extracting from this source.
            return None;
        }
        let mut properties: Vec<(Symbol, Symbol)> =
            props.iter().map(|&p| table.catalog().pair(p)).collect();
        properties.sort_unstable();
        let mut entities: Vec<Symbol> = extent.iter().map(|e| table.subject(e)).collect();
        entities.sort_unstable();
        Some(DiscoveredSlice {
            source: source.url.clone(),
            properties,
            entities,
            num_facts: table.facts_sum(&extent) as usize,
            num_new_facts: table.new_sum(&extent) as usize,
            profit,
        })
    }
}

impl SliceDetector for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn detect(&self, input: DetectInput<'_>) -> Vec<DiscoveredSlice> {
        self.best_slice(input.source, input.kb)
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_core::fixtures::skyrocket;
    use midas_kb::Interner;

    #[test]
    fn finds_s5_on_the_running_example() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let greedy = Greedy::new(CostModel::running_example());
        let s = greedy.best_slice(&src, &kb).unwrap();
        // The single best slice is S5: rocket families sponsored by NASA.
        assert_eq!(s.entities.len(), 2);
        assert_eq!(s.num_new_facts, 6);
        assert!((s.profit - 4.327).abs() < 1e-9);
        let names: Vec<String> = s
            .properties
            .iter()
            .map(|&(p, v)| format!("{}={}", t.resolve(p), t.resolve(v)))
            .collect();
        assert!(names.contains(&"category=rocket_family".to_owned()));
    }

    #[test]
    fn only_one_slice_even_with_two_optima() {
        // Two disjoint verticals in one source, one of them already known:
        // greedy conditions into the new one — and can never report both
        // verticals when both are new (the weakness Figure 11c exposes).
        let mut t = Interner::new();
        let mut facts = Vec::new();
        let mut kb = KnowledgeBase::new();
        for i in 0..10 {
            facts.push(midas_kb::Fact::intern(
                &mut t,
                &format!("golf{i}"),
                "type",
                "golf",
            ));
            facts.push(midas_kb::Fact::intern(
                &mut t,
                &format!("golf{i}"),
                "hole",
                &format!("h{i}"),
            ));
            let b1 = midas_kb::Fact::intern(&mut t, &format!("game{i}"), "type", "boardgame");
            let b2 =
                midas_kb::Fact::intern(&mut t, &format!("game{i}"), "player", &format!("p{i}"));
            facts.push(b1);
            facts.push(b2);
            kb.insert(b1);
            kb.insert(b2);
        }
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://mixed.com/x").unwrap(),
            facts,
        );
        let greedy = Greedy::new(CostModel::running_example());
        let s = greedy.best_slice(&src, &kb).unwrap();
        assert_eq!(s.entities.len(), 10, "conditions into the new vertical");
        assert!(s
            .properties
            .iter()
            .any(|&(p, v)| t.resolve(p) == "type" && t.resolve(v) == "golf"));
    }

    #[test]
    fn fully_known_source_yields_no_slice() {
        // A fully-known source: every condition slice has negative profit,
        // so greedy never leaves the empty start state.
        let mut t = Interner::new();
        let (src, _) = skyrocket(&mut t);
        let kb: KnowledgeBase = src.facts.iter().copied().collect();
        let greedy = Greedy::new(CostModel::running_example());
        assert!(greedy.best_slice(&src, &kb).is_none());
    }

    #[test]
    fn detector_interface() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let greedy = Greedy::new(CostModel::running_example());
        let out = greedy.detect(DetectInput {
            source: &src,
            kb: &kb,
            seeds: &[],
        });
        assert_eq!(out.len(), 1);
        assert_eq!(greedy.name(), "greedy");
    }

    #[test]
    fn empty_source_yields_nothing() {
        let greedy = Greedy::default();
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://empty.com").unwrap(),
            vec![],
        );
        assert!(greedy.best_slice(&src, &KnowledgeBase::new()).is_none());
    }
}
