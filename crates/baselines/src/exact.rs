//! An exact solver for small instances — the optimality reference.
//!
//! Theorem 11 makes optimal slice discovery NP-complete (and APX-complete),
//! so no polynomial algorithm can be exact in general. But on *small*
//! sources the optimum is computable outright:
//!
//! 1. every slice's profit depends only on its entity extent, and for every
//!    extent the canonical slice is a maximal representative — so it
//!    suffices to consider canonical slices;
//! 2. the canonical slices are exactly the closed property sets, i.e. the
//!    intersections `∩_{e∈S} C_e` over non-empty entity subsets — at most
//!    `2^n − 1` of them;
//! 3. with extents packed into bitmasks, every subset of candidate slices
//!    can be evaluated in microseconds.
//!
//! [`Exact`] therefore yields the true optimum for sources with up to
//! [`max_entities`](Exact::max_entities) entities and
//! [`max_slices`](Exact::max_slices) canonical slices, and returns nothing
//! (declining to answer) beyond that. The `optimality_gap` integration test
//! uses it to measure how far MIDASalg is from optimal on random instances.

use midas_core::{
    CostModel, DetectInput, DiscoveredSlice, EntityId, ExtentSet, FactTable, ProfitCtx, PropertyId,
    SliceDetector, SourceFacts,
};
use midas_kb::{KnowledgeBase, Symbol};

/// Brute-force exact slice discovery for small sources.
#[derive(Debug, Clone)]
pub struct Exact {
    /// Definition 9 cost model.
    pub cost: CostModel,
    /// Refuse sources with more entities than this (candidate enumeration
    /// is `O(2^n)`).
    pub max_entities: usize,
    /// Refuse instances with more canonical slices than this (subset
    /// enumeration is `O(2^k)`).
    pub max_slices: usize,
}

impl Default for Exact {
    fn default() -> Self {
        Exact {
            cost: CostModel::default(),
            max_entities: 16,
            max_slices: 20,
        }
    }
}

/// One candidate canonical slice with a bitmask extent.
struct Candidate {
    props: Vec<PropertyId>,
    extent_mask: u32,
}

impl Exact {
    /// Creates the solver with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Exact {
            cost,
            ..Exact::default()
        }
    }

    /// Computes the provably optimal slice set, or `None` when the instance
    /// exceeds the enumeration caps.
    pub fn solve(&self, source: &SourceFacts, kb: &KnowledgeBase) -> Option<Vec<DiscoveredSlice>> {
        if source.is_empty() {
            return Some(Vec::new());
        }
        let table = FactTable::build(source, kb);
        let n = table.num_entities();
        if n > self.max_entities {
            return None;
        }

        // Canonical slices = intersections over non-empty entity subsets.
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut seen: std::collections::BTreeSet<Vec<PropertyId>> = Default::default();
        for mask in 1u32..(1u32 << n) {
            let mut inter: Option<Vec<PropertyId>> = None;
            for e in 0..n as u32 {
                if mask & (1 << e) == 0 {
                    continue;
                }
                let eprops = table.entity_properties(e);
                inter = Some(match inter {
                    None => eprops.to_vec(),
                    Some(mut acc) => {
                        acc.retain(|p| eprops.contains(p));
                        acc
                    }
                });
                if inter.as_ref().is_some_and(Vec::is_empty) {
                    break;
                }
            }
            let props = inter.expect("non-empty mask");
            if props.is_empty() || !seen.insert(props.clone()) {
                continue;
            }
            let extent = table.extent_of(&props);
            let mut extent_mask = 0u32;
            for e in extent.iter() {
                extent_mask |= 1 << e;
            }
            candidates.push(Candidate { props, extent_mask });
        }
        if candidates.len() > self.max_slices {
            return None;
        }

        // Per-entity counts for mask-based set profit.
        let new_of: Vec<f64> = (0..n as u32).map(|e| f64::from(table.new_of(e))).collect();
        let facts_of: Vec<f64> = (0..n as u32)
            .map(|e| f64::from(table.facts_of(e)))
            .collect();
        let ctx = ProfitCtx::new(&table, self.cost);
        let profit_of = |slice_set: u32| -> f64 {
            if slice_set == 0 {
                return 0.0;
            }
            let mut union = 0u32;
            let mut k = 0usize;
            for (i, c) in candidates.iter().enumerate() {
                if slice_set & (1 << i) != 0 {
                    union |= c.extent_mask;
                    k += 1;
                }
            }
            let (mut gain, mut total) = (0.0, 0.0);
            for e in 0..n {
                if union & (1 << e) != 0 {
                    gain += new_of[e];
                    total += facts_of[e];
                }
            }
            (1.0 - self.cost.fv) * gain
                - self.cost.fd * total
                - self.cost.fp * k as f64
                - ctx.crawl_fixed()
        };

        let mut best_set = 0u32;
        let mut best_profit = 0.0f64;
        for slice_set in 0..(1u32 << candidates.len()) {
            let p = profit_of(slice_set);
            if p > best_profit {
                best_profit = p;
                best_set = slice_set;
            }
        }

        let mut out = Vec::new();
        for (i, c) in candidates.iter().enumerate() {
            if best_set & (1 << i) == 0 {
                continue;
            }
            let extent_ids: Vec<EntityId> = (0..n as u32)
                .filter(|&e| c.extent_mask & (1 << e) != 0)
                .collect();
            let extent = ExtentSet::from_sorted(n as u32, extent_ids);
            let mut properties: Vec<(Symbol, Symbol)> =
                c.props.iter().map(|&p| table.catalog().pair(p)).collect();
            properties.sort_unstable();
            let mut entities: Vec<Symbol> = extent.iter().map(|e| table.subject(e)).collect();
            entities.sort_unstable();
            out.push(DiscoveredSlice {
                source: source.url.clone(),
                properties,
                entities,
                num_facts: table.facts_sum(&extent) as usize,
                num_new_facts: table.new_sum(&extent) as usize,
                profit: ctx.profit_single(&extent),
            });
        }
        out.sort_by(|a, b| b.profit.partial_cmp(&a.profit).expect("finite profits"));
        Some(out)
    }

    /// Total Definition 9 profit of a slice set over one source.
    pub fn set_profit(
        &self,
        source: &SourceFacts,
        kb: &KnowledgeBase,
        slices: &[DiscoveredSlice],
    ) -> f64 {
        if slices.is_empty() {
            return 0.0;
        }
        let table = FactTable::build(source, kb);
        let ctx = ProfitCtx::new(&table, self.cost);
        let mut acc = ctx.accumulator();
        for s in slices {
            let ids: Vec<EntityId> = s.entities.iter().filter_map(|&e| table.entity(e)).collect();
            let extent = ExtentSet::from_unsorted(table.num_entities() as u32, ids);
            acc.add(&ctx, &extent);
        }
        acc.profit(&ctx)
    }
}

impl SliceDetector for Exact {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn detect(&self, input: DetectInput<'_>) -> Vec<DiscoveredSlice> {
        self.solve(input.source, input.kb).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_core::fixtures::skyrocket;
    use midas_core::{MidasAlg, MidasConfig};
    use midas_kb::Interner;

    #[test]
    fn optimal_on_the_running_example_is_s5() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let exact = Exact::new(CostModel::running_example());
        let slices = exact.solve(&src, &kb).expect("small instance");
        assert_eq!(slices.len(), 1, "the optimum is a single slice");
        assert!((slices[0].profit - 4.327).abs() < 1e-9, "and it is S5");
        assert_eq!(slices[0].entities.len(), 2);
    }

    #[test]
    fn midas_matches_the_optimum_on_the_running_example() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let cost = CostModel::running_example();
        let exact = Exact::new(cost);
        let optimal = exact.solve(&src, &kb).unwrap();
        let midas = MidasAlg::new(MidasConfig::running_example()).run(&src, &kb);
        let f_opt = exact.set_profit(&src, &kb, &optimal);
        let f_midas = exact.set_profit(&src, &kb, &midas);
        assert!((f_opt - f_midas).abs() < 1e-9, "MIDAS is optimal here");
    }

    #[test]
    fn declines_oversized_instances() {
        let mut t = Interner::new();
        let mut facts = Vec::new();
        for e in 0..30 {
            facts.push(midas_kb::Fact::intern(&mut t, &format!("e{e}"), "p", "v"));
        }
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://big.example/x").unwrap(),
            facts,
        );
        let exact = Exact::new(CostModel::running_example());
        assert!(exact.solve(&src, &KnowledgeBase::new()).is_none());
        // Through the detector interface it degrades to "no answer".
        assert!(exact
            .detect(DetectInput {
                source: &src,
                kb: &KnowledgeBase::new(),
                seeds: &[]
            })
            .is_empty());
    }

    #[test]
    fn empty_source_is_trivially_optimal() {
        let exact = Exact::default();
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://empty.example").unwrap(),
            vec![],
        );
        assert_eq!(exact.solve(&src, &KnowledgeBase::new()), Some(vec![]));
        assert_eq!(exact.name(), "exact");
    }

    #[test]
    fn fully_known_source_has_zero_optimum() {
        let mut t = Interner::new();
        let (src, _) = skyrocket(&mut t);
        let kb: KnowledgeBase = src.facts.iter().copied().collect();
        let exact = Exact::new(CostModel::running_example());
        let slices = exact.solve(&src, &kb).unwrap();
        assert!(slices.is_empty(), "the empty set is optimal");
    }
}
