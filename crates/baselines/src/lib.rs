//! # midas-baselines — the comparison algorithms of §IV-B
//!
//! Three baselines, all implementing [`midas_core::SliceDetector`] so they
//! run inside the same multi-source framework as MIDASalg:
//!
//! * [`Naive`] — ranks *entire web sources* by their number of new facts; it
//!   produces whole-source "slices" with no defining properties. The paper
//!   uses it to show that raw new-fact counting, without content
//!   abstraction, picks forums and news sites.
//! * [`Greedy`] — derives a *single* slice per source by starting from the
//!   whole source and repeatedly adding the property that improves the
//!   Definition 9 profit the most. Fast, but structurally limited to one
//!   slice per source (its recall collapses as the number of optimal slices
//!   grows — Figure 11c).
//! * [`AggCluster`] — agglomerative clustering of entities using the profit
//!   gain of merging as the linkage criterion, `O(|E|² log |E|)`. Accurate
//!   on small inputs but an order of magnitude slower than MIDASalg, with a
//!   cliff on disproportionately large sources (Figure 10d).
//!
//! A fourth, non-paper algorithm is included as a correctness reference:
//! [`Exact`] computes the provably optimal slice set on small instances by
//! enumerating the canonical slices (closed property sets) and every subset
//! of them — usable only up to ~16 entities, but invaluable for measuring
//! MIDASalg's optimality gap (see the `optimality_gap` integration test).

#![warn(missing_docs)]

pub mod aggcluster;
pub mod exact;
pub mod greedy;
pub mod naive;

pub use aggcluster::AggCluster;
pub use exact::Exact;
pub use greedy::Greedy;
pub use naive::Naive;
