//! Per-source execution budgets.
//!
//! MIDAS consumes the output of a *low-precision* extraction pipeline
//! (§II, Def. 1–2): pathological sources — a single page carrying millions
//! of facts, an adversarial property lattice, a shard that never converges —
//! are expected input. A [`SourceBudget`] bounds what one source may consume
//! before the framework gives up on it:
//!
//! * **fact-count cap** (`max_facts`): checked up front, before any work;
//! * **hierarchy-node cap** (`max_nodes`): checked cooperatively at every
//!   level boundary of the slice-hierarchy construction;
//! * **wall-clock deadline** (`deadline`): checked cooperatively at level
//!   boundaries *and* enforced across worker threads by the
//!   `recv_timeout`-based collection loop of [`crate::parallel::par_map`].
//!
//! A source that blows its budget is abandoned by unwinding with a
//! [`BudgetBreach`] payload. The panic-safe worker pool
//! ([`crate::parallel::par_map_isolated`]) catches the unwind, discards the
//! source's partial state, and surfaces the breach as a structured fault —
//! the run continues over the remaining sources.
//!
//! The budget travels through a thread-local [`BudgetScope`] so that deep
//! callees (hierarchy construction, profit evaluation) need no signature
//! changes: the framework enters a scope around each per-source task, and
//! [`checkpoint`] consults whatever scope is active. Scopes do not nest —
//! the outermost scope wins, so a framework-level deadline is not extended
//! by an inner component re-entering.

use std::cell::RefCell;
use std::fmt;
use std::panic::panic_any;
use std::time::{Duration, Instant};

/// Execution limits for processing one web source. All limits default to
/// `None` (unlimited), which preserves the pre-budget behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SourceBudget {
    /// Cap on `|T_W|`, the source's fact count. Sources above the cap are
    /// quarantined before any detection work starts. Deterministic.
    pub max_facts: Option<usize>,
    /// Cap on slice-hierarchy nodes created while detecting in this source.
    /// Checked at level boundaries, so enforcement is level-granular but
    /// deterministic. Contrast with `MidasConfig::max_hierarchy_nodes`,
    /// which *stops expanding* and keeps partial results; breaching this
    /// budget *discards* the source.
    pub max_nodes: Option<usize>,
    /// Wall-clock allowance for the source's detection work. Inherently
    /// non-deterministic; intended as a production back-stop, not for
    /// reproducible experiments.
    pub deadline: Option<Duration>,
}

impl SourceBudget {
    /// The permissive default: no limits.
    pub const fn unlimited() -> Self {
        SourceBudget {
            max_facts: None,
            max_nodes: None,
            deadline: None,
        }
    }

    /// Whether every limit is disabled.
    pub fn is_unlimited(&self) -> bool {
        self.max_facts.is_none() && self.max_nodes.is_none() && self.deadline.is_none()
    }

    /// Sets the fact-count cap.
    pub fn with_max_facts(mut self, cap: usize) -> Self {
        self.max_facts = Some(cap);
        self
    }

    /// Sets the hierarchy-node cap.
    pub fn with_max_nodes(mut self, cap: usize) -> Self {
        self.max_nodes = Some(cap);
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Which budget dimension was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreachKind {
    /// The source's fact count exceeded `max_facts`.
    Facts,
    /// Hierarchy construction created more than `max_nodes` nodes.
    HierarchyNodes,
    /// The wall-clock deadline elapsed.
    Deadline,
    /// A breach injected by the deterministic fault harness
    /// ([`crate::faultinject`]); never produced by a real budget.
    Injected,
}

impl fmt::Display for BreachKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreachKind::Facts => write!(f, "fact-count cap"),
            BreachKind::HierarchyNodes => write!(f, "hierarchy-node cap"),
            BreachKind::Deadline => write!(f, "wall-clock deadline"),
            BreachKind::Injected => write!(f, "injected budget exhaustion"),
        }
    }
}

/// A structured record of one budget violation. Used as the panic payload
/// when a budgeted computation is abandoned, and preserved verbatim in the
/// resulting quarantine record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetBreach {
    /// The exhausted dimension.
    pub kind: BreachKind,
    /// The configured limit (milliseconds for [`BreachKind::Deadline`]).
    pub limit: u64,
    /// The observed value at the moment of the breach (same unit).
    pub observed: u64,
}

impl fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BreachKind::Deadline => write!(
                f,
                "{} exceeded: {} ms elapsed of {} ms allowed",
                self.kind, self.observed, self.limit
            ),
            BreachKind::Injected => write!(f, "{}", self.kind),
            _ => write!(
                f,
                "{} exceeded: {} observed, {} allowed",
                self.kind, self.observed, self.limit
            ),
        }
    }
}

/// Abandons the current source by unwinding with `breach` as the payload.
/// Callers above (the isolated worker pool, [`crate::detector`]'s guarded
/// path) catch the unwind and turn it into a quarantine record.
pub fn breach(breach: BudgetBreach) -> ! {
    panic_any(breach)
}

/// The resolved, absolute-time form of a budget, installed thread-locally.
#[derive(Debug, Clone, Copy)]
struct ActiveBudget {
    entered: Instant,
    deadline: Option<Instant>,
    deadline_ms: u64,
    max_nodes: Option<usize>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveBudget>> = const { RefCell::new(None) };
}

/// RAII guard installing a [`SourceBudget`] as the thread's active budget.
///
/// While the guard lives, [`checkpoint`] and the deadline-aware collection
/// loop of [`crate::parallel::par_map`] enforce the budget on this thread.
/// Entering a scope while one is already active yields a pass-through guard
/// (the outer scope keeps governing).
#[derive(Debug)]
pub struct BudgetScope {
    installed: bool,
}

impl BudgetScope {
    /// Resolves `budget` against the current instant and installs it, unless
    /// a scope is already active on this thread.
    pub fn enter(budget: &SourceBudget) -> BudgetScope {
        if budget.is_unlimited() {
            return BudgetScope { installed: false };
        }
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if a.is_some() {
                return BudgetScope { installed: false };
            }
            let now = Instant::now();
            *a = Some(ActiveBudget {
                entered: now,
                deadline: budget.deadline.map(|d| now + d),
                deadline_ms: budget.deadline.map_or(0, |d| d.as_millis() as u64),
                max_nodes: budget.max_nodes,
            });
            BudgetScope { installed: true }
        })
    }
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        if self.installed {
            ACTIVE.with(|a| *a.borrow_mut() = None);
        }
    }
}

/// The active scope's absolute deadline, if any. Read by the worker pool to
/// decide between blocking and `recv_timeout`-bounded result collection.
pub fn active_deadline() -> Option<Instant> {
    ACTIVE.with(|a| a.borrow().and_then(|b| b.deadline))
}

/// Unwinds with a [`BreachKind::Deadline`] breach describing the active
/// scope (or a generic one when called without a scope).
pub fn breach_deadline() -> ! {
    let (limit, observed) = ACTIVE.with(|a| {
        a.borrow().map_or((0, 0), |b| {
            (b.deadline_ms, b.entered.elapsed().as_millis() as u64)
        })
    });
    breach(BudgetBreach {
        kind: BreachKind::Deadline,
        limit,
        observed,
    })
}

/// Cooperative budget check, called at hierarchy level boundaries.
///
/// `nodes_created` is the total node count of the hierarchy under
/// construction. No-op without an active scope; unwinds with a
/// [`BudgetBreach`] when the node cap or the deadline is exceeded.
pub fn checkpoint(nodes_created: usize) {
    let Some(active) = ACTIVE.with(|a| *a.borrow()) else {
        return;
    };
    if let Some(cap) = active.max_nodes {
        if nodes_created > cap {
            breach(BudgetBreach {
                kind: BreachKind::HierarchyNodes,
                limit: cap as u64,
                observed: nodes_created as u64,
            });
        }
    }
    if let Some(deadline) = active.deadline {
        if Instant::now() >= deadline {
            breach_deadline();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn unlimited_budget_never_checkpoints() {
        let _scope = BudgetScope::enter(&SourceBudget::unlimited());
        assert!(active_deadline().is_none());
        checkpoint(usize::MAX); // must not panic
    }

    #[test]
    fn node_cap_breaches_with_payload() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _scope = BudgetScope::enter(&SourceBudget::unlimited().with_max_nodes(10));
            checkpoint(11);
        }))
        .unwrap_err();
        let b = err.downcast::<BudgetBreach>().expect("typed payload");
        assert_eq!(b.kind, BreachKind::HierarchyNodes);
        assert_eq!(b.limit, 10);
        assert_eq!(b.observed, 11);
        // The scope was torn down during the unwind.
        checkpoint(usize::MAX);
    }

    #[test]
    fn deadline_breaches_once_elapsed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _scope =
                BudgetScope::enter(&SourceBudget::unlimited().with_deadline(Duration::ZERO));
            std::thread::sleep(Duration::from_millis(2));
            checkpoint(0);
        }))
        .unwrap_err();
        let b = err.downcast::<BudgetBreach>().expect("typed payload");
        assert_eq!(b.kind, BreachKind::Deadline);
    }

    #[test]
    fn inner_scope_is_pass_through() {
        let _outer = BudgetScope::enter(&SourceBudget::unlimited().with_max_nodes(5));
        {
            // The inner, laxer scope must not displace the outer one.
            let _inner = BudgetScope::enter(&SourceBudget::unlimited().with_max_nodes(500));
            let err = catch_unwind(AssertUnwindSafe(|| checkpoint(6))).unwrap_err();
            assert!(err.downcast_ref::<BudgetBreach>().is_some());
        }
        // Dropping the inner guard must not clear the outer scope.
        assert!(catch_unwind(AssertUnwindSafe(|| checkpoint(6))).is_err());
    }

    #[test]
    fn breach_renders_human_readable() {
        let b = BudgetBreach {
            kind: BreachKind::Facts,
            limit: 100,
            observed: 250,
        };
        let s = b.to_string();
        assert!(s.contains("fact-count cap"));
        assert!(s.contains("250"));
    }
}
