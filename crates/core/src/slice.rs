//! Discovered web source slices (Definitions 5 and 7).

use midas_kb::{Interner, Symbol};
use midas_weburl::SourceUrl;
use std::fmt::Write as _;

/// A web source slice as reported by a discovery algorithm.
///
/// A slice answers *"what to extract, and from where"*: extract the facts of
/// the entities satisfying every property in [`properties`] from the source
/// at [`source`].
///
/// [`properties`]: DiscoveredSlice::properties
/// [`source`]: DiscoveredSlice::source
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredSlice {
    /// The web source the slice selects from (any URL granularity).
    pub source: SourceUrl,
    /// The defining property conjunction `C`, sorted by `(pred, value)`
    /// symbol. Empty for whole-source "slices" (the NAIVE baseline).
    pub properties: Vec<(Symbol, Symbol)>,
    /// The entity extent `Π`: subjects satisfying every property, sorted.
    pub entities: Vec<Symbol>,
    /// `|Π*|` — number of facts associated with the entities.
    pub num_facts: usize,
    /// `|Π* \ E|` — how many of those facts are new to the knowledge base.
    pub num_new_facts: usize,
    /// `f({S})` under the cost model the algorithm ran with.
    pub profit: f64,
}

impl DiscoveredSlice {
    /// Human-readable description of the slice, e.g.
    /// `"category = rocket_family ∧ sponsor = NASA @ http://..."`.
    pub fn describe(&self, terms: &Interner) -> String {
        let mut out = String::new();
        if self.properties.is_empty() {
            out.push_str("(entire source)");
        } else {
            for (i, &(p, v)) in self.properties.iter().enumerate() {
                if i > 0 {
                    out.push_str(" ∧ ");
                }
                let _ = write!(out, "{} = {}", terms.resolve(p), terms.resolve(v));
            }
        }
        let _ = write!(out, " @ {}", self.source);
        out
    }

    /// Ratio of new facts within the slice (the "Ratio of new facts in the
    /// slice" column of Figure 3).
    pub fn new_ratio(&self) -> f64 {
        if self.num_facts == 0 {
            0.0
        } else {
            self.num_new_facts as f64 / self.num_facts as f64
        }
    }

    /// Jaccard similarity of the entity extents of two slices.
    ///
    /// The paper compares slices by the Jaccard similarity of their selected
    /// facts and treats ≥ 0.95 as equivalent (§IV-B). Within one source a
    /// slice's facts are fully determined by its entities, so entity-set
    /// Jaccard is the same quantity without materialising fact sets.
    pub fn jaccard(&self, other: &DiscoveredSlice) -> f64 {
        if self.entities.is_empty() && other.entities.is_empty() {
            return 1.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < self.entities.len() && j < other.entities.len() {
            match self.entities[i].cmp(&other.entities[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = self.entities.len() + other.entities.len() - inter;
        inter as f64 / union as f64
    }

    /// Whether two slices are equivalent under the paper's ≥ 0.95 Jaccard
    /// criterion *and* come from the same source subtree (one source must
    /// contain the other).
    pub fn is_equivalent(&self, other: &DiscoveredSlice) -> bool {
        (self.source.contains(&other.source) || other.source.contains(&self.source))
            && self.jaccard(other) >= 0.95
    }

    /// Whether the entity extent upholds its sorted invariant. Subset and
    /// membership tests ([`DiscoveredSlice::jaccard`], consolidation,
    /// `Augmenter::accept`) silently produce wrong answers on unsorted
    /// extents, so the framework enforces this at the detector boundary.
    pub fn entities_sorted(&self) -> bool {
        self.entities.windows(2).all(|w| w[0] <= w[1])
    }
}

/// Aggregate statistics of a reported slice set (used by reports and the
/// framework's consolidation phase).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SliceSetStats {
    /// Number of slices.
    pub num_slices: usize,
    /// Unique facts covered.
    pub num_facts: usize,
    /// Unique new facts covered.
    pub num_new_facts: usize,
    /// Total profit of the set.
    pub profit: f64,
}

impl SliceSetStats {
    /// Summarises a set of slices, de-duplicating entities per source.
    ///
    /// Slices from the same source may share entities; their fact/new counts
    /// are de-duplicated through the entity sets. Slices from different
    /// sources are assumed disjoint (distinct pages).
    pub fn summarise<'a>(
        slices: impl IntoIterator<Item = &'a DiscoveredSlice>,
        profit: f64,
    ) -> Self {
        use std::collections::BTreeMap;
        let mut per_source: BTreeMap<&SourceUrl, Vec<&DiscoveredSlice>> = BTreeMap::new();
        let mut num_slices = 0;
        for s in slices {
            per_source.entry(&s.source).or_default().push(s);
            num_slices += 1;
        }
        let (mut facts, mut new_facts) = (0usize, 0usize);
        for (_, group) in per_source {
            if group.len() == 1 {
                facts += group[0].num_facts;
                new_facts += group[0].num_new_facts;
                continue;
            }
            // Overlapping slices of the same source: count each entity once
            // using a per-entity share of the slice counts is impossible
            // without the fact table, so fall back to the union of entities
            // weighted by the first slice containing each.
            let mut seen: std::collections::BTreeSet<Symbol> = Default::default();
            // Accumulate the fractional shares in f64 and round once per
            // source group: rounding each slice's share separately lets the
            // per-slice errors (up to 0.5 facts each) accumulate, so groups
            // with many overlapping slices drift from the true total.
            let (mut group_facts, mut group_new) = (0f64, 0f64);
            for s in group {
                let mut fresh = 0usize;
                for e in &s.entities {
                    if seen.insert(*e) {
                        fresh += 1;
                    }
                }
                if !s.entities.is_empty() {
                    let frac = fresh as f64 / s.entities.len() as f64;
                    group_facts += s.num_facts as f64 * frac;
                    group_new += s.num_new_facts as f64 * frac;
                }
            }
            facts += group_facts.round() as usize;
            new_facts += group_new.round() as usize;
        }
        SliceSetStats {
            num_slices,
            num_facts: facts,
            num_new_facts: new_facts,
            profit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_kb::Interner;

    fn slice(terms: &mut Interner, url: &str, entities: &[&str]) -> DiscoveredSlice {
        let mut es: Vec<Symbol> = entities.iter().map(|e| terms.intern(e)).collect();
        es.sort_unstable();
        DiscoveredSlice {
            source: SourceUrl::parse(url).unwrap(),
            properties: vec![],
            entities: es,
            num_facts: entities.len() * 2,
            num_new_facts: entities.len(),
            profit: 1.0,
        }
    }

    #[test]
    fn describe_renders_conjunction() {
        let mut t = Interner::new();
        let mut s = slice(&mut t, "http://a.com/x", &["e1"]);
        s.properties = vec![
            (t.intern("category"), t.intern("rocket_family")),
            (t.intern("sponsor"), t.intern("NASA")),
        ];
        let d = s.describe(&t);
        assert!(d.contains("category = rocket_family"));
        assert!(d.contains("∧ sponsor = NASA"));
        assert!(d.ends_with("@ http://a.com/x"));
    }

    #[test]
    fn describe_empty_properties_is_whole_source() {
        let mut t = Interner::new();
        let s = slice(&mut t, "http://a.com", &["e"]);
        assert!(s.describe(&t).starts_with("(entire source)"));
    }

    #[test]
    fn jaccard_of_identical_extents_is_one() {
        let mut t = Interner::new();
        let a = slice(&mut t, "http://a.com/x", &["e1", "e2"]);
        let b = slice(&mut t, "http://a.com/x", &["e1", "e2"]);
        assert_eq!(a.jaccard(&b), 1.0);
        assert!(a.is_equivalent(&b));
    }

    #[test]
    fn jaccard_of_disjoint_extents_is_zero() {
        let mut t = Interner::new();
        let a = slice(&mut t, "http://a.com/x", &["e1"]);
        let b = slice(&mut t, "http://a.com/x", &["e2"]);
        assert_eq!(a.jaccard(&b), 0.0);
        assert!(!a.is_equivalent(&b));
    }

    #[test]
    fn equivalence_requires_related_sources() {
        let mut t = Interner::new();
        let a = slice(&mut t, "http://a.com/x", &["e1"]);
        let b = slice(&mut t, "http://b.com/y", &["e1"]);
        assert_eq!(a.jaccard(&b), 1.0);
        assert!(
            !a.is_equivalent(&b),
            "different domains are never equivalent"
        );
        let parent = slice(&mut t, "http://a.com", &["e1"]);
        assert!(a.is_equivalent(&parent), "ancestor source is comparable");
    }

    #[test]
    fn new_ratio_handles_empty_slice() {
        let mut t = Interner::new();
        let mut s = slice(&mut t, "http://a.com/x", &[]);
        s.num_facts = 0;
        s.num_new_facts = 0;
        assert_eq!(s.new_ratio(), 0.0);
        let s2 = slice(&mut t, "http://a.com/x", &["e"]);
        assert_eq!(s2.new_ratio(), 0.5);
    }

    #[test]
    fn summarise_counts_disjoint_sources_additively() {
        let mut t = Interner::new();
        let a = slice(&mut t, "http://a.com/x", &["e1", "e2"]);
        let b = slice(&mut t, "http://a.com/y", &["e3"]);
        let st = SliceSetStats::summarise([&a, &b], 5.0);
        assert_eq!(st.num_slices, 2);
        assert_eq!(st.num_facts, 6);
        assert_eq!(st.num_new_facts, 3);
        assert_eq!(st.profit, 5.0);
    }

    #[test]
    fn summarise_rounds_once_per_source_group() {
        // Three overlapping slices of one source whose fractional shares are
        // 7.0, 8·(2/7) ≈ 2.286, and 8·(2/7) ≈ 2.286. Rounding each share
        // separately (the old behaviour) gives 7 + 2 + 2 = 11; the true
        // accumulated total 11.571… rounds to 12 — off by one whole fact.
        let mut t = Interner::new();
        let mut a = slice(&mut t, "http://a.com/x", &["e1", "e2", "e3", "e4", "e5"]);
        a.num_facts = 7;
        let mut b = slice(
            &mut t,
            "http://a.com/x",
            &["e1", "e2", "e3", "e4", "e5", "e6", "e7"],
        );
        b.num_facts = 8;
        let mut c = slice(
            &mut t,
            "http://a.com/x",
            &["e1", "e2", "e3", "e4", "e5", "e8", "e9"],
        );
        c.num_facts = 8;
        let st = SliceSetStats::summarise([&a, &b, &c], 0.0);
        assert_eq!(st.num_facts, 12, "one rounding per group, not per slice");
    }

    #[test]
    fn summarise_deduplicates_same_source_overlap() {
        let mut t = Interner::new();
        let a = slice(&mut t, "http://a.com/x", &["e1", "e2"]);
        let b = slice(&mut t, "http://a.com/x", &["e1", "e2"]);
        let st = SliceSetStats::summarise([&a, &b], 0.0);
        assert_eq!(st.num_facts, 4, "second identical slice adds nothing");
    }
}
