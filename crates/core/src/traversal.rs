//! Top-down hierarchy traversal (§III-A step 2, Algorithm 1).
//!
//! The traversal walks the pruned hierarchy from the most general slices
//! (level 1) down to the most specific, adding every valid, uncovered slice
//! whose *marginal* profit `f(S ∪ {S}) − f(S)` is positive, and marking the
//! descendants of every selected slice as covered so overlapping
//! specialisations are skipped.

use crate::hierarchy::{NodeId, SliceHierarchy};
use crate::profit::ProfitCtx;

/// Runs Algorithm 1 and returns the selected node ids in selection order.
pub fn traverse(h: &SliceHierarchy, ctx: &ProfitCtx<'_>) -> Vec<NodeId> {
    let mut covered = vec![false; h.capacity()];
    let mut acc = ctx.accumulator();
    let mut result = Vec::new();
    for l in 1..=h.max_level() {
        for id in h.level(l) {
            let node = h.node(id);
            if !node.valid || covered[id as usize] {
                continue;
            }
            if acc.marginal(ctx, node.live_extent()) > 0.0 {
                acc.add(ctx, node.live_extent());
                result.push(id);
                // Mark all descendants covered (Algorithm 1 lines 6–9).
                let mut stack = vec![id];
                while let Some(cur) = stack.pop() {
                    for &c in &h.node(cur).children {
                        if !covered[c as usize] {
                            covered[c as usize] = true;
                            stack.push(c);
                        }
                    }
                }
            }
        }
    }
    result
}

impl SliceHierarchy {
    /// Total node slots ever allocated (for traversal bitmaps).
    pub fn capacity(&self) -> usize {
        self.nodes_created
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::fact_table::FactTable;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;

    /// Example 14: the traversal reports exactly {S5}.
    #[test]
    fn running_example_selects_only_s5() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let cfg = MidasConfig::running_example();
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let picked = traverse(&h, &ctx);
        assert_eq!(picked.len(), 1, "exactly one slice is reported");
        let n = h.node(picked[0]);
        assert_eq!(n.extent.len(), 2, "S5 covers Atlas and Castor-4");
        assert!((n.profit - 4.327).abs() < 1e-9);
        let pairs: Vec<(String, String)> = n
            .props
            .iter()
            .map(|&p| {
                let (pred, val) = ft.catalog().pair(p);
                (t.resolve(pred).to_owned(), t.resolve(val).to_owned())
            })
            .collect();
        assert!(pairs.contains(&("category".into(), "rocket_family".into())));
        assert!(pairs.contains(&("sponsor".into(), "NASA".into())));
    }

    /// With profit pruning disabled the traversal must still avoid selecting
    /// both an ancestor and its descendant (cover marking).
    #[test]
    fn traversal_never_selects_ancestor_and_descendant() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let mut cfg = MidasConfig::running_example();
        cfg.disable_profit_pruning = true;
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let picked = traverse(&h, &ctx);
        for (i, &a) in picked.iter().enumerate() {
            for &b in picked.iter().skip(i + 1) {
                let (pa, pb) = (&h.node(a).props, &h.node(b).props);
                let subset = pa.iter().all(|x| pb.contains(x)) || pb.iter().all(|x| pa.contains(x));
                assert!(
                    !subset,
                    "selected slices must not be in ancestor/descendant relation"
                );
            }
        }
    }

    /// An empty knowledge base turns every fact new; the whole-source-ish
    /// top slice should win if it exists, and total profit must be positive.
    #[test]
    fn empty_kb_selects_positive_profit_set() {
        let mut t = Interner::new();
        let (src, _) = skyrocket(&mut t);
        let kb = midas_kb::KnowledgeBase::new();
        let ft = FactTable::build(&src, &kb);
        let cfg = MidasConfig::running_example();
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let picked = traverse(&h, &ctx);
        assert!(!picked.is_empty());
        let mut acc = ctx.accumulator();
        for &id in &picked {
            acc.add(&ctx, &h.node(id).extent);
        }
        assert!(acc.profit(&ctx) > 0.0);
    }

    /// When every fact is already known, nothing has positive marginal
    /// profit and nothing is selected.
    #[test]
    fn fully_known_source_selects_nothing() {
        let mut t = Interner::new();
        let (src, _) = skyrocket(&mut t);
        let kb: midas_kb::KnowledgeBase = src.facts.iter().copied().collect();
        let ft = FactTable::build(&src, &kb);
        let cfg = MidasConfig::running_example();
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let picked = traverse(&h, &ctx);
        assert!(picked.is_empty());
    }
}
