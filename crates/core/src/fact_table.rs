//! The fact table (Definition 3) and property catalog (Definition 4).
//!
//! Given the facts `T_W` extracted from a web source `W` and the knowledge
//! base `E` to augment, the [`FactTable`] organises facts by entity
//! (subject), derives the property catalog `C_W`, and precomputes the two
//! per-entity counts every profit evaluation needs:
//!
//! * `facts(e)` — how many extracted facts mention entity `e` (drives the
//!   de-duplication cost), and
//! * `new(e)` — how many of those are absent from `E` (drives the gain and
//!   the validation cost).
//!
//! Because a slice's fact extent `Π*` is *all* facts of its entities
//! (Definition 5), the gain/cost of any slice — or union of slices — reduces
//! to sums of these two counts over a set of distinct entities. That
//! reduction is what makes hierarchy construction cheap.

use midas_kb::fnv::FnvHashMap;
use midas_kb::{Fact, KnowledgeBase, Symbol};

use crate::extent::ExtentSet;
use crate::scratch;
use crate::source::SourceFacts;

/// Dense per-source entity index (row number in the fact table).
pub type EntityId = u32;

/// Dense per-source property index into the [`PropertyCatalog`].
pub type PropertyId = u32;

/// The catalog `C_W` of all properties derived from a fact table, with an
/// inverted index from property to the (sorted) entities that carry it.
#[derive(Debug, Default, Clone)]
pub struct PropertyCatalog {
    props: Vec<(Symbol, Symbol)>,
    by_pair: FnvHashMap<(Symbol, Symbol), PropertyId>,
    extents: Vec<ExtentSet>,
}

impl PropertyCatalog {
    /// Number of distinct properties.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// The `(predicate, value)` pair of a property.
    pub fn pair(&self, id: PropertyId) -> (Symbol, Symbol) {
        self.props[id as usize]
    }

    /// Looks up a property by its `(predicate, value)` pair.
    pub fn get(&self, pred: Symbol, value: Symbol) -> Option<PropertyId> {
        self.by_pair.get(&(pred, value)).copied()
    }

    /// The entities carrying property `id`.
    pub fn extent(&self, id: PropertyId) -> &ExtentSet {
        &self.extents[id as usize]
    }

    fn intern(&mut self, pred: Symbol, value: Symbol) -> PropertyId {
        if let Some(&id) = self.by_pair.get(&(pred, value)) {
            return id;
        }
        let id = u32::try_from(self.props.len()).expect("property catalog overflow");
        self.props.push((pred, value));
        self.by_pair.insert((pred, value), id);
        id
    }
}

/// The fact table `F_W` of one web source (Definition 3).
#[derive(Debug, Clone)]
pub struct FactTable {
    subjects: Vec<Symbol>,
    by_subject: FnvHashMap<Symbol, EntityId>,
    /// Facts per entity row, grouped and sorted.
    rows: Vec<Vec<Fact>>,
    /// Distinct properties per entity (dedup of `(pred, value)` pairs).
    entity_props: Vec<Vec<PropertyId>>,
    facts_count: Vec<u32>,
    new_count: Vec<u32>,
    /// `new(e)` in the low 32 bits, `facts(e)` in the high 32 — one load
    /// (and one cache stream) per entity in the profit gather loops.
    packed_counts: Vec<u64>,
    /// `facts_prefix[i] = Σ_{e<i} facts(e)` — lets [`Self::fact_counts`]
    /// charge a fully-populated 64-entity word of a dense extent in O(1).
    facts_prefix: Vec<u64>,
    /// `new_prefix[i] = Σ_{e<i} new(e)`.
    new_prefix: Vec<u64>,
    catalog: PropertyCatalog,
    total_facts: usize,
    distinct_sp_pairs: usize,
}

impl FactTable {
    /// Builds the fact table for `source` against knowledge base `kb`.
    pub fn build(source: &SourceFacts, kb: &KnowledgeBase) -> Self {
        let mut subjects: Vec<Symbol> = Vec::new();
        let mut by_subject: FnvHashMap<Symbol, EntityId> = FnvHashMap::default();
        let mut rows: Vec<Vec<Fact>> = Vec::new();
        for &f in &source.facts {
            let eid = *by_subject.entry(f.subject).or_insert_with(|| {
                let id = u32::try_from(subjects.len()).expect("fact table overflow");
                subjects.push(f.subject);
                rows.push(Vec::new());
                id
            });
            rows[eid as usize].push(f);
        }

        let mut catalog = PropertyCatalog::default();
        let mut raw_extents: Vec<Vec<EntityId>> = Vec::new();
        let mut entity_props: Vec<Vec<PropertyId>> = Vec::with_capacity(rows.len());
        let mut facts_count = Vec::with_capacity(rows.len());
        let mut new_count = Vec::with_capacity(rows.len());
        let mut distinct_sp_pairs = 0usize;
        for (eid, row) in rows.iter().enumerate() {
            // `source.facts` is sorted, so each row is sorted by (p, o) and
            // distinct (s, p) runs are contiguous.
            let mut props = scratch::take_ids();
            props.reserve(row.len());
            let mut news = 0u32;
            let mut last_pred: Option<Symbol> = None;
            for f in row {
                let pid = catalog.intern(f.predicate, f.object);
                props.push(pid);
                if kb.is_new(f) {
                    news += 1;
                }
                if last_pred != Some(f.predicate) {
                    distinct_sp_pairs += 1;
                    last_pred = Some(f.predicate);
                }
            }
            props.sort_unstable();
            props.dedup();
            raw_extents.resize_with(catalog.len(), scratch::take_ids);
            for &pid in &props {
                raw_extents[pid as usize].push(eid as EntityId);
            }
            entity_props.push(props);
            facts_count.push(u32::try_from(row.len()).expect("row overflow"));
            new_count.push(news);
        }
        // Extents were filled in ascending entity order, so they are sorted;
        // seal them into density-adaptive sets now that the universe is known.
        let universe = u32::try_from(subjects.len()).expect("fact table overflow");
        catalog.extents = raw_extents
            .into_iter()
            .map(|v| ExtentSet::from_sorted(universe, v))
            .collect();

        let prefix = |counts: &[u32]| {
            let mut acc = 0u64;
            let mut out = scratch::take_blocks(0);
            out.reserve(counts.len() + 1);
            out.push(0);
            for &c in counts {
                acc += u64::from(c);
                out.push(acc);
            }
            out
        };
        let facts_prefix = prefix(&facts_count);
        let new_prefix = prefix(&new_count);
        let mut packed_counts = scratch::take_blocks(0);
        packed_counts.reserve(new_count.len());
        packed_counts.extend(
            new_count
                .iter()
                .zip(&facts_count)
                .map(|(&n, &f)| u64::from(n) | (u64::from(f) << 32)),
        );

        FactTable {
            subjects,
            by_subject,
            total_facts: source.facts.len(),
            rows,
            entity_props,
            facts_count,
            new_count,
            packed_counts,
            facts_prefix,
            new_prefix,
            catalog,
            distinct_sp_pairs,
        }
    }

    /// Number of entities (rows).
    pub fn num_entities(&self) -> usize {
        self.subjects.len()
    }

    /// Total number of extracted facts `|T_W|`.
    pub fn total_facts(&self) -> usize {
        self.total_facts
    }

    /// Number of distinct `(subject, predicate)` pairs — the `m` of
    /// Proposition 15.
    pub fn distinct_subject_predicate_pairs(&self) -> usize {
        self.distinct_sp_pairs
    }

    /// The property catalog `C_W`.
    pub fn catalog(&self) -> &PropertyCatalog {
        &self.catalog
    }

    /// The subject symbol of an entity row.
    pub fn subject(&self, e: EntityId) -> Symbol {
        self.subjects[e as usize]
    }

    /// Looks an entity up by its subject symbol.
    pub fn entity(&self, subject: Symbol) -> Option<EntityId> {
        self.by_subject.get(&subject).copied()
    }

    /// All facts of an entity row.
    pub fn row(&self, e: EntityId) -> &[Fact] {
        &self.rows[e as usize]
    }

    /// Distinct properties of an entity.
    pub fn entity_properties(&self, e: EntityId) -> &[PropertyId] {
        &self.entity_props[e as usize]
    }

    /// `facts(e)` — number of facts mentioning entity `e`.
    pub fn facts_of(&self, e: EntityId) -> u32 {
        self.facts_count[e as usize]
    }

    /// `new(e)` — number of facts of `e` absent from the knowledge base.
    pub fn new_of(&self, e: EntityId) -> u32 {
        self.new_count[e as usize]
    }

    /// Sum of `facts(e)` over an entity set.
    pub fn facts_sum(&self, entities: &ExtentSet) -> u64 {
        self.fact_counts(entities).1
    }

    /// Sum of `new(e)` over an entity set.
    pub fn new_sum(&self, entities: &ExtentSet) -> u64 {
        self.fact_counts(entities).0
    }

    /// Fused `(new(U), facts(U))` over an entity set in one pass — the hot
    /// inner loop of every profit evaluation. Sparse extents are walked as a
    /// raw id slice; dense extents are walked word-wise, with fully-populated
    /// 64-entity words charged in O(1) via the prefix-sum arrays.
    pub fn fact_counts(&self, entities: &ExtentSet) -> (u64, u64) {
        let (mut new, mut total) = (0u64, 0u64);
        if let Some(ids) = entities.sparse_ids() {
            for &e in ids {
                let p = self.packed_counts[e as usize];
                new += p & 0xFFFF_FFFF;
                total += p >> 32;
            }
        } else if let Some(blocks) = entities.dense_blocks() {
            return self.fact_counts_from_blocks(blocks);
        }
        (new, total)
    }

    /// `(new(U), facts(U))` of the entities selected by one 64-bit word at
    /// `base`. Full words are charged in O(1) via the prefix-sum arrays;
    /// other words walk their set bits as two independent 32-bit chains so
    /// the serial `word &= word - 1` dependency is split in half and the
    /// out-of-order core can overlap them.
    #[inline]
    pub(crate) fn word_counts(&self, base: usize, w: u64) -> (u64, u64) {
        // Bits >= universe are never set, so a full word implies
        // base + 64 <= num_entities and the prefix access is safe.
        if w == u64::MAX {
            debug_assert!(
                base + 64 < self.new_prefix.len(),
                "full word at base {base} exceeds entity universe {}; \
                 caller passed a bitmap with tail bits set or too many blocks",
                self.packed_counts.len()
            );
            return (
                self.new_prefix[base + 64] - self.new_prefix[base],
                self.facts_prefix[base + 64] - self.facts_prefix[base],
            );
        }
        let (mut lo, mut hi) = (w & 0xFFFF_FFFF, w >> 32);
        let (mut new_lo, mut total_lo) = (0u64, 0u64);
        while lo != 0 {
            let p = self.packed_counts[base + lo.trailing_zeros() as usize];
            new_lo += p & 0xFFFF_FFFF;
            total_lo += p >> 32;
            lo &= lo - 1;
        }
        let (mut new_hi, mut total_hi) = (0u64, 0u64);
        while hi != 0 {
            let p = self.packed_counts[base + 32 + hi.trailing_zeros() as usize];
            new_hi += p & 0xFFFF_FFFF;
            total_hi += p >> 32;
            hi &= hi - 1;
        }
        (new_lo + new_hi, total_lo + total_hi)
    }

    /// `(new(U), facts(U))` for a `u64`-block bitmap over the entity
    /// universe (e.g. an accumulator's covered map, or a scratch union of
    /// several extents). Fully-populated words are charged in O(1) via the
    /// prefix-sum arrays.
    ///
    /// The bitmap must cover exactly this table's entity universe: at most
    /// `ceil(num_entities / 64)` blocks, with no bit `>= num_entities` set.
    /// Violating this panics (index out of bounds; caught by a
    /// `debug_assert` in debug builds).
    pub fn fact_counts_from_blocks(&self, blocks: &[u64]) -> (u64, u64) {
        let (mut new, mut total) = (0u64, 0u64);
        for (i, &w) in blocks.iter().enumerate() {
            let (n, t) = self.word_counts(i * 64, w);
            new += n;
            total += t;
        }
        (new, total)
    }

    /// `(new(U'), facts(U'))` where `U'` are the members of `entities` whose
    /// bit is *not* set in `covered` — the marginal-gain loop of Algorithm 1,
    /// fused into one pass. Dense extents walk `extent & !covered` word-wise;
    /// fully-uncovered words are charged in O(1) via the prefix-sum arrays.
    ///
    /// `covered` must span this table's entity universe (at least
    /// `ceil(num_entities / 64)` blocks) and, like the extent itself, have
    /// no bit `>= num_entities` set.
    pub fn fact_counts_missing_from(&self, entities: &ExtentSet, covered: &[u64]) -> (u64, u64) {
        if let Some(blocks) = entities.dense_blocks() {
            let (mut new, mut total) = (0u64, 0u64);
            for (i, (&x, &y)) in blocks.iter().zip(covered).enumerate() {
                let (n, t) = self.word_counts(i * 64, x & !y);
                new += n;
                total += t;
            }
            (new, total)
        } else {
            let (mut new, mut total) = (0u64, 0u64);
            for &e in entities.sparse_ids().unwrap_or(&[]) {
                if covered[(e / 64) as usize] & (1u64 << (e % 64)) == 0 {
                    let p = self.packed_counts[e as usize];
                    new += p & 0xFFFF_FFFF;
                    total += p >> 32;
                }
            }
            (new, total)
        }
    }

    /// Like [`Self::fact_counts_missing_from`], but also marks the counted
    /// entities in `covered` — the fused count-and-claim pass of an
    /// accumulator `add`, one walk instead of count-then-mark.
    pub fn fact_counts_claim(&self, entities: &ExtentSet, covered: &mut [u64]) -> (u64, u64) {
        if let Some(blocks) = entities.dense_blocks() {
            let (mut new, mut total) = (0u64, 0u64);
            for (i, (&x, y)) in blocks.iter().zip(covered.iter_mut()).enumerate() {
                let missing = x & !*y;
                *y |= x;
                let (n, t) = self.word_counts(i * 64, missing);
                new += n;
                total += t;
            }
            (new, total)
        } else {
            let (mut new, mut total) = (0u64, 0u64);
            for &e in entities.sparse_ids().unwrap_or(&[]) {
                let word = &mut covered[(e / 64) as usize];
                let bit = 1u64 << (e % 64);
                if *word & bit == 0 {
                    *word |= bit;
                    let p = self.packed_counts[e as usize];
                    new += p & 0xFFFF_FFFF;
                    total += p >> 32;
                }
            }
            (new, total)
        }
    }

    /// Applies a knowledge-base insertion delta in place: recomputes `new(e)`
    /// for every row whose subject appears in `subjects` and, when any count
    /// changed, invalidates and rebuilds the derived count structures (the
    /// packed per-entity counts and the `new` prefix sums). Everything else —
    /// subjects, rows, the property catalog, extents, `facts(e)` — is
    /// untouched, because inserting facts into the KB can only flip facts
    /// from *new* to *known*.
    ///
    /// This is the incremental-rerun fast path: after an augmentation round
    /// a dirty source's table is refreshed in O(|touched rows| + n) instead
    /// of rebuilt in O(|T_W|) hash/extent work. Returns the number of rows
    /// whose `new` count actually changed.
    pub fn refresh_new_counts(
        &mut self,
        kb: &KnowledgeBase,
        subjects: impl IntoIterator<Item = Symbol>,
    ) -> usize {
        let mut changed = 0usize;
        for subject in subjects {
            let Some(&eid) = self.by_subject.get(&subject) else {
                continue;
            };
            let row = &self.rows[eid as usize];
            let news = row.iter().filter(|f| kb.is_new(f)).count() as u32;
            let slot = &mut self.new_count[eid as usize];
            if *slot != news {
                debug_assert!(
                    news <= *slot,
                    "KB insertions can only lower new(e): {news} > {slot}"
                );
                *slot = news;
                changed += 1;
            }
        }
        if changed > 0 {
            // Count invalidation: the prefix sums and packed words derived
            // from `new_count` are rebuilt in place, reusing their buffers.
            let mut acc = 0u64;
            for (i, &c) in self.new_count.iter().enumerate() {
                self.new_prefix[i] = acc;
                acc += u64::from(c);
            }
            self.new_prefix[self.new_count.len()] = acc;
            for (p, (&n, &f)) in self
                .packed_counts
                .iter_mut()
                .zip(self.new_count.iter().zip(&self.facts_count))
            {
                *p = u64::from(n) | (u64::from(f) << 32);
            }
        }
        changed
    }

    /// Consumes the table, returning its reusable buffers (property extents,
    /// per-entity property lists, packed counts, prefix sums) to the scratch
    /// pool for the next shard. Purely an optimisation — dropping the table
    /// is always correct.
    pub fn recycle(self) {
        for ext in self.catalog.extents {
            ext.recycle();
        }
        for props in self.entity_props {
            scratch::put_ids(props);
        }
        scratch::put_ids(self.facts_count);
        scratch::put_ids(self.new_count);
        scratch::put_blocks(self.packed_counts);
        scratch::put_blocks(self.facts_prefix);
        scratch::put_blocks(self.new_prefix);
    }

    /// The entity extent of a property conjunction — `Π` of Definition 5,
    /// computed by intersecting the per-property inverted extents (smallest
    /// extent first).
    pub fn extent_of(&self, props: &[PropertyId]) -> ExtentSet {
        let universe = self.num_entities() as u32;
        if props.is_empty() {
            return ExtentSet::full(universe);
        }
        let mut sets: Vec<&ExtentSet> = props.iter().map(|&p| self.catalog.extent(p)).collect();
        sets.sort_by_key(|s| s.len());
        let mut acc = sets[0].clone();
        for set in &sets[1..] {
            acc.intersect_with(set);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }
}

/// Intersects two sorted, deduplicated id lists.
pub fn intersect_sorted(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Unions two sorted, deduplicated id lists.
pub fn union_sorted(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;
    use midas_weburl::SourceUrl;

    #[test]
    fn builds_five_entity_rows() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        assert_eq!(ft.num_entities(), 5);
        assert_eq!(ft.total_facts(), 13);
        // Figure 4 lists six distinct properties c1..c6.
        assert_eq!(ft.catalog().len(), 6);
        assert_eq!(ft.distinct_subject_predicate_pairs(), 13);
    }

    #[test]
    fn per_entity_counts_match_figure_2() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let atlas = ft.entity(t.intern("Atlas")).unwrap();
        assert_eq!(ft.facts_of(atlas), 3);
        assert_eq!(ft.new_of(atlas), 3);
        let mercury = ft.entity(t.intern("Project Mercury")).unwrap();
        assert_eq!(ft.facts_of(mercury), 3);
        assert_eq!(ft.new_of(mercury), 0);
        let gemini = ft.entity(t.intern("Project Gemini")).unwrap();
        assert_eq!(ft.facts_of(gemini), 2);
    }

    #[test]
    fn property_extents_match_figure_4() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let sponsor_nasa = ft
            .catalog()
            .get(t.intern("sponsor"), t.intern("NASA"))
            .unwrap();
        assert_eq!(
            ft.catalog().extent(sponsor_nasa).len(),
            5,
            "c6 covers e1..e5"
        );
        let rocket = ft
            .catalog()
            .get(t.intern("category"), t.intern("rocket_family"))
            .unwrap();
        assert_eq!(ft.catalog().extent(rocket).len(), 2, "c2 covers e3, e5");
    }

    #[test]
    fn extent_of_conjunction_matches_slice_s5() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let c2 = ft
            .catalog()
            .get(t.intern("category"), t.intern("rocket_family"))
            .unwrap();
        let c6 = ft
            .catalog()
            .get(t.intern("sponsor"), t.intern("NASA"))
            .unwrap();
        let extent = ft.extent_of(&[c2, c6]);
        let names: Vec<&str> = extent.iter().map(|e| t.resolve(ft.subject(e))).collect();
        assert_eq!(names, vec!["Atlas", "Castor-4"]);
        assert_eq!(ft.facts_sum(&extent), 6);
        assert_eq!(ft.new_sum(&extent), 6);
    }

    #[test]
    fn empty_conjunction_is_whole_source() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        assert_eq!(ft.extent_of(&[]).len(), 5);
    }

    #[test]
    fn multi_valued_predicates_yield_multiple_properties() {
        let mut t = Interner::new();
        let facts = vec![
            Fact::intern(&mut t, "margarita", "ingredient", "tequila"),
            Fact::intern(&mut t, "margarita", "ingredient", "lime"),
        ];
        let src = SourceFacts::new(SourceUrl::parse("http://c.com/m").unwrap(), facts);
        let ft = FactTable::build(&src, &KnowledgeBase::new());
        assert_eq!(ft.num_entities(), 1);
        assert_eq!(ft.catalog().len(), 2);
        assert_eq!(ft.distinct_subject_predicate_pairs(), 1);
        assert_eq!(ft.entity_properties(0).len(), 2);
    }

    #[test]
    fn sorted_set_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(union_sorted(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<EntityId>::new());
        assert_eq!(union_sorted(&[], &[1]), vec![1]);
    }
}
