//! The fact table (Definition 3) and property catalog (Definition 4).
//!
//! Given the facts `T_W` extracted from a web source `W` and the knowledge
//! base `E` to augment, the [`FactTable`] organises facts by entity
//! (subject), derives the property catalog `C_W`, and precomputes the two
//! per-entity counts every profit evaluation needs:
//!
//! * `facts(e)` — how many extracted facts mention entity `e` (drives the
//!   de-duplication cost), and
//! * `new(e)` — how many of those are absent from `E` (drives the gain and
//!   the validation cost).
//!
//! Because a slice's fact extent `Π*` is *all* facts of its entities
//! (Definition 5), the gain/cost of any slice — or union of slices — reduces
//! to sums of these two counts over a set of distinct entities. That
//! reduction is what makes hierarchy construction cheap.
//!
//! All bulk storage is [`Column`]-backed and flat: entity rows are
//! contiguous slices of the (sorted) source fact column addressed through an
//! offsets array, and per-entity property lists are flattened the same way.
//! A table loaded from a corpus snapshot therefore borrows every column
//! directly from the memory-mapped file; only the hash indexes
//! (`by_subject`, the catalog's `by_pair`) and the derived prefix/packed
//! count arrays are rebuilt in memory.

use midas_kb::fnv::FnvHashMap;
use midas_kb::{Column, Fact, KnowledgeBase, Symbol};

use crate::extent::{calibrate_divisor, ExtentSet};
use crate::scratch;
use crate::source::SourceFacts;

/// Dense per-source entity index (row number in the fact table).
pub type EntityId = u32;

/// Dense per-source property index into the [`PropertyCatalog`].
pub type PropertyId = u32;

/// The catalog `C_W` of all properties derived from a fact table, with an
/// inverted index from property to the (sorted) entities that carry it.
#[derive(Debug, Default, Clone)]
pub struct PropertyCatalog {
    pub(crate) props: Vec<(Symbol, Symbol)>,
    by_pair: FnvHashMap<(Symbol, Symbol), PropertyId>,
    pub(crate) extents: Vec<ExtentSet>,
}

impl PropertyCatalog {
    /// Number of distinct properties.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// The `(predicate, value)` pair of a property.
    pub fn pair(&self, id: PropertyId) -> (Symbol, Symbol) {
        self.props[id as usize]
    }

    /// Looks up a property by its `(predicate, value)` pair.
    pub fn get(&self, pred: Symbol, value: Symbol) -> Option<PropertyId> {
        self.by_pair.get(&(pred, value)).copied()
    }

    /// The entities carrying property `id`.
    pub fn extent(&self, id: PropertyId) -> &ExtentSet {
        &self.extents[id as usize]
    }

    /// Reassembles a catalog from its stored parts, rebuilding the
    /// pair-to-id hash index (hash tables are not snapshotted).
    pub(crate) fn from_parts(props: Vec<(Symbol, Symbol)>, extents: Vec<ExtentSet>) -> Self {
        debug_assert_eq!(props.len(), extents.len());
        let by_pair = props
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as PropertyId))
            .collect();
        PropertyCatalog {
            props,
            by_pair,
            extents,
        }
    }

    fn intern(&mut self, pred: Symbol, value: Symbol) -> PropertyId {
        if let Some(&id) = self.by_pair.get(&(pred, value)) {
            return id;
        }
        let id = u32::try_from(self.props.len()).expect("property catalog overflow");
        self.props.push((pred, value));
        self.by_pair.insert((pred, value), id);
        id
    }
}

/// The fact table `F_W` of one web source (Definition 3).
#[derive(Debug, Clone)]
pub struct FactTable {
    pub(crate) subjects: Column<Symbol>,
    by_subject: FnvHashMap<Symbol, EntityId>,
    /// All facts in `(s, p, o)` order; row `e` is the slice
    /// `rows_flat[row_offsets[e] .. row_offsets[e + 1]]`. When built from a
    /// `SourceFacts` this is a clone of its column — an `Arc` bump if the
    /// source is snapshot-mapped.
    pub(crate) rows_flat: Column<Fact>,
    /// `num_entities + 1` row start offsets into `rows_flat`.
    pub(crate) row_offsets: Column<u32>,
    /// Distinct sorted properties per entity, flattened; entity `e` owns
    /// `entity_props_flat[entity_props_offsets[e] .. entity_props_offsets[e + 1]]`.
    pub(crate) entity_props_flat: Column<PropertyId>,
    /// `num_entities + 1` offsets into `entity_props_flat`.
    pub(crate) entity_props_offsets: Column<u32>,
    pub(crate) facts_count: Column<u32>,
    pub(crate) new_count: Column<u32>,
    /// `new(e)` in the low 32 bits, `facts(e)` in the high 32 — one load
    /// (and one cache stream) per entity in the profit gather loops.
    packed_counts: Column<u64>,
    /// `facts_prefix[i] = Σ_{e<i} facts(e)` — lets [`Self::fact_counts`]
    /// charge a fully-populated 64-entity word of a dense extent in O(1).
    facts_prefix: Column<u64>,
    /// `new_prefix[i] = Σ_{e<i} new(e)`.
    new_prefix: Column<u64>,
    pub(crate) catalog: PropertyCatalog,
    pub(crate) total_facts: usize,
    pub(crate) distinct_sp_pairs: usize,
    /// The density divisor all extents of this table were sealed with,
    /// calibrated per table from the extent length distribution.
    pub(crate) divisor: u32,
}

impl FactTable {
    /// Builds the fact table for `source` against knowledge base `kb`.
    pub fn build(source: &SourceFacts, kb: &KnowledgeBase) -> Self {
        let facts: &[Fact] = &source.facts;
        // `source.facts` is sorted by (s, p, o), so each entity's facts form
        // one contiguous run and subjects appear in ascending symbol order.
        // Rows are therefore slices of the source column itself.
        debug_assert!(facts.windows(2).all(|w| w[0] < w[1]));
        let mut subjects: Vec<Symbol> = Vec::new();
        let mut row_offsets = scratch::take_ids();
        for (i, f) in facts.iter().enumerate() {
            if subjects.last() != Some(&f.subject) {
                u32::try_from(subjects.len()).expect("fact table overflow");
                subjects.push(f.subject);
                row_offsets.push(i as u32);
            }
        }
        row_offsets.push(u32::try_from(facts.len()).expect("fact table overflow"));
        let n = subjects.len();
        let by_subject: FnvHashMap<Symbol, EntityId> = subjects
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as EntityId))
            .collect();

        let mut catalog = PropertyCatalog::default();
        let mut raw_extents: Vec<Vec<EntityId>> = Vec::new();
        let mut props_flat = scratch::take_ids();
        props_flat.reserve(facts.len());
        let mut props_offsets = scratch::take_ids();
        props_offsets.reserve(n + 1);
        props_offsets.push(0);
        let mut row_props = scratch::take_ids();
        let mut facts_count = scratch::take_ids();
        facts_count.reserve(n);
        let mut new_count = scratch::take_ids();
        new_count.reserve(n);
        let mut distinct_sp_pairs = 0usize;
        for eid in 0..n {
            let row = &facts[row_offsets[eid] as usize..row_offsets[eid + 1] as usize];
            // The row is sorted by (p, o) with no duplicates, so every fact
            // yields a distinct property; sorting by *property id* is still
            // needed because ids are assigned in global first-seen order.
            row_props.clear();
            row_props.reserve(row.len());
            let mut news = 0u32;
            let mut last_pred: Option<Symbol> = None;
            for f in row {
                let pid = catalog.intern(f.predicate, f.object);
                row_props.push(pid);
                if kb.is_new(f) {
                    news += 1;
                }
                if last_pred != Some(f.predicate) {
                    distinct_sp_pairs += 1;
                    last_pred = Some(f.predicate);
                }
            }
            row_props.sort_unstable();
            row_props.dedup();
            raw_extents.resize_with(catalog.len(), scratch::take_ids);
            for &pid in &row_props {
                raw_extents[pid as usize].push(eid as EntityId);
            }
            props_flat.extend_from_slice(&row_props);
            props_offsets.push(u32::try_from(props_flat.len()).expect("property overflow"));
            facts_count.push(u32::try_from(row.len()).expect("row overflow"));
            new_count.push(news);
        }
        scratch::put_ids(row_props);
        // Extents were filled in ascending entity order, so they are sorted;
        // calibrate one density divisor for the whole table from the extent
        // length distribution, then seal them with it.
        let universe = u32::try_from(n).expect("fact table overflow");
        let mut lens = scratch::take_ids();
        lens.extend(raw_extents.iter().map(|v| v.len() as u32));
        let divisor = calibrate_divisor(universe, &lens);
        scratch::put_ids(lens);
        catalog.extents = raw_extents
            .into_iter()
            .map(|v| ExtentSet::from_sorted_with_divisor(universe, divisor, v))
            .collect();

        let (facts_prefix, new_prefix, packed_counts) =
            derive_count_structures(&facts_count, &new_count);

        FactTable {
            subjects: subjects.into(),
            by_subject,
            total_facts: facts.len(),
            rows_flat: source.facts.clone(),
            row_offsets: row_offsets.into(),
            entity_props_flat: props_flat.into(),
            entity_props_offsets: props_offsets.into(),
            facts_count: facts_count.into(),
            new_count: new_count.into(),
            packed_counts,
            facts_prefix,
            new_prefix,
            catalog,
            distinct_sp_pairs,
            divisor,
        }
    }

    /// Reassembles a table from snapshot-loaded columns, rebuilding the
    /// subject hash index and the derived prefix/packed count arrays (which
    /// are not stored — they are cheap to derive and this guarantees they
    /// always agree with the stored counts).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        subjects: Column<Symbol>,
        rows_flat: Column<Fact>,
        row_offsets: Column<u32>,
        entity_props_flat: Column<PropertyId>,
        entity_props_offsets: Column<u32>,
        facts_count: Column<u32>,
        new_count: Column<u32>,
        catalog: PropertyCatalog,
        total_facts: usize,
        distinct_sp_pairs: usize,
        divisor: u32,
    ) -> Self {
        let n = subjects.len();
        debug_assert_eq!(row_offsets.len(), n + 1);
        debug_assert_eq!(entity_props_offsets.len(), n + 1);
        debug_assert_eq!(facts_count.len(), n);
        debug_assert_eq!(new_count.len(), n);
        let by_subject = subjects
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as EntityId))
            .collect();
        let (facts_prefix, new_prefix, packed_counts) =
            derive_count_structures(&facts_count, &new_count);
        FactTable {
            subjects,
            by_subject,
            rows_flat,
            row_offsets,
            entity_props_flat,
            entity_props_offsets,
            facts_count,
            new_count,
            packed_counts,
            facts_prefix,
            new_prefix,
            catalog,
            total_facts,
            distinct_sp_pairs,
            divisor,
        }
    }

    /// Number of entities (rows).
    pub fn num_entities(&self) -> usize {
        self.subjects.len()
    }

    /// Total number of extracted facts `|T_W|`.
    pub fn total_facts(&self) -> usize {
        self.total_facts
    }

    /// Number of distinct `(subject, predicate)` pairs — the `m` of
    /// Proposition 15.
    pub fn distinct_subject_predicate_pairs(&self) -> usize {
        self.distinct_sp_pairs
    }

    /// The property catalog `C_W`.
    pub fn catalog(&self) -> &PropertyCatalog {
        &self.catalog
    }

    /// The density divisor this table's extents were calibrated to.
    pub fn divisor(&self) -> u32 {
        self.divisor
    }

    /// Whether the table's bulk columns borrow from a snapshot mapping.
    pub fn is_mapped(&self) -> bool {
        self.rows_flat.is_mapped()
    }

    /// The subject symbol of an entity row.
    pub fn subject(&self, e: EntityId) -> Symbol {
        self.subjects[e as usize]
    }

    /// Looks an entity up by its subject symbol.
    pub fn entity(&self, subject: Symbol) -> Option<EntityId> {
        self.by_subject.get(&subject).copied()
    }

    /// All facts of an entity row.
    pub fn row(&self, e: EntityId) -> &[Fact] {
        let start = self.row_offsets[e as usize] as usize;
        let end = self.row_offsets[e as usize + 1] as usize;
        &self.rows_flat[start..end]
    }

    /// Distinct properties of an entity.
    pub fn entity_properties(&self, e: EntityId) -> &[PropertyId] {
        let start = self.entity_props_offsets[e as usize] as usize;
        let end = self.entity_props_offsets[e as usize + 1] as usize;
        &self.entity_props_flat[start..end]
    }

    /// `facts(e)` — number of facts mentioning entity `e`.
    #[inline]
    pub fn facts_of(&self, e: EntityId) -> u32 {
        self.facts_count[e as usize]
    }

    /// `new(e)` — number of facts of `e` absent from the knowledge base.
    #[inline]
    pub fn new_of(&self, e: EntityId) -> u32 {
        self.new_count[e as usize]
    }

    /// Sum of `facts(e)` over an entity set.
    pub fn facts_sum(&self, entities: &ExtentSet) -> u64 {
        self.fact_counts(entities).1
    }

    /// Sum of `new(e)` over an entity set.
    pub fn new_sum(&self, entities: &ExtentSet) -> u64 {
        self.fact_counts(entities).0
    }

    /// Fused `(new(U), facts(U))` over an entity set in one pass — the hot
    /// inner loop of every profit evaluation. Sparse extents are walked as a
    /// raw id slice; dense extents are walked word-wise, with fully-populated
    /// 64-entity words charged in O(1) via the prefix-sum arrays.
    pub fn fact_counts(&self, entities: &ExtentSet) -> (u64, u64) {
        let (mut new, mut total) = (0u64, 0u64);
        if let Some(ids) = entities.sparse_ids() {
            for &e in ids {
                let p = self.packed_counts[e as usize];
                new += p & 0xFFFF_FFFF;
                total += p >> 32;
            }
        } else if let Some(blocks) = entities.dense_blocks() {
            return self.fact_counts_from_blocks(blocks);
        }
        (new, total)
    }

    /// `(new(U), facts(U))` of the entities selected by one 64-bit word at
    /// `base`. Full words are charged in O(1) via the prefix-sum arrays;
    /// other words walk their set bits as two independent 32-bit chains so
    /// the serial `word &= word - 1` dependency is split in half and the
    /// out-of-order core can overlap them.
    #[inline]
    pub(crate) fn word_counts(&self, base: usize, w: u64) -> (u64, u64) {
        // Bits >= universe are never set, so a full word implies
        // base + 64 <= num_entities and the prefix access is safe.
        if w == u64::MAX {
            debug_assert!(
                base + 64 < self.new_prefix.len(),
                "full word at base {base} exceeds entity universe {}; \
                 caller passed a bitmap with tail bits set or too many blocks",
                self.packed_counts.len()
            );
            return (
                self.new_prefix[base + 64] - self.new_prefix[base],
                self.facts_prefix[base + 64] - self.facts_prefix[base],
            );
        }
        let (mut lo, mut hi) = (w & 0xFFFF_FFFF, w >> 32);
        let (mut new_lo, mut total_lo) = (0u64, 0u64);
        while lo != 0 {
            let p = self.packed_counts[base + lo.trailing_zeros() as usize];
            new_lo += p & 0xFFFF_FFFF;
            total_lo += p >> 32;
            lo &= lo - 1;
        }
        let (mut new_hi, mut total_hi) = (0u64, 0u64);
        while hi != 0 {
            let p = self.packed_counts[base + 32 + hi.trailing_zeros() as usize];
            new_hi += p & 0xFFFF_FFFF;
            total_hi += p >> 32;
            hi &= hi - 1;
        }
        (new_lo + new_hi, total_lo + total_hi)
    }

    /// `(new(U), facts(U))` for a `u64`-block bitmap over the entity
    /// universe (e.g. an accumulator's covered map, or a scratch union of
    /// several extents). Fully-populated words are charged in O(1) via the
    /// prefix-sum arrays.
    ///
    /// The bitmap must cover exactly this table's entity universe: at most
    /// `ceil(num_entities / 64)` blocks, with no bit `>= num_entities` set.
    /// Violating this panics (index out of bounds; caught by a
    /// `debug_assert` in debug builds).
    pub fn fact_counts_from_blocks(&self, blocks: &[u64]) -> (u64, u64) {
        let (mut new, mut total) = (0u64, 0u64);
        for (i, &w) in blocks.iter().enumerate() {
            let (n, t) = self.word_counts(i * 64, w);
            new += n;
            total += t;
        }
        (new, total)
    }

    /// `(new(U'), facts(U'))` where `U'` are the members of `entities` whose
    /// bit is *not* set in `covered` — the marginal-gain loop of Algorithm 1,
    /// fused into one pass. Dense extents walk `extent & !covered` word-wise;
    /// fully-uncovered words are charged in O(1) via the prefix-sum arrays.
    ///
    /// `covered` must span this table's entity universe (at least
    /// `ceil(num_entities / 64)` blocks) and, like the extent itself, have
    /// no bit `>= num_entities` set.
    pub fn fact_counts_missing_from(&self, entities: &ExtentSet, covered: &[u64]) -> (u64, u64) {
        if let Some(blocks) = entities.dense_blocks() {
            let (mut new, mut total) = (0u64, 0u64);
            for (i, (&x, &y)) in blocks.iter().zip(covered).enumerate() {
                let (n, t) = self.word_counts(i * 64, x & !y);
                new += n;
                total += t;
            }
            (new, total)
        } else {
            let (mut new, mut total) = (0u64, 0u64);
            for &e in entities.sparse_ids().unwrap_or(&[]) {
                if covered[(e / 64) as usize] & (1u64 << (e % 64)) == 0 {
                    let p = self.packed_counts[e as usize];
                    new += p & 0xFFFF_FFFF;
                    total += p >> 32;
                }
            }
            (new, total)
        }
    }

    /// Like [`Self::fact_counts_missing_from`], but also marks the counted
    /// entities in `covered` — the fused count-and-claim pass of an
    /// accumulator `add`, one walk instead of count-then-mark.
    pub fn fact_counts_claim(&self, entities: &ExtentSet, covered: &mut [u64]) -> (u64, u64) {
        if let Some(blocks) = entities.dense_blocks() {
            let (mut new, mut total) = (0u64, 0u64);
            for (i, (&x, y)) in blocks.iter().zip(covered.iter_mut()).enumerate() {
                let missing = x & !*y;
                *y |= x;
                let (n, t) = self.word_counts(i * 64, missing);
                new += n;
                total += t;
            }
            (new, total)
        } else {
            let (mut new, mut total) = (0u64, 0u64);
            for &e in entities.sparse_ids().unwrap_or(&[]) {
                let word = &mut covered[(e / 64) as usize];
                let bit = 1u64 << (e % 64);
                if *word & bit == 0 {
                    *word |= bit;
                    let p = self.packed_counts[e as usize];
                    new += p & 0xFFFF_FFFF;
                    total += p >> 32;
                }
            }
            (new, total)
        }
    }

    /// Applies a knowledge-base insertion delta in place: recomputes `new(e)`
    /// for every row whose subject appears in `subjects` and, when any count
    /// changed, invalidates and rebuilds the derived count structures (the
    /// packed per-entity counts and the `new` prefix sums). Everything else —
    /// subjects, rows, the property catalog, extents, `facts(e)` — is
    /// untouched, because inserting facts into the KB can only flip facts
    /// from *new* to *known*.
    ///
    /// This is the incremental-rerun fast path: after an augmentation round
    /// a dirty source's table is refreshed in O(|touched rows| + n) instead
    /// of rebuilt in O(|T_W|) hash/extent work. Returns the (sorted) entity
    /// ids whose `new` count actually changed — the warm-hierarchy patcher
    /// uses them to bound profit re-evaluation to dirty nodes. On a
    /// snapshot-mapped table the mutated count columns are copied out of
    /// the mapping on first change (copy-on-write); the fact rows and
    /// extents stay mapped.
    pub fn refresh_new_counts(
        &mut self,
        kb: &KnowledgeBase,
        subjects: impl IntoIterator<Item = Symbol>,
    ) -> Vec<EntityId> {
        let mut changed: Vec<EntityId> = Vec::new();
        for subject in subjects {
            let Some(&eid) = self.by_subject.get(&subject) else {
                continue;
            };
            let start = self.row_offsets[eid as usize] as usize;
            let end = self.row_offsets[eid as usize + 1] as usize;
            let news = self.rows_flat[start..end]
                .iter()
                .filter(|f| kb.is_new(f))
                .count() as u32;
            let old = self.new_count[eid as usize];
            if old != news {
                debug_assert!(
                    news <= old,
                    "KB insertions can only lower new(e): {news} > {old}"
                );
                self.new_count.make_mut()[eid as usize] = news;
                changed.push(eid);
            }
        }
        if !changed.is_empty() {
            // Count invalidation: the prefix sums and packed words derived
            // from `new_count` are rebuilt in place, reusing their buffers.
            let n = self.new_count.len();
            let mut acc = 0u64;
            let prefix = self.new_prefix.make_mut();
            for (i, slot) in prefix.iter_mut().take(n).enumerate() {
                *slot = acc;
                acc += u64::from(self.new_count[i]);
            }
            prefix[n] = acc;
            let packed = self.packed_counts.make_mut();
            for (i, slot) in packed.iter_mut().take(n).enumerate() {
                *slot = u64::from(self.new_count[i]) | (u64::from(self.facts_count[i]) << 32);
            }
        }
        // Subjects arrive in caller order (typically a sorted set walk, but
        // not guaranteed); dirty-node marking wants a canonical order.
        changed.sort_unstable();
        changed
    }

    /// Re-runs [`calibrate_divisor`] against the table's current
    /// universe/extent-length distribution and, if the preferred divisor
    /// changed, re-seals every catalog extent with it — flipping only the
    /// representations whose density crossover moved. Returns whether
    /// anything changed.
    ///
    /// The divisor is a pure function of `(universe, extent lengths)`,
    /// which table structure updates like [`Self::refresh_new_counts`]
    /// never touch, so in the live augmentation loop this is a cheap
    /// no-op guard; it exists so the loop stays correct if rounds ever
    /// start growing tables in place, and as the recalibration entry
    /// point for snapshot-era tables built under a different divisor.
    /// The divisor only ever selects the representation — never the
    /// contents — so slice output is bit-identical either way.
    pub fn recalibrate_divisor(&mut self) -> bool {
        let universe = u32::try_from(self.subjects.len()).expect("fact table overflow");
        let mut lens = scratch::take_ids();
        lens.extend(self.catalog.extents.iter().map(|e| e.len() as u32));
        let divisor = calibrate_divisor(universe, &lens);
        scratch::put_ids(lens);
        if divisor == self.divisor {
            return false;
        }
        self.divisor = divisor;
        for ext in &mut self.catalog.extents {
            ext.set_divisor(divisor);
        }
        true
    }

    /// Consumes the table, returning its reusable owned buffers (property
    /// extents, flattened property lists, offsets, packed counts, prefix
    /// sums) to the scratch pool for the next shard. Snapshot-mapped columns
    /// have no buffer to reclaim and are simply dropped. Purely an
    /// optimisation — dropping the table is always correct.
    pub fn recycle(mut self) {
        for ext in self.catalog.extents {
            ext.recycle();
        }
        if let Some(v) = self.entity_props_flat.take_owned() {
            scratch::put_ids(v);
        }
        if let Some(v) = self.entity_props_offsets.take_owned() {
            scratch::put_ids(v);
        }
        if let Some(v) = self.row_offsets.take_owned() {
            scratch::put_ids(v);
        }
        if let Some(v) = self.facts_count.take_owned() {
            scratch::put_ids(v);
        }
        if let Some(v) = self.new_count.take_owned() {
            scratch::put_ids(v);
        }
        if let Some(v) = self.packed_counts.take_owned() {
            scratch::put_blocks(v);
        }
        if let Some(v) = self.facts_prefix.take_owned() {
            scratch::put_blocks(v);
        }
        if let Some(v) = self.new_prefix.take_owned() {
            scratch::put_blocks(v);
        }
    }

    /// The entity extent of a property conjunction — `Π` of Definition 5,
    /// computed by intersecting the per-property inverted extents (smallest
    /// extent first).
    pub fn extent_of(&self, props: &[PropertyId]) -> ExtentSet {
        let universe = self.num_entities() as u32;
        if props.is_empty() {
            return ExtentSet::full(universe);
        }
        let mut sets: Vec<&ExtentSet> = props.iter().map(|&p| self.catalog.extent(p)).collect();
        sets.sort_by_key(|s| s.len());
        let mut acc = sets[0].clone();
        for set in &sets[1..] {
            acc.intersect_with(set);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }
}

/// Derives the packed per-entity counts and the two prefix-sum arrays from
/// the stored `facts(e)` / `new(e)` columns.
fn derive_count_structures(
    facts_count: &[u32],
    new_count: &[u32],
) -> (Column<u64>, Column<u64>, Column<u64>) {
    let prefix = |counts: &[u32]| {
        let mut acc = 0u64;
        let mut out = scratch::take_blocks(0);
        out.reserve(counts.len() + 1);
        out.push(0);
        for &c in counts {
            acc += u64::from(c);
            out.push(acc);
        }
        out
    };
    let facts_prefix = prefix(facts_count);
    let new_prefix = prefix(new_count);
    let mut packed_counts = scratch::take_blocks(0);
    packed_counts.reserve(new_count.len());
    packed_counts.extend(
        new_count
            .iter()
            .zip(facts_count)
            .map(|(&n, &f)| u64::from(n) | (u64::from(f) << 32)),
    );
    (facts_prefix.into(), new_prefix.into(), packed_counts.into())
}

/// Intersects two sorted, deduplicated id lists.
pub fn intersect_sorted(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Unions two sorted, deduplicated id lists.
pub fn union_sorted(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;
    use midas_weburl::SourceUrl;

    #[test]
    fn builds_five_entity_rows() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        assert_eq!(ft.num_entities(), 5);
        assert_eq!(ft.total_facts(), 13);
        // Figure 4 lists six distinct properties c1..c6.
        assert_eq!(ft.catalog().len(), 6);
        assert_eq!(ft.distinct_subject_predicate_pairs(), 13);
    }

    #[test]
    fn per_entity_counts_match_figure_2() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let atlas = ft.entity(t.intern("Atlas")).unwrap();
        assert_eq!(ft.facts_of(atlas), 3);
        assert_eq!(ft.new_of(atlas), 3);
        let mercury = ft.entity(t.intern("Project Mercury")).unwrap();
        assert_eq!(ft.facts_of(mercury), 3);
        assert_eq!(ft.new_of(mercury), 0);
        let gemini = ft.entity(t.intern("Project Gemini")).unwrap();
        assert_eq!(ft.facts_of(gemini), 2);
    }

    #[test]
    fn property_extents_match_figure_4() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let sponsor_nasa = ft
            .catalog()
            .get(t.intern("sponsor"), t.intern("NASA"))
            .unwrap();
        assert_eq!(
            ft.catalog().extent(sponsor_nasa).len(),
            5,
            "c6 covers e1..e5"
        );
        let rocket = ft
            .catalog()
            .get(t.intern("category"), t.intern("rocket_family"))
            .unwrap();
        assert_eq!(ft.catalog().extent(rocket).len(), 2, "c2 covers e3, e5");
    }

    #[test]
    fn extent_of_conjunction_matches_slice_s5() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let c2 = ft
            .catalog()
            .get(t.intern("category"), t.intern("rocket_family"))
            .unwrap();
        let c6 = ft
            .catalog()
            .get(t.intern("sponsor"), t.intern("NASA"))
            .unwrap();
        let extent = ft.extent_of(&[c2, c6]);
        let names: Vec<&str> = extent.iter().map(|e| t.resolve(ft.subject(e))).collect();
        assert_eq!(names, vec!["Atlas", "Castor-4"]);
        assert_eq!(ft.facts_sum(&extent), 6);
        assert_eq!(ft.new_sum(&extent), 6);
    }

    #[test]
    fn empty_conjunction_is_whole_source() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        assert_eq!(ft.extent_of(&[]).len(), 5);
    }

    #[test]
    fn multi_valued_predicates_yield_multiple_properties() {
        let mut t = Interner::new();
        let facts = vec![
            Fact::intern(&mut t, "margarita", "ingredient", "tequila"),
            Fact::intern(&mut t, "margarita", "ingredient", "lime"),
        ];
        let src = SourceFacts::new(SourceUrl::parse("http://c.com/m").unwrap(), facts);
        let ft = FactTable::build(&src, &KnowledgeBase::new());
        assert_eq!(ft.num_entities(), 1);
        assert_eq!(ft.catalog().len(), 2);
        assert_eq!(ft.distinct_subject_predicate_pairs(), 1);
        assert_eq!(ft.entity_properties(0).len(), 2);
    }

    #[test]
    fn rows_are_contiguous_slices_of_source_order() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let mut rebuilt: Vec<Fact> = Vec::new();
        for e in 0..ft.num_entities() as EntityId {
            let row = ft.row(e);
            assert!(!row.is_empty());
            assert!(row.iter().all(|f| f.subject == ft.subject(e)));
            rebuilt.extend_from_slice(row);
        }
        assert_eq!(&rebuilt[..], &src.facts[..]);
    }

    #[test]
    fn recalibrate_divisor_reseals_extents_bit_identically() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let alg =
            crate::single_source::MidasAlg::new(crate::config::MidasConfig::running_example());
        let mut ft = FactTable::build(&src, &kb);
        let baseline = alg.run_on_table(&ft, &src, &kb, &[]);
        assert!(
            !ft.recalibrate_divisor(),
            "a fresh build is already calibrated"
        );
        // Force a stale divisor, as if the table had been sealed before
        // the KB/universe grew into a different calibration.
        let want_extents: Vec<Vec<EntityId>> = (0..ft.catalog().len() as PropertyId)
            .map(|id| ft.catalog().extent(id).iter().collect())
            .collect();
        ft.divisor = crate::extent::DENSITY_DIVISOR;
        for ext in &mut ft.catalog.extents {
            ext.set_divisor(crate::extent::DENSITY_DIVISOR);
        }
        let stale = alg.run_on_table(&ft, &src, &kb, &[]);
        assert_eq!(stale, baseline, "divisor never changes slice output");
        assert!(ft.recalibrate_divisor(), "stale divisor must recalibrate");
        assert_eq!(ft.divisor(), crate::extent::MAX_DENSITY_DIVISOR);
        for (id, want) in want_extents.iter().enumerate() {
            let ext = ft.catalog().extent(id as PropertyId);
            assert_eq!(ext.divisor(), ft.divisor(), "extents re-sealed");
            let got: Vec<EntityId> = ext.iter().collect();
            assert_eq!(&got, want, "re-sealing must not change contents");
        }
        let resealed = alg.run_on_table(&ft, &src, &kb, &[]);
        assert_eq!(resealed, baseline, "recalibrated slice output identical");
        assert!(!ft.recalibrate_divisor(), "second call is a no-op");
    }

    #[test]
    fn table_divisor_is_calibrated_and_applied_to_extents() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        // Tiny universe → the calibrator picks the maximum divisor, and
        // every sealed extent carries the table's divisor.
        assert_eq!(ft.divisor(), crate::extent::MAX_DENSITY_DIVISOR);
        for id in 0..ft.catalog().len() as PropertyId {
            assert_eq!(ft.catalog().extent(id).divisor(), ft.divisor());
        }
    }

    #[test]
    fn from_parts_round_trips_a_built_table() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let rebuilt = FactTable::from_parts(
            ft.subjects.clone(),
            ft.rows_flat.clone(),
            ft.row_offsets.clone(),
            ft.entity_props_flat.clone(),
            ft.entity_props_offsets.clone(),
            ft.facts_count.clone(),
            ft.new_count.clone(),
            PropertyCatalog::from_parts(ft.catalog.props.clone(), ft.catalog.extents.clone()),
            ft.total_facts,
            ft.distinct_sp_pairs,
            ft.divisor,
        );
        assert_eq!(rebuilt.num_entities(), ft.num_entities());
        assert_eq!(rebuilt.total_facts(), ft.total_facts());
        assert_eq!(
            rebuilt.distinct_subject_predicate_pairs(),
            ft.distinct_subject_predicate_pairs()
        );
        for e in 0..ft.num_entities() as EntityId {
            assert_eq!(rebuilt.row(e), ft.row(e));
            assert_eq!(rebuilt.entity_properties(e), ft.entity_properties(e));
            assert_eq!(rebuilt.facts_of(e), ft.facts_of(e));
            assert_eq!(rebuilt.new_of(e), ft.new_of(e));
        }
        let full = ExtentSet::full(ft.num_entities() as u32);
        assert_eq!(rebuilt.fact_counts(&full), ft.fact_counts(&full));
    }

    #[test]
    fn sorted_set_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(union_sorted(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<EntityId>::new());
        assert_eq!(union_sorted(&[], &[1]), vec![1]);
    }
}
