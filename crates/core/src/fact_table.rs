//! The fact table (Definition 3) and property catalog (Definition 4).
//!
//! Given the facts `T_W` extracted from a web source `W` and the knowledge
//! base `E` to augment, the [`FactTable`] organises facts by entity
//! (subject), derives the property catalog `C_W`, and precomputes the two
//! per-entity counts every profit evaluation needs:
//!
//! * `facts(e)` — how many extracted facts mention entity `e` (drives the
//!   de-duplication cost), and
//! * `new(e)` — how many of those are absent from `E` (drives the gain and
//!   the validation cost).
//!
//! Because a slice's fact extent `Π*` is *all* facts of its entities
//! (Definition 5), the gain/cost of any slice — or union of slices — reduces
//! to sums of these two counts over a set of distinct entities. That
//! reduction is what makes hierarchy construction cheap.

use midas_kb::fnv::FnvHashMap;
use midas_kb::{Fact, KnowledgeBase, Symbol};

use crate::source::SourceFacts;

/// Dense per-source entity index (row number in the fact table).
pub type EntityId = u32;

/// Dense per-source property index into the [`PropertyCatalog`].
pub type PropertyId = u32;

/// The catalog `C_W` of all properties derived from a fact table, with an
/// inverted index from property to the (sorted) entities that carry it.
#[derive(Debug, Default, Clone)]
pub struct PropertyCatalog {
    props: Vec<(Symbol, Symbol)>,
    by_pair: FnvHashMap<(Symbol, Symbol), PropertyId>,
    extents: Vec<Vec<EntityId>>,
}

impl PropertyCatalog {
    /// Number of distinct properties.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// The `(predicate, value)` pair of a property.
    pub fn pair(&self, id: PropertyId) -> (Symbol, Symbol) {
        self.props[id as usize]
    }

    /// Looks up a property by its `(predicate, value)` pair.
    pub fn get(&self, pred: Symbol, value: Symbol) -> Option<PropertyId> {
        self.by_pair.get(&(pred, value)).copied()
    }

    /// The sorted entities carrying property `id`.
    pub fn extent(&self, id: PropertyId) -> &[EntityId] {
        &self.extents[id as usize]
    }

    fn intern(&mut self, pred: Symbol, value: Symbol) -> PropertyId {
        if let Some(&id) = self.by_pair.get(&(pred, value)) {
            return id;
        }
        let id = u32::try_from(self.props.len()).expect("property catalog overflow");
        self.props.push((pred, value));
        self.extents.push(Vec::new());
        self.by_pair.insert((pred, value), id);
        id
    }
}

/// The fact table `F_W` of one web source (Definition 3).
#[derive(Debug, Clone)]
pub struct FactTable {
    subjects: Vec<Symbol>,
    by_subject: FnvHashMap<Symbol, EntityId>,
    /// Facts per entity row, grouped and sorted.
    rows: Vec<Vec<Fact>>,
    /// Distinct properties per entity (dedup of `(pred, value)` pairs).
    entity_props: Vec<Vec<PropertyId>>,
    facts_count: Vec<u32>,
    new_count: Vec<u32>,
    catalog: PropertyCatalog,
    total_facts: usize,
    distinct_sp_pairs: usize,
}

impl FactTable {
    /// Builds the fact table for `source` against knowledge base `kb`.
    pub fn build(source: &SourceFacts, kb: &KnowledgeBase) -> Self {
        let mut subjects: Vec<Symbol> = Vec::new();
        let mut by_subject: FnvHashMap<Symbol, EntityId> = FnvHashMap::default();
        let mut rows: Vec<Vec<Fact>> = Vec::new();
        for &f in &source.facts {
            let eid = *by_subject.entry(f.subject).or_insert_with(|| {
                let id = u32::try_from(subjects.len()).expect("fact table overflow");
                subjects.push(f.subject);
                rows.push(Vec::new());
                id
            });
            rows[eid as usize].push(f);
        }

        let mut catalog = PropertyCatalog::default();
        let mut entity_props: Vec<Vec<PropertyId>> = Vec::with_capacity(rows.len());
        let mut facts_count = Vec::with_capacity(rows.len());
        let mut new_count = Vec::with_capacity(rows.len());
        let mut distinct_sp_pairs = 0usize;
        for (eid, row) in rows.iter().enumerate() {
            // `source.facts` is sorted, so each row is sorted by (p, o) and
            // distinct (s, p) runs are contiguous.
            let mut props = Vec::with_capacity(row.len());
            let mut news = 0u32;
            let mut last_pred: Option<Symbol> = None;
            for f in row {
                let pid = catalog.intern(f.predicate, f.object);
                props.push(pid);
                if kb.is_new(f) {
                    news += 1;
                }
                if last_pred != Some(f.predicate) {
                    distinct_sp_pairs += 1;
                    last_pred = Some(f.predicate);
                }
            }
            props.sort_unstable();
            props.dedup();
            for &pid in &props {
                catalog.extents[pid as usize].push(eid as EntityId);
            }
            entity_props.push(props);
            facts_count.push(u32::try_from(row.len()).expect("row overflow"));
            new_count.push(news);
        }
        // Extents were filled in ascending entity order, so they are sorted.

        FactTable {
            subjects,
            by_subject,
            total_facts: source.facts.len(),
            rows,
            entity_props,
            facts_count,
            new_count,
            catalog,
            distinct_sp_pairs,
        }
    }

    /// Number of entities (rows).
    pub fn num_entities(&self) -> usize {
        self.subjects.len()
    }

    /// Total number of extracted facts `|T_W|`.
    pub fn total_facts(&self) -> usize {
        self.total_facts
    }

    /// Number of distinct `(subject, predicate)` pairs — the `m` of
    /// Proposition 15.
    pub fn distinct_subject_predicate_pairs(&self) -> usize {
        self.distinct_sp_pairs
    }

    /// The property catalog `C_W`.
    pub fn catalog(&self) -> &PropertyCatalog {
        &self.catalog
    }

    /// The subject symbol of an entity row.
    pub fn subject(&self, e: EntityId) -> Symbol {
        self.subjects[e as usize]
    }

    /// Looks an entity up by its subject symbol.
    pub fn entity(&self, subject: Symbol) -> Option<EntityId> {
        self.by_subject.get(&subject).copied()
    }

    /// All facts of an entity row.
    pub fn row(&self, e: EntityId) -> &[Fact] {
        &self.rows[e as usize]
    }

    /// Distinct properties of an entity.
    pub fn entity_properties(&self, e: EntityId) -> &[PropertyId] {
        &self.entity_props[e as usize]
    }

    /// `facts(e)` — number of facts mentioning entity `e`.
    pub fn facts_of(&self, e: EntityId) -> u32 {
        self.facts_count[e as usize]
    }

    /// `new(e)` — number of facts of `e` absent from the knowledge base.
    pub fn new_of(&self, e: EntityId) -> u32 {
        self.new_count[e as usize]
    }

    /// Sum of `facts(e)` over an entity set.
    pub fn facts_sum(&self, entities: &[EntityId]) -> u64 {
        entities
            .iter()
            .map(|&e| u64::from(self.facts_count[e as usize]))
            .sum()
    }

    /// Sum of `new(e)` over an entity set.
    pub fn new_sum(&self, entities: &[EntityId]) -> u64 {
        entities
            .iter()
            .map(|&e| u64::from(self.new_count[e as usize]))
            .sum()
    }

    /// The entity extent of a property conjunction — `Π` of Definition 5,
    /// computed by intersecting the per-property inverted lists (smallest
    /// list first).
    pub fn extent_of(&self, props: &[PropertyId]) -> Vec<EntityId> {
        if props.is_empty() {
            return (0..self.num_entities() as EntityId).collect();
        }
        let mut lists: Vec<&[EntityId]> = props.iter().map(|&p| self.catalog.extent(p)).collect();
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<EntityId> = lists[0].to_vec();
        for list in &lists[1..] {
            acc = intersect_sorted(&acc, list);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }
}

/// Intersects two sorted, deduplicated id lists.
pub fn intersect_sorted(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Unions two sorted, deduplicated id lists.
pub fn union_sorted(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;
    use midas_weburl::SourceUrl;

    #[test]
    fn builds_five_entity_rows() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        assert_eq!(ft.num_entities(), 5);
        assert_eq!(ft.total_facts(), 13);
        // Figure 4 lists six distinct properties c1..c6.
        assert_eq!(ft.catalog().len(), 6);
        assert_eq!(ft.distinct_subject_predicate_pairs(), 13);
    }

    #[test]
    fn per_entity_counts_match_figure_2() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let atlas = ft.entity(t.intern("Atlas")).unwrap();
        assert_eq!(ft.facts_of(atlas), 3);
        assert_eq!(ft.new_of(atlas), 3);
        let mercury = ft.entity(t.intern("Project Mercury")).unwrap();
        assert_eq!(ft.facts_of(mercury), 3);
        assert_eq!(ft.new_of(mercury), 0);
        let gemini = ft.entity(t.intern("Project Gemini")).unwrap();
        assert_eq!(ft.facts_of(gemini), 2);
    }

    #[test]
    fn property_extents_match_figure_4() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let sponsor_nasa = ft
            .catalog()
            .get(t.intern("sponsor"), t.intern("NASA"))
            .unwrap();
        assert_eq!(ft.catalog().extent(sponsor_nasa).len(), 5, "c6 covers e1..e5");
        let rocket = ft
            .catalog()
            .get(t.intern("category"), t.intern("rocket_family"))
            .unwrap();
        assert_eq!(ft.catalog().extent(rocket).len(), 2, "c2 covers e3, e5");
    }

    #[test]
    fn extent_of_conjunction_matches_slice_s5() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        let c2 = ft
            .catalog()
            .get(t.intern("category"), t.intern("rocket_family"))
            .unwrap();
        let c6 = ft
            .catalog()
            .get(t.intern("sponsor"), t.intern("NASA"))
            .unwrap();
        let extent = ft.extent_of(&[c2, c6]);
        let names: Vec<&str> = extent.iter().map(|&e| t.resolve(ft.subject(e))).collect();
        assert_eq!(names, vec!["Atlas", "Castor-4"]);
        assert_eq!(ft.facts_sum(&extent), 6);
        assert_eq!(ft.new_sum(&extent), 6);
    }

    #[test]
    fn empty_conjunction_is_whole_source() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let ft = FactTable::build(&src, &kb);
        assert_eq!(ft.extent_of(&[]).len(), 5);
    }

    #[test]
    fn multi_valued_predicates_yield_multiple_properties() {
        let mut t = Interner::new();
        let facts = vec![
            Fact::intern(&mut t, "margarita", "ingredient", "tequila"),
            Fact::intern(&mut t, "margarita", "ingredient", "lime"),
        ];
        let src = SourceFacts::new(SourceUrl::parse("http://c.com/m").unwrap(), facts);
        let ft = FactTable::build(&src, &KnowledgeBase::new());
        assert_eq!(ft.num_entities(), 1);
        assert_eq!(ft.catalog().len(), 2);
        assert_eq!(ft.distinct_subject_predicate_pairs(), 1);
        assert_eq!(ft.entity_properties(0).len(), 2);
    }

    #[test]
    fn sorted_set_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(union_sorted(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<EntityId>::new());
        assert_eq!(union_sorted(&[], &[1]), vec![1]);
    }
}
