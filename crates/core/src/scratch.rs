//! Worker-local scratch pools for the streaming pipeline.
//!
//! The streaming round driver (see `framework.rs`) pushes many short-lived
//! shards through a small set of workers. Each shard builds a [`crate::FactTable`],
//! a slice hierarchy, and thousands of [`crate::ExtentSet`] values — and then
//! throws them away. Reallocating those buffers per shard dominates allocator
//! time and inflates peak RSS; instead, finished buffers are *recycled* here
//! and handed back to the next shard that asks.
//!
//! Two pools are kept, matching the two buffer shapes the hot path uses:
//!
//! * **id buffers** (`Vec<u32>`) — sparse extent id lists, inverted-index
//!   rows, and per-entity property lists (`EntityId` and `PropertyId` are
//!   both `u32`);
//! * **block buffers** (`Vec<u64>`) — dense extent bitsets, covered-entity
//!   bitmaps, and packed per-entity fact counts.
//!
//! Ownership rules:
//!
//! * `take_*` transfers ownership to the caller; the buffer is logically
//!   fresh (cleared or zeroed) but keeps its previous capacity.
//! * `put_*` transfers ownership back. Callers must not retain any view of
//!   the buffer afterwards — it may be handed to another shard immediately.
//! * Buffers are pooled per **thread** first (no locking on the hot path)
//!   and drain into a process-global pool when a worker thread exits, so
//!   capacity survives the scoped thread pools that live only for one
//!   parallel round.
//!
//! The pools are bounded ([`MAX_VECS_PER_KIND`], [`MAX_POOLED_SETS`],
//! [`MAX_RETAINED_CAPACITY`]); oversized or surplus buffers are dropped so
//! the pool itself cannot become the memory hog it exists to prevent.

use std::cell::RefCell;
use std::sync::Mutex;

/// Pool traffic counters. A warm and a cold run over the same inputs must
/// report identical take/put balances per kind — the telemetry that caught
/// the missing `put_flags` on the cold-rebuild fallback path.
///
/// Take/put happen millions of times per run (once per node evaluation on
/// the hot paths), so the counts are batched in plain thread-local cells
/// and drained to the shared counters every [`FLUSH_EVERY`] events and at
/// thread exit: totals stay exact once worker threads retire, snapshots
/// stay monotone, and the enabled hot path is a TLS bump instead of an
/// atomic RMW.
mod metrics {
    crate::counter!(pub TAKE_IDS, "scratch.take.ids");
    crate::counter!(pub PUT_IDS, "scratch.put.ids");
    crate::counter!(pub TAKE_BLOCKS, "scratch.take.blocks");
    crate::counter!(pub PUT_BLOCKS, "scratch.put.blocks");
    crate::counter!(pub TAKE_FLAGS, "scratch.take.flags");
    crate::counter!(pub PUT_FLAGS, "scratch.put.flags");
}

const KIND_TAKE_IDS: usize = 0;
const KIND_PUT_IDS: usize = 1;
const KIND_TAKE_BLOCKS: usize = 2;
const KIND_PUT_BLOCKS: usize = 3;
const KIND_TAKE_FLAGS: usize = 4;
const KIND_PUT_FLAGS: usize = 5;
const NUM_KINDS: usize = 6;

static KIND_SINKS: [&crate::telemetry::Counter; NUM_KINDS] = [
    &metrics::TAKE_IDS,
    &metrics::PUT_IDS,
    &metrics::TAKE_BLOCKS,
    &metrics::PUT_BLOCKS,
    &metrics::TAKE_FLAGS,
    &metrics::PUT_FLAGS,
];

/// Batched events per thread before draining to the shared counters.
const FLUSH_EVERY: u64 = 1024;

#[derive(Default)]
struct Tally {
    counts: [std::cell::Cell<u64>; NUM_KINDS],
    pending: std::cell::Cell<u64>,
}

impl Tally {
    fn flush(&self) {
        for (kind, sink) in KIND_SINKS.iter().enumerate() {
            let n = self.counts[kind].take();
            if n > 0 {
                sink.add_always(n);
            }
        }
        self.pending.set(0);
    }
}

impl Drop for Tally {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TALLY: Tally = Tally::default();
}

#[inline]
fn tally(kind: usize) {
    if crate::telemetry::enabled() {
        tally_enabled(kind);
    }
}

#[cold]
#[inline(never)]
fn tally_enabled(kind: usize) {
    let _ = TALLY.try_with(|t| {
        t.counts[kind].set(t.counts[kind].get() + 1);
        let pending = t.pending.get() + 1;
        if pending >= FLUSH_EVERY {
            t.flush();
        } else {
            t.pending.set(pending);
        }
    });
}

/// Maximum buffers of one kind retained per pooled set.
pub const MAX_VECS_PER_KIND: usize = 32;

/// Maximum thread-local buffer sets parked in the global pool.
pub const MAX_POOLED_SETS: usize = 32;

/// Buffers with more capacity than this (in elements) are dropped on `put`
/// rather than pooled, so one giant shard cannot pin its high-water mark.
pub const MAX_RETAINED_CAPACITY: usize = 1 << 22;

#[derive(Default)]
struct Buffers {
    ids: Vec<Vec<u32>>,
    blocks: Vec<Vec<u64>>,
    flags: Vec<Vec<bool>>,
}

static POOL: Mutex<Vec<Buffers>> = Mutex::new(Vec::new());

struct LocalSlot(Option<Buffers>);

impl Drop for LocalSlot {
    fn drop(&mut self) {
        // Thread exit: park the buffers for the next worker generation.
        if let Some(bufs) = self.0.take() {
            if let Ok(mut pool) = POOL.lock() {
                if pool.len() < MAX_POOLED_SETS {
                    pool.push(bufs);
                }
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSlot> = const { RefCell::new(LocalSlot(None)) };
}

fn with_buffers<R>(f: impl FnOnce(&mut Buffers) -> R) -> R {
    let mut f = Some(f);
    LOCAL
        .try_with(|slot| {
            let mut slot = slot.borrow_mut();
            let bufs = slot.0.get_or_insert_with(|| {
                POOL.lock()
                    .ok()
                    .and_then(|mut pool| pool.pop())
                    .unwrap_or_default()
            });
            (f.take().expect("with_buffers closure runs once"))(&mut *bufs)
        })
        // TLS already torn down (thread exit path): fall back to fresh
        // allocations / dropping the returned buffer.
        .unwrap_or_else(|_| {
            (f.take().expect("TLS path did not consume the closure"))(&mut Buffers::default())
        })
}

/// Takes an id buffer (`Vec<u32>`), cleared but with recycled capacity.
pub fn take_ids() -> Vec<u32> {
    tally(KIND_TAKE_IDS);
    let mut v = with_buffers(|b| b.ids.pop()).unwrap_or_default();
    v.clear();
    v
}

/// Returns an id buffer to the pool.
pub fn put_ids(buf: Vec<u32>) {
    tally(KIND_PUT_IDS);
    if buf.capacity() == 0 || buf.capacity() > MAX_RETAINED_CAPACITY {
        return;
    }
    with_buffers(|b| {
        if b.ids.len() < MAX_VECS_PER_KIND {
            b.ids.push(buf);
        }
    });
}

/// Takes a zeroed block buffer (`Vec<u64>`) of exactly `len` words, with
/// recycled capacity.
pub fn take_blocks(len: usize) -> Vec<u64> {
    tally(KIND_TAKE_BLOCKS);
    let mut v = with_buffers(|b| b.blocks.pop()).unwrap_or_default();
    v.clear();
    v.resize(len, 0);
    v
}

/// Returns a block buffer to the pool.
pub fn put_blocks(buf: Vec<u64>) {
    tally(KIND_PUT_BLOCKS);
    if buf.capacity() == 0 || buf.capacity() > MAX_RETAINED_CAPACITY {
        return;
    }
    with_buffers(|b| {
        if b.blocks.len() < MAX_VECS_PER_KIND {
            b.blocks.push(buf);
        }
    });
}

/// Takes a `false`-filled flag buffer (`Vec<bool>`) of exactly `len`
/// entries, with recycled capacity. Flag buffers back the per-node marker
/// maps that are rebuilt on every hierarchy pass but sized by the whole
/// hierarchy (traversal coverage, warm-patch dirtiness), so pooling them
/// keeps those maps allocation-free across augmentation rounds.
pub fn take_flags(len: usize) -> Vec<bool> {
    tally(KIND_TAKE_FLAGS);
    let mut v = with_buffers(|b| b.flags.pop()).unwrap_or_default();
    v.clear();
    v.resize(len, false);
    v
}

/// Returns a flag buffer to the pool.
pub fn put_flags(buf: Vec<bool>) {
    tally(KIND_PUT_FLAGS);
    if buf.capacity() == 0 || buf.capacity() > MAX_RETAINED_CAPACITY {
        return;
    }
    with_buffers(|b| {
        if b.flags.len() < MAX_VECS_PER_KIND {
            b.flags.push(buf);
        }
    });
}

/// Runs `f` against a zeroed `words`-long bitmap borrowed from the pool.
///
/// The buffer is taken before `f` and returned after, so `f` may itself call
/// `take_*`/`put_*` freely (no reentrancy hazard).
pub fn with_bitmap<R>(words: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    let mut buf = take_blocks(words);
    let out = f(&mut buf);
    put_blocks(buf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_preserves_capacity() {
        let mut v = take_ids();
        v.extend(0..100u32);
        let cap = v.capacity();
        put_ids(v);
        // The pool is thread-local LIFO, so the very next take on this
        // thread must hand the same buffer back: cleared, capacity intact.
        let v2 = take_ids();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
    }

    #[test]
    fn blocks_come_back_zeroed() {
        let mut b = take_blocks(8);
        b.iter_mut().for_each(|w| *w = u64::MAX);
        put_blocks(b);
        let b2 = take_blocks(16);
        assert_eq!(b2.len(), 16);
        assert!(b2.iter().all(|&w| w == 0));
    }

    #[test]
    fn bitmap_is_zeroed_and_reentrant() {
        let sum = with_bitmap(4, |bits| {
            assert!(bits.iter().all(|&w| w == 0));
            bits[0] = 3;
            // Nested take while a bitmap is out must not panic.
            let inner = take_blocks(2);
            assert_eq!(inner.len(), 2);
            put_blocks(inner);
            bits[0]
        });
        assert_eq!(sum, 3);
    }

    #[test]
    fn flags_come_back_false() {
        let mut f = take_flags(4);
        f.iter_mut().for_each(|b| *b = true);
        put_flags(f);
        let f2 = take_flags(8);
        assert_eq!(f2.len(), 8);
        assert!(f2.iter().all(|&b| !b));
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let huge = Vec::with_capacity(MAX_RETAINED_CAPACITY + 1);
        put_ids(huge); // must simply drop, not panic or pool
        let zero_cap = Vec::new();
        put_blocks(zero_cap);
    }
}
