//! The extent engine: hybrid sparse/dense entity sets.
//!
//! Every profit evaluation in MIDAS reduces to set algebra over entity
//! extents (Definition 5): intersections while deriving slice extents from
//! the property inverted lists, unions while maintaining the `SLB` subtree
//! sets, and membership tests against the covered-entity map of Algorithm 1.
//! [`ExtentSet`] stores an extent either as a sorted `Vec<EntityId>`
//! (sparse) or as a `u64`-block bitset (dense), picking the representation
//! from the set's density relative to the source's entity universe.
//!
//! The crossover is the set's *density divisor*: a set is dense iff
//! `len · divisor ≥ universe` (and non-empty). At the default
//! [`DENSITY_DIVISOR`] of 32 the switch is memory-neutral or better — the
//! bitset's `universe/8` bytes never exceed the sparse form's `4·len` bytes
//! once `len ≥ universe/32` — while intersections and unions between dense
//! sets collapse to word-wise `AND`/`OR` plus popcounts, which beat the
//! sparse two-pointer merge down to densities of a few percent — the
//! operation hierarchy construction performs millions of times on large
//! sources. The divisor is *calibrated per fact table* from the observed
//! universe/extent-length distribution ([`calibrate_divisor`]): small
//! universes and top-heavy length distributions tolerate a larger divisor,
//! shifting more sets onto the word-parallel dense path at bounded memory
//! cost. The divisor only ever selects the representation — never the
//! contents — so calibrated and fixed-divisor runs are result-identical.
//!
//! The representation is a pure function of `(universe, divisor, contents)`;
//! equality compares contents, so `==` is set equality across both
//! representations and across divisors.
//!
//! Backing storage is [`Column`]: sparse id lists and dense blocks either
//! own their buffers or borrow zero-copy from an mmap'd snapshot, copying
//! on first mutation.

use crate::fact_table::EntityId;
use crate::scratch;
use midas_kb::Column;

/// Default density crossover: a set is stored dense iff
/// `len * divisor >= universe` and the set is non-empty.
pub const DENSITY_DIVISOR: u32 = 32;

/// Largest calibrated divisor (see [`calibrate_divisor`]).
pub const MAX_DENSITY_DIVISOR: u32 = 256;

/// Picks a density divisor for a fact table whose extents range over
/// `universe` entities and have the given lengths.
///
/// The walk starts at [`DENSITY_DIVISOR`] (the memory break-even point) and
/// doubles while the step stays cheap, up to a universe-dependent cap:
///
/// * universes of ≤ 2048 entities jump straight to
///   [`MAX_DENSITY_DIVISOR`] — their whole bitset is ≤ 256 bytes, a few
///   cache lines, so dense ops win at any density worth storing;
/// * otherwise a doubling is accepted while the bitset bytes of the extents
///   it *flips* to dense stay within 2× the sparse bytes they replace —
///   a bounded memory premium for the word-parallel fast path, judged
///   against the table's actual length distribution.
///
/// Deterministic in its inputs, so snapshots can persist the result and
/// rebuilds agree bit-for-bit.
pub fn calibrate_divisor(universe: u32, lens: &[u32]) -> u32 {
    if universe <= 2048 {
        return MAX_DENSITY_DIVISOR;
    }
    let cap = if universe <= 16_384 {
        128
    } else if universe <= 131_072 {
        64
    } else {
        return DENSITY_DIVISOR;
    };
    let dense_bytes = (universe as u64).div_ceil(64) * 8;
    let mut divisor = DENSITY_DIVISOR;
    while divisor < cap {
        let next = divisor * 2;
        let mut flips = 0u64;
        let mut sparse_bytes = 0u64;
        for &len in lens {
            if prefers_dense(universe, len, next) && !prefers_dense(universe, len, divisor) {
                flips += 1;
                sparse_bytes += 4 * u64::from(len);
            }
        }
        if flips * dense_bytes > 2 * sparse_bytes {
            break;
        }
        divisor = next;
    }
    divisor
}

/// Skew crossover for the sparse-sparse intersection: when one side is more
/// than `GALLOP_RATIO` times longer than the other, the linear two-pointer
/// merge degrades to a scan of the long side and galloping (exponential)
/// search wins — each probe of the short side costs `O(log gap)` instead of
/// `O(gap)`.
pub const GALLOP_RATIO: usize = 16;

/// A set of entities of one fact table, stored sparse or dense by density.
#[derive(Clone)]
pub struct ExtentSet {
    universe: u32,
    /// Density crossover for this set; [`DENSITY_DIVISOR`] by default,
    /// calibrated per fact table. Binary ops propagate the larger divisor.
    divisor: u32,
    repr: Repr,
}

/// Equality is *set* equality: divisor and representation are storage
/// choices, not part of the value.
impl PartialEq for ExtentSet {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe
            && self.len() == other.len()
            && match (&self.repr, &other.repr) {
                (Repr::Sparse(a), Repr::Sparse(b)) => a == b,
                (Repr::Dense { blocks: a, .. }, Repr::Dense { blocks: b, .. }) => a == b,
                _ => self.iter().eq(other.iter()),
            }
    }
}

impl Eq for ExtentSet {}

#[derive(Clone, PartialEq, Eq)]
enum Repr {
    /// Sorted, deduplicated entity ids.
    Sparse(Column<EntityId>),
    /// Bitset over `0..universe`; `len` caches the popcount.
    Dense { blocks: Column<u64>, len: u32 },
}

#[inline]
fn prefers_dense(universe: u32, len: u32, divisor: u32) -> bool {
    len > 0 && u64::from(len) * u64::from(divisor) >= u64::from(universe)
}

#[inline]
fn block_count(universe: u32) -> usize {
    (universe as usize).div_ceil(64)
}

impl ExtentSet {
    /// The empty set over a universe of `universe` entities.
    pub fn empty(universe: u32) -> Self {
        ExtentSet {
            universe,
            divisor: DENSITY_DIVISOR,
            repr: Repr::Sparse(Column::new()),
        }
    }

    /// The full set `{0, …, universe−1}`.
    pub fn full(universe: u32) -> Self {
        if universe == 0 {
            return Self::empty(0);
        }
        let mut blocks = vec![u64::MAX; block_count(universe)];
        let tail = universe % 64;
        if tail != 0 {
            *blocks.last_mut().expect("non-empty blocks") = (1u64 << tail) - 1;
        }
        debug_assert_eq!(kernels::count(&blocks), universe, "cached len invariant");
        ExtentSet {
            universe,
            divisor: DENSITY_DIVISOR,
            repr: Repr::Dense {
                blocks: blocks.into(),
                len: universe,
            },
        }
        .normalized()
    }

    /// Builds a set from a sorted, deduplicated id list with ids `< universe`.
    pub fn from_sorted(universe: u32, ids: Vec<EntityId>) -> Self {
        Self::from_sorted_with_divisor(universe, DENSITY_DIVISOR, ids)
    }

    /// [`Self::from_sorted`] with an explicit (calibrated) density divisor.
    pub fn from_sorted_with_divisor(universe: u32, divisor: u32, ids: Vec<EntityId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids sorted + distinct");
        debug_assert!(ids.last().is_none_or(|&e| e < universe), "ids in universe");
        debug_assert!(
            divisor >= DENSITY_DIVISOR,
            "calibration only raises the divisor"
        );
        ExtentSet {
            universe,
            divisor,
            repr: Repr::Sparse(ids.into()),
        }
        .normalized()
    }

    /// Builds a set from an arbitrary id list (sorted and deduplicated here).
    pub fn from_unsorted(universe: u32, mut ids: Vec<EntityId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self::from_sorted(universe, ids)
    }

    /// Reconstructs a sparse set from snapshot storage. The column must be
    /// sorted, deduplicated, in-universe, and *sparse-preferred* under
    /// `divisor` — snapshots persist the normalized representation, so the
    /// loader never needs to re-normalize (which would copy the column).
    pub(crate) fn from_raw_sparse(universe: u32, divisor: u32, ids: Column<EntityId>) -> Self {
        debug_assert!(!prefers_dense(universe, ids.len() as u32, divisor));
        ExtentSet {
            universe,
            divisor,
            repr: Repr::Sparse(ids),
        }
    }

    /// Reconstructs a dense set from snapshot storage (see
    /// [`Self::from_raw_sparse`] for the normalization contract).
    pub(crate) fn from_raw_dense(
        universe: u32,
        divisor: u32,
        blocks: Column<u64>,
        len: u32,
    ) -> Self {
        debug_assert_eq!(blocks.len(), block_count(universe));
        debug_assert_eq!(kernels::count(&blocks), len);
        debug_assert!(prefers_dense(universe, len, divisor));
        ExtentSet {
            universe,
            divisor,
            repr: Repr::Dense { blocks, len },
        }
    }

    /// The size of the entity universe this set ranges over.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// The density divisor steering this set's representation choice.
    pub fn divisor(&self) -> u32 {
        self.divisor
    }

    /// Re-targets the density divisor and flips the representation if the
    /// new crossover prefers the other one. Contents are untouched — the
    /// divisor only ever selects storage — so this is invisible to every
    /// observer except memory/speed profiles. Used when a fact table
    /// re-calibrates after augmentation rounds grow the KB.
    pub(crate) fn set_divisor(&mut self, divisor: u32) {
        debug_assert!(
            divisor >= DENSITY_DIVISOR,
            "calibration only raises the divisor"
        );
        if self.divisor != divisor {
            self.divisor = divisor;
            self.renormalize();
        }
    }

    /// Number of entities in the set.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.len(),
            Repr::Dense { len, .. } => *len as usize,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the set currently uses the dense (bitset) representation.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Membership test.
    pub fn contains(&self, e: EntityId) -> bool {
        match &self.repr {
            Repr::Sparse(v) => v.binary_search(&e).is_ok(),
            Repr::Dense { blocks, .. } => {
                e < self.universe && blocks[(e / 64) as usize] & (1u64 << (e % 64)) != 0
            }
        }
    }

    /// Iterates the entities in ascending order (by value).
    pub fn iter(&self) -> ExtentIter<'_> {
        ExtentIter {
            kind: match &self.repr {
                Repr::Sparse(v) => IterKind::Sparse(v.iter()),
                Repr::Dense { blocks, .. } => IterKind::Dense {
                    blocks,
                    next_block: 0,
                    word: 0,
                    base: 0,
                },
            },
        }
    }

    /// The sorted id slice when the set is stored sparse, `None` when dense.
    /// Together with [`Self::dense_blocks`] this lets hot consumers (the
    /// profit summations) walk the raw representation without the iterator's
    /// per-element dispatch.
    pub fn sparse_ids(&self) -> Option<&[EntityId]> {
        match &self.repr {
            Repr::Sparse(v) => Some(v.as_slice()),
            Repr::Dense { .. } => None,
        }
    }

    /// The `u64` bit blocks when the set is stored dense, `None` when
    /// sparse. Bits at positions `>= universe` are always zero.
    pub fn dense_blocks(&self) -> Option<&[u64]> {
        match &self.repr {
            Repr::Sparse(_) => None,
            Repr::Dense { blocks, .. } => Some(blocks.as_slice()),
        }
    }

    /// The sorted id list of the set.
    pub fn to_vec(&self) -> Vec<EntityId> {
        match &self.repr {
            Repr::Sparse(v) => v.as_slice().to_vec(),
            Repr::Dense { .. } => self.iter().collect(),
        }
    }

    /// Whether either backing buffer still borrows from a snapshot mapping.
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            Repr::Sparse(v) => v.is_mapped(),
            Repr::Dense { blocks, .. } => blocks.is_mapped(),
        }
    }

    /// Whether every member of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &ExtentSet) -> bool {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Dense { blocks: a, .. }, Repr::Dense { blocks: b, .. }) => {
                kernels::is_subset(a, b)
            }
            _ => self.iter().all(|e| other.contains(e)),
        }
    }

    /// `self ∩ other` as a new set.
    pub fn intersect(&self, other: &ExtentSet) -> ExtentSet {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        let universe = self.universe;
        let divisor = self.divisor.max(other.divisor);
        let repr = match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => Repr::Sparse(intersect_vec(a, b).into()),
            (Repr::Dense { blocks: a, .. }, Repr::Dense { blocks: b, .. }) => {
                let mut blocks = scratch::take_blocks(a.len());
                let len = kernels::and_into(&mut blocks, a, b);
                blocks_or_empty(&mut blocks, len);
                Repr::Dense {
                    blocks: blocks.into(),
                    len,
                }
            }
            (Repr::Sparse(a), Repr::Dense { .. }) => {
                let mut out = scratch::take_ids();
                out.extend(a.iter().copied().filter(|&e| other.contains(e)));
                Repr::Sparse(out.into())
            }
            (Repr::Dense { .. }, Repr::Sparse(b)) => {
                let mut out = scratch::take_ids();
                out.extend(b.iter().copied().filter(|&e| self.contains(e)));
                Repr::Sparse(out.into())
            }
        };
        ExtentSet {
            universe,
            divisor,
            repr,
        }
        .normalized()
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &ExtentSet) -> ExtentSet {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        let universe = self.universe;
        let divisor = self.divisor.max(other.divisor);
        let repr = match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => Repr::Sparse(union_vec(a, b).into()),
            (Repr::Dense { blocks: a, .. }, Repr::Dense { blocks: b, .. }) => {
                let mut blocks = scratch::take_blocks(a.len());
                let len = kernels::or_into(&mut blocks, a, b);
                Repr::Dense {
                    blocks: blocks.into(),
                    len,
                }
            }
            (Repr::Sparse(a), Repr::Dense { blocks, len }) => dense_with(blocks, *len, a),
            (Repr::Dense { blocks, len }, Repr::Sparse(b)) => dense_with(blocks, *len, b),
        };
        ExtentSet {
            universe,
            divisor,
            repr,
        }
        .normalized()
    }

    /// In-place `self ∩= other`; avoids allocation when both sides are dense.
    pub fn intersect_with(&mut self, other: &ExtentSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        self.divisor = self.divisor.max(other.divisor);
        match (&mut self.repr, &other.repr) {
            (Repr::Dense { blocks, len }, Repr::Dense { blocks: b, .. }) => {
                *len = kernels::and_assign(blocks.make_mut(), b);
            }
            (Repr::Sparse(a), Repr::Sparse(b)) if skewed(a.len(), b.len()) => {
                // Pathological skew: gallop into a pooled buffer and swap it
                // in — still allocation-free in the steady state.
                let mut out = scratch::take_ids();
                gallop_intersect_into(a, b, &mut out);
                if let Some(old) = std::mem::replace(a, out.into()).take_owned() {
                    scratch::put_ids(old);
                }
            }
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                // In-place two-pointer merge — `retain` + `binary_search`
                // would cost O(|a|·log|b|) and dominates `extent_of`.
                let a = a.make_mut();
                let mut j = 0;
                let mut k = 0;
                for i in 0..a.len() {
                    let e = a[i];
                    while j < b.len() && b[j] < e {
                        j += 1;
                    }
                    if j < b.len() && b[j] == e {
                        a[k] = e;
                        k += 1;
                        j += 1;
                    }
                }
                a.truncate(k);
            }
            (Repr::Sparse(a), Repr::Dense { .. }) => a.make_mut().retain(|&e| other.contains(e)),
            _ => {
                *self = self.intersect(other);
                return;
            }
        }
        self.renormalize();
    }

    /// In-place `self ∪= other`; avoids allocation when `self` is dense.
    pub fn union_with(&mut self, other: &ExtentSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        self.divisor = self.divisor.max(other.divisor);
        match (&mut self.repr, &other.repr) {
            (Repr::Dense { blocks, len }, Repr::Dense { blocks: b, .. }) => {
                *len = kernels::or_assign(blocks.make_mut(), b);
            }
            (Repr::Dense { blocks, len }, Repr::Sparse(b)) => {
                let blocks = blocks.make_mut();
                for &e in b {
                    let w = &mut blocks[(e / 64) as usize];
                    let bit = 1u64 << (e % 64);
                    if *w & bit == 0 {
                        *w |= bit;
                        *len += 1;
                    }
                }
            }
            _ => {
                *self = self.union(other);
                return;
            }
        }
        self.renormalize();
    }

    /// Sets the bit of every member in `bits` (a `u64`-block bitmap over the
    /// same universe). Used by the profit accumulator's covered map.
    pub fn mark_into(&self, bits: &mut [u64]) {
        match &self.repr {
            Repr::Sparse(v) => {
                for &e in v {
                    bits[(e / 64) as usize] |= 1u64 << (e % 64);
                }
            }
            Repr::Dense { blocks, .. } => {
                for (x, y) in bits.iter_mut().zip(blocks) {
                    *x |= y;
                }
            }
        }
    }

    /// Calls `f` for every member of `self` whose bit is *not* set in
    /// `bits` — the uncovered entities of a candidate slice. For dense sets
    /// this skips fully-covered words without touching their entities.
    pub fn for_each_missing_from(&self, bits: &[u64], mut f: impl FnMut(EntityId)) {
        match &self.repr {
            Repr::Sparse(v) => {
                for &e in v {
                    if bits[(e / 64) as usize] & (1u64 << (e % 64)) == 0 {
                        f(e);
                    }
                }
            }
            Repr::Dense { blocks, .. } => {
                for (i, (&x, &y)) in blocks.iter().zip(bits).enumerate() {
                    let mut word = x & !y;
                    let base = (i as u32) * 64;
                    while word != 0 {
                        f(base + word.trailing_zeros());
                        word &= word - 1;
                    }
                }
            }
        }
    }

    /// Converts to the density-preferred representation (consuming form).
    fn normalized(mut self) -> Self {
        self.renormalize();
        self
    }

    /// Converts to the density-preferred representation in place.
    fn renormalize(&mut self) {
        let len = self.len() as u32;
        let want_dense = prefers_dense(self.universe, len, self.divisor);
        match (&self.repr, want_dense) {
            (Repr::Sparse(_), true) => {
                let Repr::Sparse(mut v) =
                    std::mem::replace(&mut self.repr, Repr::Sparse(Column::new()))
                else {
                    unreachable!()
                };
                let mut blocks = scratch::take_blocks(block_count(self.universe));
                for &e in &v {
                    blocks[(e / 64) as usize] |= 1u64 << (e % 64);
                }
                if let Some(old) = v.take_owned() {
                    scratch::put_ids(old);
                }
                self.repr = Repr::Dense {
                    blocks: blocks.into(),
                    len,
                };
            }
            (Repr::Dense { .. }, false) => {
                let mut ids = scratch::take_ids();
                ids.extend(self.iter());
                let Repr::Dense { mut blocks, .. } =
                    std::mem::replace(&mut self.repr, Repr::Sparse(ids.into()))
                else {
                    unreachable!()
                };
                if let Some(old) = blocks.take_owned() {
                    scratch::put_blocks(old);
                }
            }
            _ => {}
        }
    }

    /// Consumes the set, returning its backing buffer to the scratch pool so
    /// the next shard can reuse the capacity. Purely an optimisation —
    /// dropping the set instead is always correct; mapped (snapshot-backed)
    /// buffers belong to the mapping and are simply dropped.
    pub fn recycle(self) {
        match self.repr {
            Repr::Sparse(mut v) => {
                if let Some(old) = v.take_owned() {
                    scratch::put_ids(old);
                }
            }
            Repr::Dense { mut blocks, .. } => {
                if let Some(old) = blocks.take_owned() {
                    scratch::put_blocks(old);
                }
            }
        }
    }
}

/// Keeps the empty dense case allocation-free on the normalize path.
#[inline]
fn blocks_or_empty(blocks: &mut Vec<u64>, len: u32) {
    if len == 0 {
        blocks.clear();
    }
}

pub mod kernels;

/// Marks every member of every set into `bits` (a `u64`-block bitmap over
/// the sets' shared universe) — the batched multi-way form of
/// [`ExtentSet::mark_into`]. Dense sets are grouped and fed to the
/// dispatched [`kernels::union_into`] kernel in bounded batches, so the
/// bitmap is read and written once per group instead of once per set;
/// sparse sets fall back to per-entity bit sets.
pub fn union_mark_into(sets: &[&ExtentSet], bits: &mut [u64]) {
    /// Dense sources per kernel call: enough that the accumulator
    /// read/write amortises across the group, small enough to sit on the
    /// stack and keep source pointers in registers.
    const GROUP: usize = 8;
    let mut group: [&[u64]; GROUP] = [&[]; GROUP];
    let mut n = 0usize;
    for set in sets {
        match &set.repr {
            Repr::Sparse(v) => {
                for &e in v {
                    bits[(e / 64) as usize] |= 1u64 << (e % 64);
                }
            }
            Repr::Dense { blocks, .. } => {
                debug_assert_eq!(blocks.len(), bits.len(), "universe mismatch");
                group[n] = blocks;
                n += 1;
                if n == GROUP {
                    kernels::union_into(bits, &group);
                    n = 0;
                }
            }
        }
    }
    if n > 0 {
        kernels::union_into(bits, &group[..n]);
    }
}

/// Dense blocks plus a sparse list, as a dense repr.
fn dense_with(blocks: &Column<u64>, len: u32, extra: &Column<EntityId>) -> Repr {
    let mut out = scratch::take_blocks(blocks.len());
    out.copy_from_slice(blocks);
    let mut blocks = out;
    let mut len = len;
    for &e in extra {
        let w = &mut blocks[(e / 64) as usize];
        let bit = 1u64 << (e % 64);
        if *w & bit == 0 {
            *w |= bit;
            len += 1;
        }
    }
    Repr::Dense {
        blocks: blocks.into(),
        len,
    }
}

/// Whether a sparse-sparse pair is skewed enough for galloping to beat the
/// linear merge.
#[inline]
fn skewed(a: usize, b: usize) -> bool {
    a.saturating_mul(GALLOP_RATIO) < b || b.saturating_mul(GALLOP_RATIO) < a
}

fn intersect_vec(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    if skewed(a.len(), b.len()) {
        let mut out = scratch::take_ids();
        gallop_intersect_into(a, b, &mut out);
        return out;
    }
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Galloping (exponential-search) intersection of two sorted id lists with
/// pathological length skew. Walks the shorter list element-wise and locates
/// each id in the longer one by doubling probes from a moving base, then a
/// binary search inside the bracketed window — `O(s · log(l/s))` instead of
/// the merge's `O(s + l)`.
fn gallop_intersect_into(a: &[EntityId], b: &[EntityId], out: &mut Vec<EntityId>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    for &e in small {
        if base >= large.len() {
            break;
        }
        if large[base] > e {
            continue;
        }
        // Double the probe distance until we bracket `e` …
        let mut offset = 1usize;
        while base + offset < large.len() && large[base + offset] < e {
            offset <<= 1;
        }
        // … then binary-search the last un-probed window. `window_start`
        // holds a value ≤ e (the previous probe, or `base` itself).
        let window_start = base + offset / 2;
        let window_end = (base + offset).min(large.len());
        let idx = window_start + large[window_start..window_end].partition_point(|&x| x < e);
        if idx < large.len() && large[idx] == e {
            out.push(e);
            base = idx + 1;
        } else {
            base = idx;
        }
    }
}

fn union_vec(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
    let mut out = scratch::take_ids();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl std::fmt::Debug for ExtentSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ExtentSet[{}/{} {}]{:?}",
            self.len(),
            self.universe,
            if self.is_dense() { "dense" } else { "sparse" },
            self.to_vec()
        )
    }
}

/// Ascending iterator over an [`ExtentSet`], yielding ids by value.
pub struct ExtentIter<'a> {
    kind: IterKind<'a>,
}

enum IterKind<'a> {
    Sparse(std::slice::Iter<'a, EntityId>),
    Dense {
        blocks: &'a [u64],
        next_block: usize,
        word: u64,
        base: u32,
    },
}

impl Iterator for ExtentIter<'_> {
    type Item = EntityId;

    fn next(&mut self) -> Option<EntityId> {
        match &mut self.kind {
            IterKind::Sparse(it) => it.next().copied(),
            IterKind::Dense {
                blocks,
                next_block,
                word,
                base,
            } => loop {
                if *word != 0 {
                    let e = *base + word.trailing_zeros();
                    *word &= *word - 1;
                    return Some(e);
                }
                if *next_block >= blocks.len() {
                    return None;
                }
                *word = blocks[*next_block];
                *base = (*next_block as u32) * 64;
                *next_block += 1;
            },
        }
    }
}

impl<'a> IntoIterator for &'a ExtentSet {
    type Item = EntityId;
    type IntoIter = ExtentIter<'a>;

    fn into_iter(self) -> ExtentIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: u32, ids: &[EntityId]) -> ExtentSet {
        ExtentSet::from_sorted(universe, ids.to_vec())
    }

    #[test]
    fn representation_follows_density() {
        // 3 of 1000 — sparse; 100 of 1000 — dense (100·32 ≥ 1000).
        assert!(!set(1000, &[1, 500, 999]).is_dense());
        let dense = ExtentSet::from_sorted(1000, (0..100).collect());
        assert!(dense.is_dense());
        // Exactly at the boundary: len·32 == universe is dense.
        let boundary = ExtentSet::from_sorted(3200, (0..100).collect());
        assert!(boundary.is_dense());
        let below = ExtentSet::from_sorted(3201, (0..100).collect());
        assert!(!below.is_dense());
        // Empty is always sparse; full is always dense (universe > 0).
        assert!(!ExtentSet::empty(1000).is_dense());
        assert!(ExtentSet::full(1000).is_dense());
    }

    #[test]
    fn equality_is_set_equality_across_the_boundary() {
        // The same contents always normalize to the same repr.
        let a = ExtentSet::from_sorted(160, (0..10).collect());
        let b = ExtentSet::from_unsorted(160, (0..10).rev().collect());
        assert_eq!(a, b);
        assert_eq!(a.is_dense(), b.is_dense());
    }

    #[test]
    fn full_and_empty() {
        let f = ExtentSet::full(130);
        assert_eq!(f.len(), 130);
        assert_eq!(f.iter().collect::<Vec<_>>(), (0..130).collect::<Vec<_>>());
        assert!(f.contains(129));
        assert!(!f.contains(130));
        let e = ExtentSet::empty(130);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        assert!(ExtentSet::full(0).is_empty());
    }

    #[test]
    fn contains_and_iter_agree_in_both_reprs() {
        for ids in [vec![0, 3, 64, 65, 127], (0..90).collect::<Vec<_>>()] {
            let s = ExtentSet::from_sorted(128, ids.clone());
            assert_eq!(s.iter().collect::<Vec<_>>(), ids);
            assert_eq!(s.to_vec(), ids);
            for e in 0..128 {
                assert_eq!(s.contains(e), ids.contains(&e), "entity {e}");
            }
        }
    }

    #[test]
    fn intersect_union_across_all_repr_pairs() {
        let u = 256;
        let sparse_a = set(u, &[1, 5, 100, 200]);
        let sparse_b = set(u, &[5, 100, 201]);
        let dense_a = ExtentSet::from_sorted(u, (0..128).collect());
        let dense_b = ExtentSet::from_sorted(u, (64..192).collect());
        for (a, b, inter, uni) in [
            (
                &sparse_a,
                &sparse_b,
                vec![5, 100],
                vec![1, 5, 100, 200, 201],
            ),
            (&dense_a, &dense_b, (64..128).collect(), (0..192).collect()),
            (&sparse_a, &dense_b, vec![100], {
                let mut v: Vec<u32> = (64..192).collect();
                v.splice(0..0, [1, 5]);
                v.push(200);
                v
            }),
        ] {
            assert_eq!(a.intersect(b).to_vec(), inter);
            assert_eq!(b.intersect(a).to_vec(), inter);
            assert_eq!(a.union(b).to_vec(), uni);
            assert_eq!(b.union(a).to_vec(), uni);
        }
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let u = 512;
        let cases = [
            set(u, &[1, 2, 3, 400]),
            ExtentSet::from_sorted(u, (0..256).collect()),
            ExtentSet::from_sorted(u, (100..300).collect()),
            ExtentSet::empty(u),
        ];
        for a in &cases {
            for b in &cases {
                let mut x = a.clone();
                x.intersect_with(b);
                assert_eq!(x, a.intersect(b));
                let mut y = a.clone();
                y.union_with(b);
                assert_eq!(y, a.union(b));
            }
        }
    }

    #[test]
    fn mark_and_missing() {
        let u = 200;
        let s = ExtentSet::from_sorted(u, (0..40).collect());
        let mut bits = vec![0u64; 4];
        set(u, &[0, 1, 2, 3, 39, 150]).mark_into(&mut bits);
        let mut missing = Vec::new();
        s.for_each_missing_from(&bits, |e| missing.push(e));
        assert_eq!(missing, (4..39).collect::<Vec<_>>());
        s.mark_into(&mut bits);
        let mut none = Vec::new();
        s.for_each_missing_from(&bits, |e| none.push(e));
        assert!(none.is_empty());
    }

    #[test]
    fn subset_checks() {
        let u = 300;
        let small = set(u, &[10, 20]);
        let big = ExtentSet::from_sorted(u, (0..100).collect());
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(ExtentSet::empty(u).is_subset_of(&small));
        assert!(big.is_subset_of(&ExtentSet::full(u)));
    }

    /// Reference intersection by membership filtering.
    fn naive_intersect(a: &[EntityId], b: &[EntityId]) -> Vec<EntityId> {
        a.iter().copied().filter(|e| b.contains(e)).collect()
    }

    #[test]
    fn galloping_matches_merge_on_pathological_skew() {
        // Long side far over GALLOP_RATIO× the short side; universe huge so
        // both stay sparse and the gallop path is actually exercised.
        let u = 4_000_000;
        let large: Vec<EntityId> = (0..100_000).map(|i| i * 3).collect();
        for small in [
            vec![],                               // empty short side
            vec![0],                              // first element
            vec![299_997],                        // last element
            vec![299_999],                        // past the end, absent
            vec![1, 2, 4, 5],                     // all absent, clustered at front
            vec![0, 3, 150_000, 299_997],         // hits spread over the whole range
            (0..64).map(|i| i * 4_001).collect(), // large gaps force deep gallops
            (250_000..250_064).collect(),         // dense cluster far from base
        ] {
            let s = ExtentSet::from_sorted(u, small.clone());
            let l = ExtentSet::from_sorted(u, large.clone());
            assert!(!s.is_dense() && !l.is_dense());
            let expect = naive_intersect(&small, &large);
            assert_eq!(s.intersect(&l).to_vec(), expect, "small={small:?}");
            assert_eq!(l.intersect(&s).to_vec(), expect, "flipped small={small:?}");
            let mut in_place = s.clone();
            in_place.intersect_with(&l);
            assert_eq!(in_place.to_vec(), expect, "in-place small={small:?}");
            let mut flipped = l.clone();
            flipped.intersect_with(&s);
            assert_eq!(flipped.to_vec(), expect, "in-place flipped small={small:?}");
        }
    }

    #[test]
    fn gallop_crossover_boundary_is_consistent() {
        // Just below and just above the GALLOP_RATIO crossover must agree
        // with the naive reference — the heuristic may change the algorithm,
        // never the result.
        let u = 4_000_000;
        for short_len in [7usize, 8, 9] {
            let small: Vec<EntityId> = (0..short_len as u32).map(|i| i * 17_000).collect();
            for factor in [GALLOP_RATIO - 1, GALLOP_RATIO, GALLOP_RATIO + 1] {
                let large: Vec<EntityId> = (0..(short_len * factor) as u32)
                    .map(|i| i * 1_000)
                    .collect();
                let s = ExtentSet::from_sorted(u, small.clone());
                let l = ExtentSet::from_sorted(u, large.clone());
                assert!(!s.is_dense() && !l.is_dense());
                assert_eq!(
                    s.intersect(&l).to_vec(),
                    naive_intersect(&small, &large),
                    "short_len={short_len} factor={factor}"
                );
            }
        }
    }

    #[test]
    fn gallop_helper_direct_cases() {
        let large: Vec<EntityId> = (0..1000).map(|i| i * 2).collect(); // evens < 2000
        let mut out = Vec::new();
        gallop_intersect_into(&[1, 3, 5], &large, &mut out);
        assert!(out.is_empty(), "odd probes hit nothing");
        out.clear();
        gallop_intersect_into(&[0, 2, 1998, 5000], &large, &mut out);
        assert_eq!(out, vec![0, 2, 1998]);
        out.clear();
        // Long-then-short argument order takes the same path.
        gallop_intersect_into(&large, &[1998], &mut out);
        assert_eq!(out, vec![1998]);
    }

    #[test]
    fn chunked_kernels_match_reference_across_widths() {
        // Universes straddling the 4-word chunk boundary: 3..=9 words covers
        // full chunks, the empty remainder, and 1–3 word remainders.
        for words in 3usize..=9 {
            let u = (words * 64) as u32;
            let a_ids: Vec<EntityId> = (0..u).filter(|e| e % 3 == 0).collect();
            let b_ids: Vec<EntityId> = (0..u).filter(|e| e % 5 != 0).collect();
            let a = ExtentSet::from_sorted(u, a_ids.clone());
            let b = ExtentSet::from_sorted(u, b_ids.clone());
            assert!(a.is_dense() && b.is_dense(), "u={u}");
            let inter: Vec<EntityId> = naive_intersect(&a_ids, &b_ids);
            let mut uni: Vec<EntityId> = a_ids.iter().chain(&b_ids).copied().collect();
            uni.sort_unstable();
            uni.dedup();
            assert_eq!(a.intersect(&b).to_vec(), inter, "u={u}");
            assert_eq!(a.union(&b).to_vec(), uni, "u={u}");
            let mut x = a.clone();
            x.intersect_with(&b);
            assert_eq!(x.to_vec(), inter, "u={u}");
            let mut y = a.clone();
            y.union_with(&b);
            assert_eq!(y.to_vec(), uni, "u={u}");
            assert!(a.intersect(&b).is_subset_of(&a));
            assert!(a.is_subset_of(&a.union(&b)));
            assert!(!a.is_subset_of(&b), "a has multiples of 15 that b lacks");
        }
    }

    #[test]
    fn recycle_roundtrip_keeps_sets_correct() {
        // Recycling returns buffers to the pool; later sets built from the
        // pool must be unaffected by the old contents.
        let u = 10_000;
        ExtentSet::from_sorted(u, (0..5000).collect()).recycle();
        ExtentSet::from_sorted(u, vec![1, 2, 3]).recycle();
        let fresh = ExtentSet::from_sorted(u, (0..1000).map(|i| i * 10).collect());
        assert_eq!(fresh.len(), 1000);
        assert_eq!(
            fresh.to_vec(),
            (0..1000).map(|i| i * 10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn calibrated_divisor_is_deterministic_and_bounded() {
        // Tiny universes densify aggressively regardless of distribution.
        assert_eq!(calibrate_divisor(100, &[1, 2, 3]), MAX_DENSITY_DIVISOR);
        assert_eq!(calibrate_divisor(2048, &[]), MAX_DENSITY_DIVISOR);
        // Huge universes stay at the memory break-even default.
        assert_eq!(calibrate_divisor(1_000_000, &[10, 5000]), DENSITY_DIVISOR);
        // Mid-size universes: top-heavy distributions (lengths just under
        // the current crossover) accept the doubling; bottom-heavy ones
        // (mass just over universe/next) stop at the memory gate.
        let u = 10_000;
        let top_heavy: Vec<u32> = vec![u / 33; 64];
        let d = calibrate_divisor(u, &top_heavy);
        assert!(d > DENSITY_DIVISOR, "top-heavy distribution densifies");
        assert!(d <= 128, "capped by universe size");
        // Lengths just above universe/128 flip at the 64→128 doubling and
        // cost ~4× their sparse bytes as bitsets — the memory gate refuses.
        let bottom_heavy: Vec<u32> = vec![u / 128 + 2; 64];
        assert_eq!(calibrate_divisor(u, &bottom_heavy), 64);
        // Determinism: same inputs, same answer.
        assert_eq!(calibrate_divisor(u, &top_heavy), d);
    }

    #[test]
    fn calibrated_divisor_changes_repr_but_never_contents() {
        // Equivalence against the fixed divisor: for a sweep of densities,
        // the calibrated set has identical contents and identical results
        // under every operation, even where the representation differs.
        let u = 2000; // calibrates to MAX_DENSITY_DIVISOR
        let d = calibrate_divisor(u, &[]);
        assert_eq!(d, MAX_DENSITY_DIVISOR);
        let other = ExtentSet::from_sorted(u, (0..u).filter(|e| e % 7 == 0).collect());
        for step in [1u32, 9, 40, 100, 300] {
            let ids: Vec<EntityId> = (0..u).step_by(step as usize).collect();
            let fixed = ExtentSet::from_sorted(u, ids.clone());
            let calibrated = ExtentSet::from_sorted_with_divisor(u, d, ids.clone());
            assert_eq!(calibrated.divisor(), d);
            assert_eq!(fixed, calibrated, "set equality across divisors");
            assert_eq!(fixed.to_vec(), calibrated.to_vec());
            if prefers_dense(u, fixed.len() as u32, d)
                && !prefers_dense(u, fixed.len() as u32, DENSITY_DIVISOR)
            {
                assert!(calibrated.is_dense() && !fixed.is_dense());
            }
            assert_eq!(
                fixed.intersect(&other).to_vec(),
                calibrated.intersect(&other).to_vec(),
                "step={step}"
            );
            assert_eq!(
                fixed.union(&other).to_vec(),
                calibrated.union(&other).to_vec(),
                "step={step}"
            );
            let mut a = fixed.clone();
            a.intersect_with(&other);
            let mut b = calibrated.clone();
            b.intersect_with(&other);
            assert_eq!(a.to_vec(), b.to_vec());
            let mut a = fixed.clone();
            a.union_with(&other);
            let mut b = calibrated.clone();
            b.union_with(&other);
            assert_eq!(a.to_vec(), b.to_vec());
            assert_eq!(fixed.is_subset_of(&other), calibrated.is_subset_of(&other));
        }
    }

    #[test]
    fn binary_ops_propagate_the_larger_divisor() {
        let u = 2000;
        let a = ExtentSet::from_sorted_with_divisor(u, 256, vec![1, 2, 3]);
        let b = ExtentSet::from_sorted(u, vec![2, 3, 4]);
        assert_eq!(a.intersect(&b).divisor(), 256);
        assert_eq!(b.union(&a).divisor(), 256);
        let mut c = b.clone();
        c.intersect_with(&a);
        assert_eq!(c.divisor(), 256);
    }

    #[test]
    fn debug_is_readable() {
        let s = set(100, &[1, 2]);
        let d = format!("{s:?}");
        assert!(d.contains("2/100"));
        assert!(d.contains("sparse"));
    }
}
