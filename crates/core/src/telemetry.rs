//! In-process telemetry: sharded counters, log₂ histograms, span timers,
//! and per-run JSON snapshots.
//!
//! Every instrumented subsystem (the framework's round phases, the isolated
//! worker pool, hierarchy construction, the extent kernels, the scratch
//! pools, the CLI's snapshot cache and checkpoints) records into metrics
//! registered in one process-global [`MetricsRegistry`]. The layer is
//! always compiled and near-zero-overhead when disabled:
//!
//! * a **[`Counter`]** is a bank of cache-line-padded relaxed `AtomicU64`
//!   shards; a thread increments the shard assigned to it on first use, so
//!   hot paths never contend on a shared line. The shards are folded into
//!   one monotone total only at snapshot time.
//! * a **[`Histogram`]** buckets samples by `log₂(value)` (64 buckets of
//!   relaxed atomics, plus count and sum), giving constant-space duration
//!   and size distributions.
//! * a **[`SpanGuard`]** (from [`span`]) times a region RAII-style into a
//!   histogram and — when `MIDAS_TRACE=spans[:PATH]` is set — streams one
//!   JSONL event per span (name, start/end ns, thread, parent span) for
//!   flame-style inspection.
//!
//! Metrics are `static`s declared with [`counter!`] / [`histogram!`] and
//! register themselves into the global registry on first touch — no
//! life-before-main tricks, no inventory crate, no allocation on the hot
//! path. [`snapshot`] folds every registered metric into a [`Snapshot`],
//! and [`Snapshot::to_json`] renders the stable, versioned document that
//! `--metrics-json` writes and `scripts/metrics_compare.py` diffs.
//!
//! **Gating.** Counters and histograms record only while the layer is
//! enabled ([`enabled`]): one relaxed atomic load guards every record call.
//! Enablement comes from the CLI flags (`--metrics-json`,
//! `--verbose-stats`), from `MIDAS_TRACE` / `MIDAS_TELEMETRY=1` in the
//! environment, or programmatically via [`enable`]. Span *tracing* is
//! additionally gated on the `MIDAS_TRACE` sink so the JSONL stream never
//! surprises a run that only asked for counters.
//!
//! **Clock.** Span timestamps come from [`clock_ns`], a monotonic
//! nanosecond clock anchored at first use. Under `MIDAS_FIXED_TIMING`
//! (the CLI's deterministic-output switch) the clock reads zero, so traces
//! and duration histograms are byte-stable and never leak wall time into
//! output that tests compare.
//!
//! Telemetry must never perturb results: nothing here influences control
//! flow, and the bit-identity suites re-run with tracing active to prove
//! it (`tests/streaming_equivalence.rs`, `tests/incremental_equivalence.rs`).

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Version tag of the JSON snapshot document. Bump only on breaking shape
/// changes; adding metrics is not a breaking change (consumers must ignore
/// unknown names).
pub const SCHEMA: &str = "midas.metrics/v1";

/// Number of counter shards. A small power of two: enough to keep worker
/// threads on distinct cache lines, small enough that folding is free.
pub const SHARDS: usize = 16;

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether metric recording is on. The hot-path guard: one relaxed load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => resolve_state(),
    }
}

#[cold]
fn resolve_state() -> bool {
    let on = std::env::var_os("MIDAS_TRACE").is_some()
        || std::env::var_os("MIDAS_TELEMETRY").is_some_and(|v| v != "0" && !v.is_empty());
    // Racing resolvers agree (the environment is stable), so a plain store
    // is fine.
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Relaxed);
    on
}

/// Turns metric recording on for the rest of the process (used by the CLI
/// when `--metrics-json` / `--verbose-stats` is passed, and by tests).
pub fn enable() {
    STATE.store(STATE_ON, Relaxed);
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Option<Instant>> = OnceLock::new();

/// Monotonic nanoseconds since the telemetry epoch (first use), or `0`
/// always when `MIDAS_FIXED_TIMING` is set so traced output stays
/// byte-stable across runs.
pub fn clock_ns() -> u64 {
    match EPOCH.get_or_init(|| {
        if std::env::var_os("MIDAS_FIXED_TIMING").is_some() {
            None
        } else {
            Some(Instant::now())
        }
    }) {
        Some(epoch) => epoch.elapsed().as_nanos() as u64,
        None => 0,
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A reference to one registered metric.
enum MetricRef {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
}

/// The process-global metric registry: every [`Counter`] and [`Histogram`]
/// adds itself here on first touch, and [`snapshot`] folds the lot.
pub struct MetricsRegistry {
    metrics: Mutex<Vec<MetricRef>>,
}

impl MetricsRegistry {
    const fn new() -> Self {
        MetricsRegistry {
            metrics: Mutex::new(Vec::new()),
        }
    }
}

static REGISTRY: MetricsRegistry = MetricsRegistry::new();

/// The global registry handle.
pub fn registry() -> &'static MetricsRegistry {
    &REGISTRY
}

fn lock_registry() -> std::sync::MutexGuard<'static, Vec<MetricRef>> {
    REGISTRY
        .metrics
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// One cache line per shard so two worker threads never share one.
#[repr(align(64))]
struct Padded(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)] // array-repeat seed
const PADDED_ZERO: Padded = Padded(AtomicU64::new(0));

/// Index of this thread's counter shard, assigned round-robin on first use.
#[inline]
fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Relaxed) % SHARDS;
            s.set(i);
        }
        i
    })
}

/// A monotone counter: per-thread sharded relaxed atomics, folded at
/// snapshot time. Declare with [`counter!`]; increment with
/// [`Counter::add`] / [`Counter::inc`].
pub struct Counter {
    name: &'static str,
    registered: AtomicBool,
    shards: [Padded; SHARDS],
}

impl Counter {
    /// A new unregistered counter (use via [`counter!`]).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            registered: AtomicBool::new(false),
            shards: [PADDED_ZERO; SHARDS],
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when telemetry is enabled: one enabled check, one shard
    /// lookup, one relaxed `fetch_add` — no locks on the hot path.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.add_always(n);
    }

    /// Adds `n` regardless of the global gate. For call sites that feed
    /// per-run report fields (the framework's execution counters), which
    /// must stay exact even when no one asked for a metrics snapshot.
    #[inline]
    pub fn add_always(&'static self, n: u64) {
        if !self.registered.load(Relaxed) {
            self.register();
        }
        self.shards[shard_index()].0.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Folds the shards into the current total.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    #[cold]
    fn register(&'static self) {
        let mut metrics = lock_registry();
        // Double-check under the lock so two racing first touches do not
        // register twice.
        if !self.registered.load(Relaxed) {
            metrics.push(MetricRef::Counter(self));
            self.registered.store(true, Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("name", &self.name)
            .field("value", &self.value())
            .finish()
    }
}

/// Declares a `static` [`Counter`] named after a dotted metric path.
///
/// ```
/// midas_core::counter!(DEMO_EVENTS, "demo.events");
/// DEMO_EVENTS.inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($vis:vis $ident:ident, $name:expr) => {
        $vis static $ident: $crate::telemetry::Counter =
            $crate::telemetry::Counter::new($name);
    };
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Bucket count: one per possible `log₂` of a `u64` sample, plus the zero
/// bucket.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of durations or sizes. Bucket `0` holds zero
/// samples; bucket `i ≥ 1` holds samples with `2^(i-1) <= v < 2^i`.
/// All updates are relaxed atomics; totals are folded at snapshot time.
pub struct Histogram {
    name: &'static str,
    registered: AtomicBool,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)] // array-repeat seed
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    /// A new unregistered histogram (use via [`histogram!`]).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO_U64; BUCKETS],
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bucket index of a sample.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => (64 - v.leading_zeros()) as usize,
        }
    }

    /// Records one sample when telemetry is enabled.
    #[inline]
    pub fn record(&'static self, value: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.buckets[Self::bucket_of(value)].fetch_add(1, Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    #[cold]
    fn register(&'static self) {
        let mut metrics = lock_registry();
        if !self.registered.load(Relaxed) {
            metrics.push(MetricRef::Histogram(self));
            self.registered.store(true, Relaxed);
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.name)
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Declares a `static` [`Histogram`] named after a dotted metric path.
#[macro_export]
macro_rules! histogram {
    ($vis:vis $ident:ident, $name:expr) => {
        $vis static $ident: $crate::telemetry::Histogram =
            $crate::telemetry::Histogram::new($name);
    };
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Where span JSONL events go when `MIDAS_TRACE=spans[:PATH]` is active.
enum TraceSink {
    Stderr,
    File(Mutex<std::io::BufWriter<File>>),
}

static TRACE_SINK: OnceLock<Option<TraceSink>> = OnceLock::new();

fn trace_sink() -> Option<&'static TraceSink> {
    TRACE_SINK
        .get_or_init(|| {
            let value = std::env::var("MIDAS_TRACE").ok()?;
            let (mode, path) = match value.split_once(':') {
                Some((m, p)) => (m, Some(p)),
                None => (value.as_str(), None),
            };
            if mode != "spans" {
                return None;
            }
            // Tracing implies telemetry: duration histograms fill in too.
            enable();
            match path {
                None => Some(TraceSink::Stderr),
                Some(p) => File::create(p)
                    .ok()
                    .map(|f| TraceSink::File(Mutex::new(std::io::BufWriter::new(f)))),
            }
        })
        .as_ref()
}

/// Whether span events are being streamed (`MIDAS_TRACE=spans[:PATH]`).
pub fn tracing() -> bool {
    trace_sink().is_some()
}

/// Flushes the span stream (a no-op for the stderr sink). The CLI calls
/// this before exiting so file traces are complete.
pub fn flush_trace() {
    if let Some(TraceSink::File(w)) = trace_sink() {
        let mut w = w.lock().unwrap_or_else(|p| p.into_inner());
        let _ = w.flush();
    }
}

fn emit_span(name: &str, start_ns: u64, end_ns: u64, thread: u64, parent: u64, id: u64) {
    let Some(sink) = trace_sink() else { return };
    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        "{{\"span\":\"{}\",\"id\":{id},\"parent\":{parent},\"thread\":{thread},\
         \"start_ns\":{start_ns},\"end_ns\":{end_ns}}}",
        escape_into_owned(name)
    );
    line.push('\n');
    match sink {
        TraceSink::Stderr => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        TraceSink::File(w) => {
            let mut w = w.lock().unwrap_or_else(|p| p.into_inner());
            let _ = w.write_all(line.as_bytes());
        }
    }
}

/// Sequential per-thread identifier for trace events (thread ids are not
/// stable integers across platforms).
fn thread_ordinal() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(0) };
    }
    ORDINAL.with(|o| {
        let mut v = o.get();
        if v == 0 {
            v = NEXT.fetch_add(1, Relaxed);
            o.set(v);
        }
        v
    })
}

thread_local! {
    /// Innermost live span on this thread; `0` at top level.
    static CURRENT_SPAN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// RAII span timer: on drop, records the elapsed nanoseconds into its
/// histogram and (when tracing) streams one JSONL event.
pub struct SpanGuard {
    name: &'static str,
    hist: Option<&'static Histogram>,
    start_ns: u64,
    id: u64,
    parent: u64,
    armed: bool,
}

impl SpanGuard {
    fn disarmed(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            hist: None,
            start_ns: 0,
            id: 0,
            parent: 0,
            armed: false,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_ns = clock_ns();
        if let Some(h) = self.hist {
            h.record(end_ns.saturating_sub(self.start_ns));
        }
        CURRENT_SPAN.with(|c| c.set(self.parent));
        if tracing() {
            emit_span(
                self.name,
                self.start_ns,
                end_ns,
                thread_ordinal(),
                self.parent,
                self.id,
            );
        }
    }
}

/// Opens a span timing into `hist`. Disabled telemetry returns an inert
/// guard (two relaxed loads, no clock read).
#[inline]
pub fn span(name: &'static str, hist: &'static Histogram) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disarmed(name);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Relaxed);
    let parent = CURRENT_SPAN.with(|c| {
        let p = c.get();
        c.set(id);
        p
    });
    SpanGuard {
        name,
        hist: Some(hist),
        start_ns: clock_ns(),
        id,
        parent,
        armed: true,
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A folded histogram as it appears in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(bucket index, samples)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// A point-in-time fold of every registered metric, ordered by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals by metric name.
    pub counters: Vec<(String, u64)>,
    /// Histograms by metric name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Folds every registered metric into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let metrics = lock_registry();
    let mut snap = Snapshot::default();
    for m in metrics.iter() {
        match m {
            MetricRef::Counter(c) => snap.counters.push((c.name().to_owned(), c.value())),
            MetricRef::Histogram(h) => {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let v = b.load(Relaxed);
                        (v > 0).then_some((i as u32, v))
                    })
                    .collect();
                snap.histograms.push((
                    h.name().to_owned(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        buckets,
                    },
                ));
            }
        }
    }
    drop(metrics);
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

impl Snapshot {
    /// The counter total for `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram for `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Every counter in `self` is ≥ its value in `earlier`, and no counter
    /// disappeared. The monotonicity check the test suites assert.
    pub fn dominates(&self, earlier: &Snapshot) -> bool {
        earlier
            .counters
            .iter()
            .all(|(name, v)| self.counter(name) >= *v)
    }

    /// Renders the stable, versioned JSON document: keys sorted, integers
    /// only, one object — machine-diffable by `scripts/metrics_compare.py`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_into_owned(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":{{",
                escape_into_owned(name),
                h.count,
                h.sum
            );
            for (j, (bucket, v)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{bucket}\":{v}");
            }
            out.push_str("}}");
        }
        out.push_str("}}\n");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`]. This is not a
    /// general JSON parser — it accepts exactly the flat shape this module
    /// emits, enough for the test suites to round-trip a written snapshot
    /// without external dependencies.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let mut p = JsonCursor::new(text.trim());
        p.expect('{')?;
        let schema_key = p.string()?;
        if schema_key != "schema" {
            return Err(format!("expected schema key, found {schema_key:?}"));
        }
        p.expect(':')?;
        let schema = p.string()?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?}"));
        }
        p.expect(',')?;
        let mut snap = Snapshot::default();

        let counters_key = p.string()?;
        if counters_key != "counters" {
            return Err(format!("expected counters, found {counters_key:?}"));
        }
        p.expect(':')?;
        p.expect('{')?;
        while !p.eat('}') {
            if !snap.counters.is_empty() {
                p.expect(',')?;
            }
            let name = p.string()?;
            p.expect(':')?;
            let v = p.integer()?;
            snap.counters.push((name, v));
        }

        p.expect(',')?;
        let hist_key = p.string()?;
        if hist_key != "histograms" {
            return Err(format!("expected histograms, found {hist_key:?}"));
        }
        p.expect(':')?;
        p.expect('{')?;
        while !p.eat('}') {
            if !snap.histograms.is_empty() {
                p.expect(',')?;
            }
            let name = p.string()?;
            p.expect(':')?;
            p.expect('{')?;
            p.expect_key("count")?;
            let count = p.integer()?;
            p.expect(',')?;
            p.expect_key("sum")?;
            let sum = p.integer()?;
            p.expect(',')?;
            p.expect_key("buckets")?;
            p.expect('{')?;
            let mut buckets = Vec::new();
            while !p.eat('}') {
                if !buckets.is_empty() {
                    p.expect(',')?;
                }
                let bucket: u64 = p.string()?.parse().map_err(|e| format!("bucket: {e}"))?;
                p.expect(':')?;
                let v = p.integer()?;
                buckets.push((bucket as u32, v));
            }
            p.expect('}')?;
            snap.histograms.push((
                name,
                HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                },
            ));
        }
        p.expect('}')?;
        Ok(snap)
    }
}

/// Writes the current snapshot's JSON document to `path`.
pub fn write_json(path: &str) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

fn escape_into_owned(s: &str) -> String {
    // Metric names are dotted ASCII identifiers; escaping is belt and
    // braces for the day one is not.
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Byte cursor over the exact JSON subset [`Snapshot::to_json`] emits.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(text: &'a str) -> Self {
        JsonCursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn expect_key(&mut self, key: &str) -> Result<(), String> {
        let found = self.string()?;
        if found != key {
            return Err(format!("expected key {key:?}, found {found:?}"));
        }
        self.expect(':')
    }

    fn integer(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("integer: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Verbose-stats rendering
// ---------------------------------------------------------------------------

/// Renders the compact `--verbose-stats` table: every counter, then every
/// histogram (count/sum), aligned and name-sorted. One string so callers
/// can prefix lines for their output format.
pub fn render_table(snap: &Snapshot) -> String {
    let width = snap
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snap.histograms.iter().map(|(n, _)| n.len() + 6))
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "{name:<width$}  {v}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{name}.count{:<pad$}  {}",
            "",
            h.count,
            pad = width.saturating_sub(name.len() + 6)
        );
        let _ = writeln!(
            out,
            "{name}.sum{:<pad$}  {}",
            "",
            h.sum,
            pad = width.saturating_sub(name.len() + 4)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    counter!(TEST_EVENTS, "test.events");
    counter!(TEST_LOOPS, "test.loops");
    histogram!(TEST_SIZES, "test.sizes");

    #[test]
    fn counters_fold_across_threads_exactly() {
        enable();
        let threads = 8;
        let iters = 10_000u64;
        let before = TEST_EVENTS.value();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..iters {
                        TEST_EVENTS.inc();
                    }
                });
            }
        });
        assert_eq!(TEST_EVENTS.value() - before, threads * iters);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        enable();
        TEST_SIZES.record(3);
        TEST_SIZES.record(4);
        assert!(TEST_SIZES.count() >= 2);
        assert!(TEST_SIZES.sum() >= 7);
    }

    #[test]
    fn snapshot_json_round_trips() {
        enable();
        TEST_LOOPS.add(41);
        TEST_SIZES.record(9);
        let snap = snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"midas.metrics/v1\""));
        let parsed = Snapshot::from_json(&json).expect("own output parses");
        assert_eq!(parsed, snap);
        assert!(parsed.counter("test.loops") >= 41);
        let h = parsed.histogram("test.sizes").expect("histogram present");
        assert!(h.count >= 1);
    }

    #[test]
    fn later_snapshots_dominate_earlier_ones() {
        enable();
        TEST_LOOPS.inc();
        let a = snapshot();
        TEST_LOOPS.add(5);
        let b = snapshot();
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b) || a.counter("test.loops") == b.counter("test.loops"));
    }

    #[test]
    fn spans_nest_and_record() {
        enable();
        histogram!(SPAN_H, "test.span_ns");
        let before = SPAN_H.count();
        {
            let _outer = span("test.outer", &SPAN_H);
            let _inner = span("test.inner", &SPAN_H);
        }
        assert_eq!(SPAN_H.count() - before, 2);
        // The span stack unwound to top level.
        CURRENT_SPAN.with(|c| assert_eq!(c.get(), 0));
    }

    #[test]
    fn render_table_lists_every_metric() {
        enable();
        TEST_LOOPS.inc();
        TEST_SIZES.record(2);
        let snap = snapshot();
        let table = render_table(&snap);
        assert!(table.contains("test.loops"));
        assert!(table.contains("test.sizes.count"));
    }
}
