//! MIDASalg — slice discovery for a single web source (§III-A).

use midas_kb::{KnowledgeBase, Symbol};

use crate::config::MidasConfig;
use crate::fact_table::{FactTable, PropertyId};
use crate::hierarchy::SliceHierarchy;
use crate::profit::ProfitCtx;
use crate::slice::DiscoveredSlice;
use crate::source::SourceFacts;
use crate::traversal::traverse;

/// The MIDASalg algorithm: bottom-up hierarchy construction with pruning,
/// followed by the top-down traversal.
#[derive(Debug, Clone, Default)]
pub struct MidasAlg {
    /// Algorithm configuration (cost model and caps).
    pub config: MidasConfig,
}

impl MidasAlg {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: MidasConfig) -> Self {
        MidasAlg { config }
    }

    /// Runs MIDASalg on one source against `kb`, deriving initial slices
    /// from the entities of the source's fact table.
    pub fn run(&self, source: &SourceFacts, kb: &KnowledgeBase) -> Vec<DiscoveredSlice> {
        self.run_with_seeds(source, kb, None)
    }

    /// Runs MIDASalg with the initial hierarchy formed from `seeds` —
    /// property sets (as `(predicate, value)` symbol pairs) exported by
    /// finer-grained children sources, per the §III-B framework. Seed
    /// properties absent from this source's catalog are dropped; seeds that
    /// become empty are skipped.
    pub fn run_seeded(
        &self,
        source: &SourceFacts,
        kb: &KnowledgeBase,
        seeds: &[Vec<(Symbol, Symbol)>],
    ) -> Vec<DiscoveredSlice> {
        self.run_with_seeds(source, kb, Some(seeds))
    }

    /// Like [`MidasAlg::run_seeded`], but returns the [`FactTable`] built
    /// for the source instead of recycling it, so incremental drivers can
    /// cache it across augmentation rounds (empty `seeds` = unseeded run).
    /// Returns `(slices, None)` for an empty source.
    pub fn run_retaining_table(
        &self,
        source: &SourceFacts,
        kb: &KnowledgeBase,
        seeds: &[Vec<(Symbol, Symbol)>],
    ) -> (Vec<DiscoveredSlice>, Option<FactTable>) {
        if source.is_empty() {
            return (Vec::new(), None);
        }
        let _budget_scope = crate::budget::BudgetScope::enter(&self.config.budget);
        let table = FactTable::build(source, kb);
        let slices = self.detect_over(&table, source, norm_seeds(seeds));
        (slices, Some(table))
    }

    /// Runs hierarchy construction + traversal over a pre-built fact table —
    /// the incremental fast path where a cached table (with
    /// [`FactTable::refresh_new_counts`] applied) replaces the per-round
    /// rebuild. The table must have been built from exactly this `source`
    /// against the same knowledge-base state (empty `seeds` = unseeded run).
    pub fn run_on_table(
        &self,
        table: &FactTable,
        source: &SourceFacts,
        kb: &KnowledgeBase,
        seeds: &[Vec<(Symbol, Symbol)>],
    ) -> Vec<DiscoveredSlice> {
        let _ = kb; // newness is already folded into the table's counts
        if source.is_empty() {
            return Vec::new();
        }
        debug_assert_eq!(
            table.total_facts(),
            source.len(),
            "cached table does not match the source it is applied to"
        );
        let _budget_scope = crate::budget::BudgetScope::enter(&self.config.budget);
        self.detect_over(table, source, norm_seeds(seeds))
    }

    /// Like [`MidasAlg::run_retaining_table`], but also returns the built
    /// [`SliceHierarchy`] instead of recycling it, so the warm-hierarchy
    /// engine can patch it in place next round (unseeded, leaf-only path).
    pub fn run_retaining_state(
        &self,
        source: &SourceFacts,
        kb: &KnowledgeBase,
    ) -> (
        Vec<DiscoveredSlice>,
        Option<FactTable>,
        Option<SliceHierarchy>,
    ) {
        if source.is_empty() {
            return (Vec::new(), None, None);
        }
        let _budget_scope = crate::budget::BudgetScope::enter(&self.config.budget);
        let table = FactTable::build(source, kb);
        let ctx = ProfitCtx::new(&table, self.config.cost);
        let hierarchy = self.build_hierarchy(&table, &ctx, None);
        let slices = self.materialise(&table, source, &ctx, &hierarchy);
        (slices, Some(table), Some(hierarchy))
    }

    /// The warm re-detection path: re-evaluates `warm` (last round's
    /// hierarchy for this source) against the refreshed `table` via
    /// [`SliceHierarchy::warm_patch`], falling back to a cold
    /// [`SliceHierarchy::build`] when no hierarchy is cached or the patch
    /// refuses the delta. Returns the slices, the (patched or rebuilt)
    /// hierarchy for re-caching, and whether the patch succeeded. Results
    /// are bit-identical to [`MidasAlg::run_on_table`] either way.
    pub fn run_on_table_warm(
        &self,
        table: &FactTable,
        source: &SourceFacts,
        warm: Option<SliceHierarchy>,
        changed: &[crate::fact_table::EntityId],
    ) -> (Vec<DiscoveredSlice>, Option<SliceHierarchy>, bool) {
        if source.is_empty() {
            if let Some(h) = warm {
                h.recycle();
            }
            return (Vec::new(), None, false);
        }
        debug_assert_eq!(
            table.total_facts(),
            source.len(),
            "cached table does not match the source it is applied to"
        );
        let _budget_scope = crate::budget::BudgetScope::enter(&self.config.budget);
        let ctx = ProfitCtx::new(table, self.config.cost);
        let (hierarchy, warmed) = match warm {
            Some(mut h) => {
                if h.warm_patch(&ctx, &self.config, changed) {
                    (h, true)
                } else {
                    // Structural fallback: the cached hierarchy cannot absorb
                    // the delta — recycle its arenas and rebuild cold.
                    h.recycle();
                    (self.build_hierarchy(table, &ctx, None), false)
                }
            }
            None => (self.build_hierarchy(table, &ctx, None), false),
        };
        let slices = self.materialise(table, source, &ctx, &hierarchy);
        (slices, Some(hierarchy), warmed)
    }

    fn run_with_seeds(
        &self,
        source: &SourceFacts,
        kb: &KnowledgeBase,
        seeds: Option<&[Vec<(Symbol, Symbol)>]>,
    ) -> Vec<DiscoveredSlice> {
        if source.is_empty() {
            return Vec::new();
        }
        // Direct (non-framework) runs enforce the config's budget here; when
        // the framework already installed a scope around this call, its
        // outer scope keeps governing and this is a no-op.
        let _budget_scope = crate::budget::BudgetScope::enter(&self.config.budget);
        let table = FactTable::build(source, kb);
        let slices = self.detect_over(&table, source, seeds);
        // The shard is finished: hand the fact table's buffers back to the
        // worker's scratch pool for the next shard.
        table.recycle();
        slices
    }

    /// Hierarchy construction, traversal, and slice materialisation over a
    /// prebuilt fact table. Does not recycle `table` (the caller decides
    /// whether it is scratch or cached).
    fn detect_over(
        &self,
        table: &FactTable,
        source: &SourceFacts,
        seeds: Option<&[Vec<(Symbol, Symbol)>]>,
    ) -> Vec<DiscoveredSlice> {
        let ctx = ProfitCtx::new(table, self.config.cost);
        let hierarchy = self.build_hierarchy(table, &ctx, seeds);
        let slices = self.materialise(table, source, &ctx, &hierarchy);
        // Hand the hierarchy's buffers back to the worker's scratch pool
        // for the next shard.
        hierarchy.recycle();
        slices
    }

    fn build_hierarchy(
        &self,
        table: &FactTable,
        ctx: &ProfitCtx<'_>,
        seeds: Option<&[Vec<(Symbol, Symbol)>]>,
    ) -> SliceHierarchy {
        match seeds {
            None => SliceHierarchy::build(table, ctx, &self.config),
            Some(seeds) => {
                let translated: Vec<Vec<PropertyId>> = seeds
                    .iter()
                    .filter_map(|seed| {
                        let ids: Vec<PropertyId> = seed
                            .iter()
                            .filter_map(|&(p, v)| table.catalog().get(p, v))
                            .collect();
                        (!ids.is_empty()).then_some(ids)
                    })
                    .collect();
                SliceHierarchy::build_seeded(table, ctx, &self.config, &translated)
            }
        }
    }

    /// Traversal plus slice materialisation — shared verbatim by the cold
    /// and warm detection paths, so a warm-patched hierarchy yields the
    /// same report bytes a fresh build would.
    fn materialise(
        &self,
        table: &FactTable,
        source: &SourceFacts,
        ctx: &ProfitCtx<'_>,
        hierarchy: &SliceHierarchy,
    ) -> Vec<DiscoveredSlice> {
        let mut picked = traverse(hierarchy, ctx);
        if picked.is_empty() && self.config.always_report_best {
            // Nothing is profitable on its own — report the least-bad
            // canonical slice so a coarser granularity can aggregate it.
            if let Some(best) = hierarchy
                .iter()
                .filter(|&id| hierarchy.node(id).canonical)
                .max_by(|&a, &b| {
                    hierarchy
                        .node(a)
                        .profit
                        .total_cmp(&hierarchy.node(b).profit)
                })
            {
                picked.push(best);
            }
        }
        let slices: Vec<DiscoveredSlice> = picked
            .into_iter()
            .map(|id| {
                let node = hierarchy.node(id);
                let mut properties: Vec<(Symbol, Symbol)> = node
                    .props
                    .iter()
                    .map(|&p| table.catalog().pair(p))
                    .collect();
                properties.sort_unstable();
                // `live_extent` asserts the eager level-boundary release
                // never freed an extent a report still needs.
                let mut entities: Vec<Symbol> = node
                    .live_extent()
                    .iter()
                    .map(|e| table.subject(e))
                    .collect();
                entities.sort_unstable();
                DiscoveredSlice {
                    source: source.url.clone(),
                    properties,
                    entities,
                    num_facts: table.facts_sum(node.live_extent()) as usize,
                    num_new_facts: table.new_sum(node.live_extent()) as usize,
                    profit: node.profit,
                }
            })
            .collect();
        slices
    }
}

/// The framework's seed convention: an empty seed list means "no seeds"
/// (entity-derived initial slices), not "empty initial hierarchy".
fn norm_seeds(seeds: &[Vec<(Symbol, Symbol)>]) -> Option<&[Vec<(Symbol, Symbol)>]> {
    (!seeds.is_empty()).then_some(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{skyrocket, skyrocket_pages};
    use midas_kb::Interner;

    #[test]
    fn running_example_end_to_end() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let slices = alg.run(&src, &kb);
        assert_eq!(slices.len(), 1);
        let s = &slices[0];
        assert_eq!(s.num_facts, 6);
        assert_eq!(s.num_new_facts, 6);
        assert!((s.profit - 4.327).abs() < 1e-9);
        let desc = s.describe(&t);
        assert!(desc.contains("category = rocket_family"));
        assert!(desc.contains("sponsor = NASA"));
    }

    #[test]
    fn per_page_runs_match_example_16_round_1() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let mut positive = Vec::new();
        for page in &pages {
            let slices = alg.run(page, &kb);
            positive.extend(slices.into_iter().filter(|s| s.profit > 0.0));
        }
        // Example 16 round 1: only the Atlas and Castor-4 page slices have
        // positive profit.
        assert_eq!(positive.len(), 2);
        for s in &positive {
            assert!(s.source.as_str().contains("doc_lau_fam"));
            assert_eq!(s.num_new_facts, 3);
        }
    }

    #[test]
    fn seeded_run_reproduces_example_16_round_2() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        // Round 1 on the two rocket-family pages.
        let fam_pages: Vec<&SourceFacts> = pages
            .iter()
            .filter(|p| p.url.as_str().contains("doc_lau_fam"))
            .collect();
        let mut seeds = Vec::new();
        let mut all_facts = Vec::new();
        for page in &fam_pages {
            all_facts.extend(page.facts.iter().copied());
            for s in alg.run(page, &kb) {
                if s.profit > 0.0 {
                    seeds.push(s.properties);
                }
            }
        }
        assert_eq!(seeds.len(), 2);
        // Round 2 on the merged sub-domain source.
        let sub = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://space.skyrocket.de/doc_lau_fam").unwrap(),
            all_facts,
        );
        let slices = alg.run_seeded(&sub, &kb, &seeds);
        assert_eq!(slices.len(), 1, "S5 is detected at the sub-domain");
        let s5 = &slices[0];
        assert_eq!(s5.entities.len(), 2);
        assert_eq!(s5.num_new_facts, 6);
        assert_eq!(s5.properties.len(), 2);
    }

    #[test]
    fn empty_source_returns_nothing() {
        let t = Interner::new();
        let _ = t;
        let src = SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://empty.com").unwrap(),
            vec![],
        );
        let alg = MidasAlg::default();
        assert!(alg.run(&src, &KnowledgeBase::new()).is_empty());
    }

    #[test]
    fn seeds_with_unknown_properties_are_dropped() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let bogus = vec![vec![(t.intern("nonexistent"), t.intern("value"))]];
        let slices = alg.run_seeded(&src, &kb, &bogus);
        assert!(
            slices.is_empty(),
            "a seed with no known property yields nothing"
        );
    }

    #[test]
    fn default_cost_model_suppresses_small_pages() {
        // With f_p = 10 even the Atlas page (3 new facts) is unprofitable.
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::default());
        for page in &pages {
            for s in alg.run(page, &kb) {
                assert!(s.profit <= 0.0 || s.num_new_facts > 10);
            }
        }
    }
}
