//! Slice-hierarchy construction (§III-A, step 1).
//!
//! The hierarchy is the property-subset lattice restricted to the property
//! sets reachable from the *initial slices* (the maximal property
//! combinations of each entity). Construction proceeds bottom-up, two levels
//! at a time, exactly as the paper describes:
//!
//! 1. **Parent generation** — each slice at level `l` (i.e. with `l`
//!    properties) generates its `l` parents by dropping one property at a
//!    time, Apriori-style.
//! 2. **Canonicality pruning** (Proposition 12) — a slice is canonical iff
//!    it is an initial slice or has at least two canonical children.
//!    Non-canonical slices are *removed*: their children are re-linked to
//!    their parents unless already reachable through another path.
//! 3. **Low-profit pruning** — a canonical slice `S` is marked invalid when
//!    `f({S}) < 0` or `f({S}) < f_LB(S)`, where `f_LB(S)` is the profit of
//!    the best known set of slices in `S`'s subtree (`SLB(S)`). Invalid
//!    slices stay in the hierarchy (they still generate parents and
//!    participate in canonicality counting) but are never reported.

use midas_kb::fnv::{FnvHashMap, FnvHashSet};

use crate::config::MidasConfig;
use crate::extent::ExtentSet;
use crate::fact_table::{EntityId, FactTable, PropertyId};
use crate::parallel::par_map;
use crate::profit::ProfitCtx;

/// Construction/patch telemetry: how much evaluation work hierarchies do,
/// how much of it warm patching avoids, and the extent-memory churn.
///
/// The per-node counters (`nodes_evaluated`, `nodes_pruned`,
/// `extents_freed`) fire hundreds of thousands of times per build, so
/// they batch in plain thread-local cells and drain every [`FLUSH_EVERY`]
/// events and at thread exit — totals exact once workers retire,
/// snapshots monotone, hot path one TLS bump. The warm-patch counters are
/// per-leaf (rare) and record directly.
mod metrics {
    crate::counter!(pub NODES_EVALUATED, "hierarchy.nodes_evaluated");
    crate::counter!(pub NODES_WARM_PATCHED, "hierarchy.nodes_warm_patched");
    crate::counter!(pub NODES_PRUNED, "hierarchy.nodes_pruned");
    crate::counter!(pub EXTENTS_FREED, "hierarchy.extents_freed");
    crate::counter!(pub EXTENTS_REBUILT, "hierarchy.extents_rebuilt");
    crate::counter!(pub WARM_PATCHES, "hierarchy.warm_patch.applied");
    crate::counter!(pub WARM_REFUSALS, "hierarchy.warm_patch.refused");
}

const KIND_NODES_EVALUATED: usize = 0;
const KIND_NODES_PRUNED: usize = 1;
const KIND_EXTENTS_FREED: usize = 2;
const NUM_KINDS: usize = 3;

static KIND_SINKS: [&crate::telemetry::Counter; NUM_KINDS] = [
    &metrics::NODES_EVALUATED,
    &metrics::NODES_PRUNED,
    &metrics::EXTENTS_FREED,
];

/// Batched events per thread before draining to the shared counters.
const FLUSH_EVERY: u64 = 1024;

#[derive(Default)]
struct Tally {
    counts: [std::cell::Cell<u64>; NUM_KINDS],
    pending: std::cell::Cell<u64>,
}

impl Tally {
    fn flush(&self) {
        for (kind, sink) in KIND_SINKS.iter().enumerate() {
            let n = self.counts[kind].take();
            if n > 0 {
                sink.add_always(n);
            }
        }
        self.pending.set(0);
    }
}

impl Drop for Tally {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TALLY: Tally = Tally::default();
}

#[inline]
fn tally(kind: usize, n: u64) {
    if crate::telemetry::enabled() {
        tally_enabled(kind, n);
    }
}

#[cold]
#[inline(never)]
fn tally_enabled(kind: usize, n: u64) {
    let _ = TALLY.try_with(|t| {
        t.counts[kind].set(t.counts[kind].get() + n);
        let pending = t.pending.get() + 1;
        if pending >= FLUSH_EVERY {
            t.flush();
        } else {
            t.pending.set(pending);
        }
    });
}

/// Index of a node in the hierarchy.
pub type NodeId = u32;

/// One node's profit evaluation: `(node, profit, f(child SLB set), child
/// SLB slices)` — `None` when the node was removed before evaluation.
type ProfitEval = Option<(NodeId, f64, f64, Vec<NodeId>)>;

/// One slice node.
#[derive(Debug, Clone)]
pub struct SliceNode {
    /// Defining property set, sorted by id.
    pub props: Box<[PropertyId]>,
    /// Entity extent `Π`.
    pub extent: ExtentSet,
    /// Children (slices with strictly more properties).
    pub children: Vec<NodeId>,
    /// Parents (slices with strictly fewer properties).
    pub parents: Vec<NodeId>,
    /// Whether the node came from an entity (or a framework seed).
    pub is_initial: bool,
    /// Canonicality per Proposition 12 (meaningful once its level is processed).
    pub canonical: bool,
    /// `true` once the node is deleted as non-canonical.
    pub removed: bool,
    /// `true` once the node's extent has been released at a level boundary
    /// (removed or low-profit-invalidated nodes only). A freed extent reads
    /// as the empty set; report paths must go through
    /// [`SliceNode::live_extent`], which asserts this flag is clear.
    pub extent_freed: bool,
    /// `false` once the node is pruned as low-profit.
    pub valid: bool,
    /// `f({S})` for this node.
    pub profit: f64,
    /// `f_LB(S)` — the subtree profit lower bound.
    pub slb_profit: f64,
    /// The slice set `SLB(S)` achieving `slb_profit`.
    pub slb_slices: Vec<NodeId>,
}

impl SliceNode {
    /// The node's extent, for report/traversal paths. Asserts (in debug
    /// builds) that the extent was not freed by the eager level-boundary
    /// release — only removed or invalidated nodes are ever freed, and
    /// neither must reach a report.
    pub fn live_extent(&self) -> &ExtentSet {
        debug_assert!(
            !self.extent_freed,
            "read of a freed extent: node was removed or invalidated and released at a level boundary"
        );
        &self.extent
    }
}

/// The constructed (and pruned) slice hierarchy of one web source.
#[derive(Debug)]
pub struct SliceHierarchy {
    nodes: Vec<SliceNode>,
    /// Cached per-node property-set hash (XOR of `prop_hash` over the set).
    hashes: Vec<u64>,
    /// Hash → candidate node ids (verified against `props` on lookup).
    by_hash: FnvHashMap<u64, Vec<NodeId>>,
    levels: Vec<Vec<NodeId>>,
    max_level: usize,
    /// Live (non-removed) node count, maintained incrementally.
    live: usize,
    /// Whether the node-count safety valve stopped expansion.
    pub capped: bool,
    /// Number of nodes ever created (before pruning) — reported by the
    /// pruning-effectiveness benchmarks.
    pub nodes_created: usize,
}

impl SliceHierarchy {
    /// Builds the hierarchy for `table`, seeding the initial level from the
    /// entities of the fact table (the single-source case of §III-A).
    pub fn build(table: &FactTable, ctx: &ProfitCtx<'_>, config: &MidasConfig) -> Self {
        Self::build_inner(table, ctx, config, None)
    }

    /// Builds the hierarchy with explicit initial property sets — the
    /// framework's multi-source case (§III-B), where the initial slices are
    /// the slices exported by the children sources. When `seeds` is empty
    /// the result is an empty hierarchy.
    pub fn build_seeded(
        table: &FactTable,
        ctx: &ProfitCtx<'_>,
        config: &MidasConfig,
        seeds: &[Vec<PropertyId>],
    ) -> Self {
        Self::build_inner(table, ctx, config, Some(seeds))
    }

    fn build_inner(
        table: &FactTable,
        ctx: &ProfitCtx<'_>,
        config: &MidasConfig,
        seeds: Option<&[Vec<PropertyId>]>,
    ) -> Self {
        let mut h = SliceHierarchy {
            nodes: Vec::new(),
            hashes: Vec::new(),
            by_hash: FnvHashMap::default(),
            levels: Vec::new(),
            max_level: 0,
            live: 0,
            capped: false,
            nodes_created: 0,
        };
        match seeds {
            Some(seeds) => h.seed_from_property_sets(table, config, seeds),
            None => h.seed_from_entities(table, config),
        }
        h.construct_and_prune(table, ctx, config);
        h
    }

    /// Number of live (non-removed) nodes.
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.live, self.nodes.iter().filter(|n| !n.removed).count());
        self.live
    }

    /// Whether the hierarchy has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest level (number of properties of the most specific slice).
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &SliceNode {
        &self.nodes[id as usize]
    }

    /// Live node ids at `level`, in creation order.
    pub fn level(&self, level: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.levels
            .get(level)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&id| !self.nodes[id as usize].removed)
    }

    /// All live node ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as NodeId).filter(move |&id| !self.nodes[id as usize].removed)
    }

    /// Looks up a node by exact property set (must be sorted).
    pub fn find(&self, props: &[PropertyId]) -> Option<NodeId> {
        self.lookup(set_hash(props), props)
    }

    /// Consumes the hierarchy once a shard's report is materialized,
    /// returning every node's extent and link/SLB buffers to the scratch
    /// pool. Purely an optimisation — dropping the hierarchy is always
    /// correct.
    pub fn recycle(self) {
        for node in self.nodes {
            node.extent.recycle();
            crate::scratch::put_ids(node.children);
            crate::scratch::put_ids(node.parents);
            crate::scratch::put_ids(node.slb_slices);
        }
    }

    // ---- construction -----------------------------------------------------

    fn lookup(&self, hash: u64, props: &[PropertyId]) -> Option<NodeId> {
        self.by_hash
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| *self.nodes[id as usize].props == *props)
    }

    fn get_or_create(&mut self, table: &FactTable, props: Box<[PropertyId]>) -> NodeId {
        let hash = set_hash(&props);
        if let Some(id) = self.lookup(hash, &props) {
            return id;
        }
        let extent = table.extent_of(&props);
        self.insert_node(props, hash, extent)
    }

    fn insert_node(&mut self, props: Box<[PropertyId]>, hash: u64, extent: ExtentSet) -> NodeId {
        let level = props.len();
        let id = u32::try_from(self.nodes.len()).expect("hierarchy overflow");
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
        }
        self.levels[level].push(id);
        self.max_level = self.max_level.max(level);
        self.by_hash.entry(hash).or_default().push(id);
        self.hashes.push(hash);
        self.nodes.push(SliceNode {
            props,
            extent,
            children: Vec::new(),
            parents: Vec::new(),
            is_initial: false,
            canonical: false,
            removed: false,
            extent_freed: false,
            valid: true,
            profit: 0.0,
            slb_profit: 0.0,
            slb_slices: Vec::new(),
        });
        self.nodes_created += 1;
        self.live += 1;
        id
    }

    /// Creates the initial slices from entities: for each entity, the
    /// cross-product of one property per predicate (capped).
    fn seed_from_entities(&mut self, table: &FactTable, config: &MidasConfig) {
        // Entities sharing a property set generate identical initial combos
        // (the grouping, capping, and cross-product depend only on the set),
        // so the expansion runs once per distinct set and repeats are a
        // single hash probe. Real sources hit this constantly: entities of
        // one schema share one property shape.
        let mut seen_prop_sets: FnvHashSet<&[PropertyId]> = FnvHashSet::default();
        for e in 0..table.num_entities() as EntityId {
            let props = table.entity_properties(e);
            if props.is_empty() {
                continue;
            }
            if !seen_prop_sets.insert(props) {
                continue;
            }
            // Group by predicate, preserving per-group value order.
            let mut groups: Vec<(midas_kb::Symbol, Vec<PropertyId>)> = Vec::new();
            for &pid in props {
                let (pred, _) = table.catalog().pair(pid);
                match groups.iter_mut().find(|(g, _)| *g == pred) {
                    Some((_, v)) => v.push(pid),
                    None => groups.push((pred, vec![pid])),
                }
            }
            // Bound the lattice: keep the most selective predicates when an
            // entity has too many.
            if groups.len() > config.max_properties_per_entity {
                groups.sort_by_key(|(_, v)| {
                    v.iter()
                        .map(|&p| table.catalog().extent(p).len())
                        .min()
                        .unwrap_or(usize::MAX)
                });
                groups.truncate(config.max_properties_per_entity);
            }
            // Cross product of one value per predicate, capped.
            let mut combos: Vec<Vec<PropertyId>> = vec![Vec::with_capacity(groups.len())];
            for (_, values) in &groups {
                let mut next = Vec::with_capacity(combos.len() * values.len());
                'outer: for combo in &combos {
                    for &v in values {
                        if next.len() + combos.len() >= config.max_initial_combinations_per_entity
                            && !next.is_empty()
                        {
                            break 'outer;
                        }
                        let mut c = combo.clone();
                        c.push(v);
                        next.push(c);
                    }
                }
                combos = next;
            }
            for mut combo in combos {
                combo.sort_unstable();
                let id = self.get_or_create(table, combo.into_boxed_slice());
                self.nodes[id as usize].is_initial = true;
            }
        }
    }

    fn seed_from_property_sets(
        &mut self,
        table: &FactTable,
        _config: &MidasConfig,
        seeds: &[Vec<PropertyId>],
    ) {
        for seed in seeds {
            let mut s = seed.clone();
            s.sort_unstable();
            s.dedup();
            if s.is_empty() {
                continue;
            }
            let id = self.get_or_create(table, s.into_boxed_slice());
            let node = &mut self.nodes[id as usize];
            if node.extent.is_empty() {
                // A seed that matches no entity in this table carries no
                // facts; drop it outright.
                if !node.removed {
                    node.removed = true;
                    self.live -= 1;
                    self.free_extent(id);
                }
                continue;
            }
            node.is_initial = true;
        }
    }

    fn construct_and_prune(
        &mut self,
        table: &FactTable,
        ctx: &ProfitCtx<'_>,
        config: &MidasConfig,
    ) {
        for l in (1..=self.max_level).rev() {
            // Cooperative per-source budget check at the level boundary: a
            // source whose hierarchy outgrew its node cap or deadline is
            // abandoned here (unwinding into the isolated worker pool)
            // rather than ground to completion.
            crate::budget::checkpoint(self.nodes_created);
            if l > 1 {
                self.generate_parents(table, config, l);
            }
            self.prune_non_canonical(l);
            self.evaluate_and_prune_profit(ctx, config, l);
            self.free_invalid_extents(config, l);
        }
        crate::budget::checkpoint(self.nodes_created);
    }

    /// Eagerly releases the extents of nodes pruned as *low-profit* at this
    /// level boundary, extending the removed-node release of
    /// [`Self::prune_non_canonical`] to nodes invalidated later in the
    /// build (ROADMAP "Hierarchy memory"). An invalid node's extent is dead
    /// weight for the rest of the build: invalid nodes never enter an `SLB`
    /// slice set (a node nominates itself only when
    /// `profit >= f_child_set && profit > 0`, the exact complement of the
    /// invalidation condition), parent extents at shallower levels come
    /// from the catalog's inverted lists rather than child extents, and the
    /// traversal skips `!valid` nodes before touching their extent. The
    /// only remaining readers are the `always_report_best` fallback (which
    /// may report an invalid node) and callers that opt out via
    /// `retain_invalid_extents`, so freeing is gated on both. Freeing is
    /// deterministic in the node set, so parallel builds stay bit-identical
    /// to `threads = 1`.
    fn free_invalid_extents(&mut self, config: &MidasConfig, l: usize) {
        if config.retain_invalid_extents || config.always_report_best {
            return;
        }
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        for id in ids {
            let node = &self.nodes[id as usize];
            if !node.removed && !node.valid && !node.extent_freed {
                self.free_extent(id);
            }
        }
    }

    /// Step (1): generate the `l` parents of every slice at level `l`.
    ///
    /// Each parent's extent is derived *incrementally*: for a child with
    /// properties `p_0 … p_{l-1}`, prefix/suffix intersection chains
    /// (`pre[i] = ∩_{k<i} extent(p_k)`, `suf[i] = ∩_{k≥i} extent(p_k)`)
    /// yield all `l` parent extents in `O(l)` intersections instead of the
    /// `O(l²)` of re-intersecting `l−1` inverted lists per parent. Parent
    /// lookups reuse the child's cached property-set hash
    /// (`child ⊕ prop_hash(dropped)`), so no property list is allocated for
    /// parents that already exist.
    ///
    /// The `max_hierarchy_nodes` safety valve is *level-atomic*: a level's
    /// parents are either generated in full or not at all, so no level is
    /// ever half-expanded.
    fn generate_parents(&mut self, table: &FactTable, config: &MidasConfig, l: usize) {
        if self.nodes.len() >= config.max_hierarchy_nodes {
            self.capped = true;
            return;
        }
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        if config.threads > 1 && ids.len() > 1 {
            self.generate_parents_parallel(table, config.threads, ids);
        } else {
            self.generate_parents_sequential(table, ids);
        }
    }

    fn generate_parents_sequential(&mut self, table: &FactTable, ids: Vec<NodeId>) {
        for id in ids {
            if self.nodes[id as usize].removed {
                continue;
            }
            let props = self.nodes[id as usize].props.clone();
            let child_hash = self.hashes[id as usize];
            // Probe every parent up front (parents of one child are distinct
            // sets, so earlier insertions of this loop can't satisfy a later
            // probe). Chains only pay off when several parents are missing;
            // a lone miss is cheaper through `extent_of`'s sorted-by-size
            // early-exit intersection.
            let found: Vec<Option<NodeId>> = (0..props.len())
                .map(|skip| {
                    let parent_hash = child_hash ^ prop_hash(props[skip]);
                    self.by_hash.get(&parent_hash).and_then(|cands| {
                        cands.iter().copied().find(|&c| {
                            props_match_skip(&self.nodes[c as usize].props, &props, skip)
                        })
                    })
                })
                .collect();
            let missing = found.iter().filter(|f| f.is_none()).count();
            let mut chains: Option<(Vec<ExtentSet>, Vec<ExtentSet>)> = None;
            for (skip, existing) in found.into_iter().enumerate() {
                let pid = match existing {
                    Some(pid) => pid,
                    None => {
                        let parent_props: Box<[PropertyId]> = props
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != skip)
                            .map(|(_, &p)| p)
                            .collect();
                        let extent = if missing == 1 {
                            table.extent_of(&parent_props)
                        } else {
                            let (pre, suf) =
                                chains.get_or_insert_with(|| extent_chains(table, &props));
                            if skip == 0 {
                                suf[1].clone()
                            } else if skip == props.len() - 1 {
                                pre[props.len() - 1].clone()
                            } else {
                                pre[skip].intersect(&suf[skip + 1])
                            }
                        };
                        let parent_hash = child_hash ^ prop_hash(props[skip]);
                        self.insert_node(parent_props, parent_hash, extent)
                    }
                };
                self.link(pid, id);
            }
            if let Some((pre, suf)) = chains.take() {
                recycle_chains(pre, suf);
            }
        }
    }

    /// Parallel variant: a read-only **map phase** derives the extent of
    /// every parent that does not yet exist, then a sequential **merge
    /// phase** applies insertions and links in child-id order — exactly the
    /// mutation order of the sequential path, so the resulting hierarchy is
    /// node-for-node identical. Parents shared by several children of the
    /// same level are planned redundantly by each child; the merge keeps the
    /// first plan and links the rest.
    fn generate_parents_parallel(&mut self, table: &FactTable, threads: usize, ids: Vec<NodeId>) {
        let this: &SliceHierarchy = self;
        let plans: Vec<(NodeId, Vec<Option<ExtentSet>>)> = par_map(threads, ids, |id| {
            if this.nodes[id as usize].removed {
                return (id, Vec::new());
            }
            let props = &this.nodes[id as usize].props;
            let child_hash = this.hashes[id as usize];
            // Same hybrid as the sequential path: a lone missing parent goes
            // through `extent_of`, several amortize the prefix/suffix chains.
            // Either route yields the same normalized set, so the merge stays
            // bit-identical to the sequential build.
            let exists: Vec<bool> = (0..props.len())
                .map(|skip| {
                    let parent_hash = child_hash ^ prop_hash(props[skip]);
                    this.by_hash.get(&parent_hash).is_some_and(|cands| {
                        cands
                            .iter()
                            .any(|&c| props_match_skip(&this.nodes[c as usize].props, props, skip))
                    })
                })
                .collect();
            let missing = exists.iter().filter(|e| !**e).count();
            let mut chains: Option<(Vec<ExtentSet>, Vec<ExtentSet>)> = None;
            let per_skip = exists
                .into_iter()
                .enumerate()
                .map(|(skip, exists)| {
                    if exists {
                        return None;
                    }
                    if missing == 1 {
                        let parent_props: Vec<PropertyId> = props
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != skip)
                            .map(|(_, &p)| p)
                            .collect();
                        return Some(table.extent_of(&parent_props));
                    }
                    let (pre, suf) = chains.get_or_insert_with(|| extent_chains(table, props));
                    Some(if skip == 0 {
                        suf[1].clone()
                    } else if skip == props.len() - 1 {
                        pre[props.len() - 1].clone()
                    } else {
                        pre[skip].intersect(&suf[skip + 1])
                    })
                })
                .collect();
            if let Some((pre, suf)) = chains.take() {
                recycle_chains(pre, suf);
            }
            (id, per_skip)
        });
        for (id, per_skip) in plans {
            if per_skip.is_empty() {
                continue;
            }
            let props = self.nodes[id as usize].props.clone();
            let child_hash = self.hashes[id as usize];
            for (skip, plan) in per_skip.into_iter().enumerate() {
                let parent_hash = child_hash ^ prop_hash(props[skip]);
                let existing = self.by_hash.get(&parent_hash).and_then(|cands| {
                    cands
                        .iter()
                        .copied()
                        .find(|&c| props_match_skip(&self.nodes[c as usize].props, &props, skip))
                });
                let pid = match existing {
                    Some(pid) => pid,
                    None => {
                        let extent = plan.expect("missing parents are planned in the map phase");
                        let parent_props: Box<[PropertyId]> = props
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != skip)
                            .map(|(_, &p)| p)
                            .collect();
                        self.insert_node(parent_props, parent_hash, extent)
                    }
                };
                self.link(pid, id);
            }
        }
    }

    /// Releases the extent of a removed or invalid node into the scratch
    /// pool, leaving a canonical empty set behind. Sequential and parallel
    /// builds remove and invalidate the same nodes in the same order, so
    /// freed extents stay node-for-node identical across thread counts.
    fn free_extent(&mut self, id: NodeId) {
        let node = &mut self.nodes[id as usize];
        debug_assert!(
            node.removed || !node.valid,
            "only removed or invalid nodes lose their extent"
        );
        if !node.extent_freed {
            let universe = node.extent.universe();
            std::mem::replace(&mut node.extent, ExtentSet::empty(universe)).recycle();
            node.extent_freed = true;
            tally(KIND_EXTENTS_FREED, 1);
        }
    }

    fn link(&mut self, parent: NodeId, child: NodeId) {
        // Children are kept sorted by id, so the duplicate check is a
        // binary search instead of a linear scan.
        if let Err(pos) = self.nodes[parent as usize].children.binary_search(&child) {
            self.nodes[parent as usize].children.insert(pos, child);
            self.nodes[child as usize].parents.push(parent);
        }
    }

    fn unlink_all(&mut self, id: NodeId) -> (Vec<NodeId>, Vec<NodeId>) {
        let parents = std::mem::take(&mut self.nodes[id as usize].parents);
        let children = std::mem::take(&mut self.nodes[id as usize].children);
        for &p in &parents {
            self.nodes[p as usize].children.retain(|&c| c != id);
        }
        for &c in &children {
            self.nodes[c as usize].parents.retain(|&p| p != id);
        }
        (parents, children)
    }

    /// Whether `target` is reachable from `from` through live children links.
    /// Links always point from a property subset to a strict superset, so the
    /// search only descends into nodes whose property set is a subset of the
    /// target's.
    /// `visited` is a per-node stamp array (indexed by node id) and `round`
    /// a fresh stamp value per call — reused across calls so the DFS does no
    /// per-call allocation or hashing.
    fn is_descendant(
        &self,
        from: NodeId,
        target: NodeId,
        stack: &mut Vec<NodeId>,
        visited: &mut [u32],
        round: u32,
    ) -> bool {
        let target_props = &self.nodes[target as usize].props;
        stack.clear();
        stack.push(from);
        while let Some(cur) = stack.pop() {
            for &c in &self.nodes[cur as usize].children {
                if c == target {
                    return true;
                }
                let cn = &self.nodes[c as usize];
                if cn.removed || visited[c as usize] == round {
                    continue;
                }
                visited[c as usize] = round;
                if cn.props.len() < target_props.len() && is_subset(&cn.props, target_props) {
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Step (2): canonicality per Proposition 12 at level `l`, removing
    /// non-canonical slices and re-linking their children.
    fn prune_non_canonical(&mut self, l: usize) {
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut visited: Vec<u32> = vec![0; self.nodes.len()];
        let mut round: u32 = 0;
        for id in ids {
            let node = &self.nodes[id as usize];
            if node.removed {
                continue;
            }
            let canonical = node.is_initial
                || node
                    .children
                    .iter()
                    .filter(|&&c| self.nodes[c as usize].canonical)
                    .count()
                    >= 2;
            if canonical {
                self.nodes[id as usize].canonical = true;
                continue;
            }
            // Remove the node; re-link children to parents unless already
            // reachable through another path. Its extent is dead weight from
            // here on — release it at this level boundary (ROADMAP
            // "Hierarchy memory") instead of holding it until the report.
            self.nodes[id as usize].removed = true;
            self.live -= 1;
            tally(KIND_NODES_PRUNED, 1);
            self.free_extent(id);
            let (parents, children) = self.unlink_all(id);
            for &p in &parents {
                for &c in &children {
                    round += 1;
                    if !self.is_descendant(p, c, &mut stack, &mut visited, round) {
                        self.link(p, c);
                    }
                }
            }
        }
    }

    /// Step (3): profit evaluation, `SLB`/`f_LB` maintenance, and low-profit
    /// pruning at level `l`.
    ///
    /// Nodes at one level are independent (each reads only its own extent
    /// and the already-finalized `SLB` data of deeper levels), so the pure
    /// computation runs through [`par_map`] and the results are written back
    /// sequentially — parallel runs are bit-identical to `threads = 1`.
    fn evaluate_and_prune_profit(&mut self, ctx: &ProfitCtx<'_>, config: &MidasConfig, l: usize) {
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        self.evaluate_ids(ctx, config, ids);
    }

    /// The shared evaluation body of [`Self::evaluate_and_prune_profit`] and
    /// [`Self::warm_patch`]: profit, `SLB` union, and the validity decision
    /// for exactly `ids` (all at one level). The two callers differ only in
    /// which ids they pass — a whole level at build time, the level's dirty
    /// subset when warm-patching — so running the identical computation and
    /// write-back here is what keeps warm results bit-identical to a fresh
    /// build.
    fn evaluate_ids(&mut self, ctx: &ProfitCtx<'_>, config: &MidasConfig, ids: Vec<NodeId>) {
        tally(KIND_NODES_EVALUATED, ids.len() as u64);
        let this: &SliceHierarchy = self;
        let evals: Vec<ProfitEval> = par_map(config.threads, ids, |id| {
            if this.nodes[id as usize].removed {
                return None;
            }
            let node = &this.nodes[id as usize];
            let profit = ctx.profit_single(&node.extent);

            // Union of the children's lower-bound slice sets (those with
            // positive lower-bound profit).
            let mut child_set: Vec<NodeId> = Vec::new();
            let mut seen: FnvHashSet<NodeId> = FnvHashSet::default();
            for &c in &node.children {
                let cn = &this.nodes[c as usize];
                if cn.slb_profit > 0.0 {
                    for &s in &cn.slb_slices {
                        if seen.insert(s) {
                            child_set.push(s);
                        }
                    }
                }
            }
            let f_child_set = if child_set.is_empty() {
                0.0
            } else {
                // Batched multi-way union into a pooled bitmap through the
                // dispatched kernels instead of merging sorted vectors
                // pairwise or marking one extent at a time — dense SLB
                // extents are OR'd in register-resident groups, and the
                // bitmap is recycled across nodes, levels, and shards.
                let extents: Vec<&ExtentSet> = child_set
                    .iter()
                    .map(|&s| this.nodes[s as usize].live_extent())
                    .collect();
                ctx.profit_of_union(&extents, child_set.len())
            };
            Some((id, profit, f_child_set, child_set))
        });

        for (id, profit, f_child_set, child_set) in evals.into_iter().flatten() {
            let node = &mut self.nodes[id as usize];
            node.profit = profit;
            if profit >= f_child_set && profit > 0.0 {
                node.slb_profit = profit;
                node.slb_slices = vec![id];
            } else if f_child_set > 0.0 {
                node.slb_profit = f_child_set;
                node.slb_slices = child_set;
            } else {
                node.slb_profit = 0.0;
                node.slb_slices = Vec::new();
            }
            if !config.disable_profit_pruning && (profit < 0.0 || profit < f_child_set) {
                node.valid = false;
            }
        }
    }

    // ---- warm re-evaluation across augmentation rounds --------------------

    /// Patches an already-built hierarchy in place after a KB insertion
    /// delta, instead of rebuilding it from the (refreshed) fact table.
    ///
    /// The hierarchy's *structure* — node set, levels, links, canonicality,
    /// removals, `nodes_created`, `capped` — is a pure function of the
    /// source's fact rows and never of KB newness, so a delta that only
    /// flips facts from *new* to *known* (the only thing
    /// [`FactTable::refresh_new_counts`] does) leaves all of it valid. What
    /// a delta can change is the profit state: `profit`, `slb_profit`,
    /// `slb_slices`, `valid`, and the freed-extent bookkeeping that hangs
    /// off `valid`. A node needs re-evaluation exactly when its extent
    /// contains an entity whose `new(e)` count changed (`changed`, from
    /// `refresh_new_counts`); that dirtiness is upward-closed (a parent's
    /// extent contains every child's), so re-running the build's own
    /// evaluation pass over just the dirty nodes, level by level from the
    /// deepest up, reproduces a fresh build bit for bit:
    ///
    /// * dirty nodes whose extent was freed (invalidated last round) get it
    ///   recomputed via [`FactTable::extent_of`] — bit-identical to the
    ///   build-time extent — because invalid→valid flips are possible
    ///   (`f_LB` can drop by more than `f({S})`);
    /// * `valid` is reset before re-evaluation and re-decided by the exact
    ///   build-time rule in [`Self::evaluate_ids`];
    /// * still-invalid dirty extents are re-freed at the level boundary
    ///   under the same config gates as [`Self::free_invalid_extents`];
    /// * clean nodes keep last round's values, which equal what a fresh
    ///   build would compute (their counts and their children's SLB state
    ///   are untouched — `SLB` members live inside the member's subtree, so
    ///   a clean node's SLB chain is clean too).
    ///
    /// Returns `false` without touching anything when the delta invalidated
    /// the structure (the entity universe widened, or a changed id falls
    /// outside it) — the caller falls back to a cold
    /// [`Self::build`]/[`Self::build_seeded`]. With today's immutable
    /// per-source fact tables this is purely defensive.
    pub fn warm_patch(
        &mut self,
        ctx: &ProfitCtx<'_>,
        config: &MidasConfig,
        changed: &[EntityId],
    ) -> bool {
        // The dirty-flag buffer is pooled. Every exit — a structure-refusal
        // `false` (the caller falls back to a cold rebuild), a budget
        // breach unwinding out of `checkpoint`, or the normal return — must
        // hand it back, or warm and cold runs end up with different pool
        // occupancy (the scratch take/put counters pinned this down). An
        // RAII holder routes all three through one `put_flags`.
        struct PooledFlags(Option<Vec<bool>>);
        impl Drop for PooledFlags {
            fn drop(&mut self) {
                if let Some(buf) = self.0.take() {
                    crate::scratch::put_flags(buf);
                }
            }
        }
        let table = ctx.table();
        let universe = table.num_entities() as u32;
        let mut holder = PooledFlags(Some(crate::scratch::take_flags(self.nodes.len())));
        let dirty: &mut [bool] = match holder.0.as_mut() {
            Some(buf) => buf,
            None => &mut [],
        };
        if let Some(node) = self.nodes.first() {
            if node.extent.universe() != universe {
                metrics::WARM_REFUSALS.inc();
                return false;
            }
        }
        if changed.iter().any(|&e| e >= universe) {
            metrics::WARM_REFUSALS.inc();
            return false;
        }
        // Dirty ⟺ the node's extent contains a changed entity. The subset
        // test on the defining property set is that same membership
        // predicate (e ∈ Π(props) ⟺ props ⊆ props(e)) and — unlike the
        // extent itself — is still answerable for nodes whose extent was
        // freed when they were invalidated.
        for (i, node) in self.nodes.iter().enumerate() {
            if node.removed {
                continue;
            }
            dirty[i] = changed
                .iter()
                .any(|&e| is_subset(&node.props, table.entity_properties(e)));
        }
        let mut patched = 0u64;
        for l in (1..=self.max_level).rev() {
            // Same cooperative budget cadence as `construct_and_prune`, so
            // budget faults fire at the same checkpoints either way.
            crate::budget::checkpoint(self.nodes_created);
            let ids: Vec<NodeId> = self
                .levels
                .get(l)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&id| dirty[id as usize])
                .collect();
            if ids.is_empty() {
                continue;
            }
            patched += ids.len() as u64;
            for &id in &ids {
                if self.nodes[id as usize].extent_freed {
                    let props = self.nodes[id as usize].props.clone();
                    let rebuilt = table.extent_of(&props);
                    let node = &mut self.nodes[id as usize];
                    std::mem::replace(&mut node.extent, rebuilt).recycle();
                    node.extent_freed = false;
                    metrics::EXTENTS_REBUILT.inc();
                }
                self.nodes[id as usize].valid = true;
            }
            self.evaluate_ids(ctx, config, ids.clone());
            if !config.retain_invalid_extents && !config.always_report_best {
                for &id in &ids {
                    let node = &self.nodes[id as usize];
                    if !node.removed && !node.valid && !node.extent_freed {
                        self.free_extent(id);
                    }
                }
            }
        }
        crate::budget::checkpoint(self.nodes_created);
        metrics::WARM_PATCHES.inc();
        metrics::NODES_WARM_PATCHED.add(patched);
        true
    }
}

/// splitmix64-style avalanche of one property id. Set hashes XOR these
/// together, so a parent's hash is `child_hash ^ prop_hash(dropped)` — O(1)
/// per candidate, no property-list allocation.
fn prop_hash(p: PropertyId) -> u64 {
    let mut z = u64::from(p).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// XOR-combined hash of a (duplicate-free) property set. Order-insensitive
/// by construction; collisions are resolved by comparing the actual sets.
fn set_hash(props: &[PropertyId]) -> u64 {
    props.iter().fold(0, |h, &p| h ^ prop_hash(p))
}

/// Does `cand` equal `props` with the element at `skip` removed?
/// Allocation-free candidate verification for parent lookups.
fn props_match_skip(cand: &[PropertyId], props: &[PropertyId], skip: usize) -> bool {
    if cand.len() + 1 != props.len() {
        return false;
    }
    let mut j = 0;
    for (i, &p) in props.iter().enumerate() {
        if i == skip {
            continue;
        }
        if cand[j] != p {
            return false;
        }
        j += 1;
    }
    true
}

/// Prefix/suffix intersection chains over a child's inverted lists:
/// `pre[i] = extent(p_0) ∩ … ∩ extent(p_{i-1})` for `i` in `1..l`, and
/// `suf[i] = extent(p_i) ∩ … ∩ extent(p_{l-1})` for `i` in `1..l`.
/// Index 0 of `pre` (and 0 / `l` of `suf`) are never read.
fn extent_chains(table: &FactTable, props: &[PropertyId]) -> (Vec<ExtentSet>, Vec<ExtentSet>) {
    let l = props.len();
    debug_assert!(l >= 2);
    let cat = table.catalog();
    let mut pre: Vec<ExtentSet> = Vec::with_capacity(l);
    pre.push(ExtentSet::empty(0));
    pre.push(cat.extent(props[0]).clone());
    for i in 2..l {
        let mut next = pre[i - 1].clone();
        next.intersect_with(cat.extent(props[i - 1]));
        pre.push(next);
    }
    let mut suf: Vec<ExtentSet> = vec![ExtentSet::empty(0); l + 1];
    suf[l - 1] = cat.extent(props[l - 1]).clone();
    for i in (1..l - 1).rev() {
        let mut next = suf[i + 1].clone();
        next.intersect_with(cat.extent(props[i]));
        suf[i] = next;
    }
    (pre, suf)
}

/// Returns the chain sets of [`extent_chains`] to the scratch pool once all
/// parent extents of a child have been derived (the derived extents are
/// clones or fresh intersections, never views into the chains).
fn recycle_chains(pre: Vec<ExtentSet>, suf: Vec<ExtentSet>) {
    for e in pre.into_iter().chain(suf) {
        e.recycle();
    }
}

fn is_subset(sub: &[PropertyId], sup: &[PropertyId]) -> bool {
    // Both sorted.
    let mut j = 0;
    for &x in sub {
        while j < sup.len() && sup[j] < x {
            j += 1;
        }
        if j >= sup.len() || sup[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::fact_table::FactTable;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;

    fn build_running_example(terms: &mut Interner) -> (FactTable, MidasConfig) {
        let (src, kb) = skyrocket(terms);
        let ft = FactTable::build(&src, &kb);
        (ft, MidasConfig::running_example())
    }

    fn prop(ft: &FactTable, t: &mut Interner, p: &str, v: &str) -> PropertyId {
        ft.catalog()
            .get(t.intern(p), t.intern(v))
            .expect("property")
    }

    fn find_node(
        h: &SliceHierarchy,
        ft: &FactTable,
        t: &mut Interner,
        props: &[(&str, &str)],
    ) -> Option<NodeId> {
        let mut ids: Vec<PropertyId> = props.iter().map(|&(p, v)| prop(ft, t, p, v)).collect();
        ids.sort_unstable();
        h.find(&ids)
    }

    #[test]
    fn initial_slices_match_figure_5a() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        // S4 is invalidated by profit pruning; retain its extent so the
        // Figure-5a coverage assertion below can still read it.
        let cfg = cfg.with_retain_invalid_extents(true);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        // Figure 5a: S1, S2, S3 at level 3 and S4 at level 2 are initial.
        let s1 = find_node(
            &h,
            &ft,
            &mut t,
            &[
                ("category", "space_program"),
                ("started", "1959"),
                ("sponsor", "NASA"),
            ],
        )
        .unwrap();
        let s2 = find_node(
            &h,
            &ft,
            &mut t,
            &[
                ("category", "rocket_family"),
                ("started", "1957"),
                ("sponsor", "NASA"),
            ],
        )
        .unwrap();
        let s3 = find_node(
            &h,
            &ft,
            &mut t,
            &[
                ("category", "rocket_family"),
                ("started", "1971"),
                ("sponsor", "NASA"),
            ],
        )
        .unwrap();
        let s4 = find_node(
            &h,
            &ft,
            &mut t,
            &[("category", "space_program"), ("sponsor", "NASA")],
        )
        .unwrap();
        for id in [s1, s2, s3, s4] {
            assert!(h.node(id).is_initial);
            assert!(h.node(id).canonical);
        }
        assert_eq!(h.node(s4).extent.len(), 3, "S4 covers e1, e2, e4");
    }

    #[test]
    fn s5_is_discovered_and_canonical() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let s5 = find_node(
            &h,
            &ft,
            &mut t,
            &[("category", "rocket_family"), ("sponsor", "NASA")],
        )
        .unwrap();
        let n = h.node(s5);
        assert!(!n.is_initial, "S5 is generated, not initial");
        assert!(n.canonical, "S5 has two canonical children S2, S3");
        assert!(n.valid, "S5 survives profit pruning");
        assert!((n.profit - 4.327).abs() < 1e-9);
        assert_eq!(n.extent.len(), 2);
    }

    #[test]
    fn non_canonical_pairs_are_removed() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        // {c1, c3} ("space programs started in 1959") selects the same
        // entity as S1 but with fewer properties — non-canonical.
        let id = find_node(
            &h,
            &ft,
            &mut t,
            &[("category", "space_program"), ("started", "1959")],
        );
        match id {
            None => {}
            Some(id) => assert!(h.node(id).removed),
        }
        // Same for {c4, c6} vs S2.
        if let Some(id) = find_node(&h, &ft, &mut t, &[("started", "1957"), ("sponsor", "NASA")]) {
            assert!(h.node(id).removed);
        }
    }

    #[test]
    fn invalid_extents_are_freed_at_level_boundaries() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        // Default: the extent of a low-profit-invalidated node is released
        // at the level boundary that invalidated it.
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let c6 = find_node(&h, &ft, &mut t, &[("sponsor", "NASA")]).unwrap();
        assert!(!h.node(c6).valid);
        assert!(h.node(c6).extent_freed, "invalid extent freed by default");
        assert!(h.node(c6).extent.is_empty(), "freed extent reads empty");
        // Opt-outs: the retain flag, and `always_report_best` (whose
        // fallback may report an invalid node) both keep extents alive.
        for cfg in [
            MidasConfig::running_example().with_retain_invalid_extents(true),
            MidasConfig {
                always_report_best: true,
                ..MidasConfig::running_example()
            },
        ] {
            let h = SliceHierarchy::build(&ft, &ctx, &cfg);
            let c6 = find_node(&h, &ft, &mut t, &[("sponsor", "NASA")]).unwrap();
            assert!(!h.node(c6).valid);
            assert!(!h.node(c6).extent_freed);
            assert!(!h.node(c6).extent.is_empty(), "retained extent readable");
        }
    }

    #[test]
    fn c6_is_canonical_but_pruned_low_profit() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let c6 = find_node(&h, &ft, &mut t, &[("sponsor", "NASA")]).unwrap();
        let n = h.node(c6);
        assert!(n.canonical, "c6 has canonical children S4 and S5");
        assert!(!n.valid, "f(c6)=4.257 < f_LB from S5=4.327");
        assert!((n.profit - 4.257).abs() < 1e-9);
        assert!((n.slb_profit - 4.327).abs() < 1e-9);
    }

    #[test]
    fn s4_and_s1_are_pruned_negative() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let s4 = find_node(
            &h,
            &ft,
            &mut t,
            &[("category", "space_program"), ("sponsor", "NASA")],
        )
        .unwrap();
        assert!(!h.node(s4).valid);
        assert!((h.node(s4).profit - (-1.083)).abs() < 1e-9);
        assert_eq!(h.node(s4).slb_profit, 0.0);
        let s1 = find_node(
            &h,
            &ft,
            &mut t,
            &[
                ("category", "space_program"),
                ("started", "1959"),
                ("sponsor", "NASA"),
            ],
        )
        .unwrap();
        assert!(!h.node(s1).valid);
        assert!((h.node(s1).profit - (-1.043)).abs() < 1e-9);
    }

    #[test]
    fn singleton_c1_to_c5_are_non_canonical() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        for (p, v) in [
            ("category", "space_program"),
            ("category", "rocket_family"),
            ("started", "1959"),
            ("started", "1957"),
            ("started", "1971"),
        ] {
            let id = find_node(&h, &ft, &mut t, &[(p, v)]).unwrap();
            assert!(
                h.node(id).removed,
                "singleton {p}={v} has one canonical child and must be removed"
            );
        }
    }

    #[test]
    fn disable_profit_pruning_keeps_all_canonical_valid() {
        let mut t = Interner::new();
        let (ft, mut cfg) = build_running_example(&mut t);
        cfg.disable_profit_pruning = true;
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        for id in h.iter() {
            assert!(h.node(id).valid);
        }
    }

    #[test]
    fn seeded_hierarchy_builds_from_property_sets() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let c2 = prop(&ft, &mut t, "category", "rocket_family");
        let c4 = prop(&ft, &mut t, "started", "1957");
        let c5 = prop(&ft, &mut t, "started", "1971");
        let c6 = prop(&ft, &mut t, "sponsor", "NASA");
        let seeds = vec![vec![c2, c4, c6], vec![c2, c5, c6]];
        let h = SliceHierarchy::build_seeded(&ft, &ctx, &cfg, &seeds);
        // The parent {c2, c6} (= S5) must be generated and canonical.
        let mut key = vec![c2, c6];
        key.sort_unstable();
        let s5 = h.find(&key).expect("S5 generated from seeds");
        assert!(h.node(s5).canonical);
        assert!(h.node(s5).valid);
    }

    #[test]
    fn empty_seed_list_yields_empty_hierarchy() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build_seeded(&ft, &ctx, &cfg, &[]);
        assert!(h.is_empty());
    }

    #[test]
    fn multi_valued_predicate_generates_capped_combinations() {
        let mut t = Interner::new();
        let mut facts = Vec::new();
        for i in 0..10 {
            facts.push(midas_kb::Fact::intern(
                &mut t,
                "cocktail",
                "ingredient",
                &format!("ing{i}"),
            ));
        }
        let src = crate::source::SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://c.com/m").unwrap(),
            facts,
        );
        let kb = midas_kb::KnowledgeBase::new();
        let ft = FactTable::build(&src, &kb);
        let mut cfg = MidasConfig::running_example();
        cfg.max_initial_combinations_per_entity = 4;
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let initial = h.iter().filter(|&id| h.node(id).is_initial).count();
        assert!(initial <= 4, "combination cap respected, got {initial}");
        assert!(initial >= 1);
    }

    #[test]
    fn parent_links_are_strict_subsets() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        for id in h.iter() {
            let n = h.node(id);
            for &c in &n.children {
                let cn = h.node(c);
                assert!(cn.props.len() > n.props.len());
                assert!(is_subset(&n.props, &cn.props));
                assert!(cn.parents.contains(&id));
            }
        }
    }

    #[test]
    fn extents_shrink_down_the_hierarchy() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        // This walks every live node's extent, including invalidated ones —
        // the introspection case the retain flag exists for.
        let cfg = cfg.with_retain_invalid_extents(true);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        for id in h.iter() {
            let n = h.node(id);
            for &c in &n.children {
                let cextent = &h.node(c).extent;
                assert!(
                    cextent.iter().all(|e| n.extent.contains(e)),
                    "child extent must be a subset of parent extent"
                );
            }
        }
    }

    #[test]
    fn is_subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn set_hash_supports_incremental_parent_keys() {
        let props = [3u32, 17, 42, 1000];
        for skip in 0..props.len() {
            let parent: Vec<PropertyId> = props
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &p)| p)
                .collect();
            assert_eq!(set_hash(&parent), set_hash(&props) ^ prop_hash(props[skip]));
        }
        assert_ne!(prop_hash(0), prop_hash(1));
    }

    #[test]
    fn props_match_skip_helper() {
        assert!(props_match_skip(&[2, 3], &[1, 2, 3], 0));
        assert!(props_match_skip(&[1, 3], &[1, 2, 3], 1));
        assert!(props_match_skip(&[1, 2], &[1, 2, 3], 2));
        assert!(!props_match_skip(&[1, 3], &[1, 2, 3], 0));
        assert!(!props_match_skip(&[1, 2, 3], &[1, 2, 3], 1));
    }

    /// The incrementally derived parent extents must equal a full
    /// re-intersection of their inverted lists.
    #[test]
    fn generated_extents_match_full_reintersection() {
        let mut t = Interner::new();
        let (ft, mut cfg) = build_running_example(&mut t);
        cfg.disable_profit_pruning = true;
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        assert!(h.max_level() >= 2);
        for id in h.iter() {
            let n = h.node(id);
            assert_eq!(n.extent, ft.extent_of(&n.props), "props {:?}", n.props);
        }
    }

    #[test]
    fn len_tracks_live_nodes() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        assert_eq!(h.len(), h.iter().count());
        assert!(!h.is_empty());
    }

    #[test]
    fn node_cap_below_seed_count_generates_nothing() {
        let mut t = Interner::new();
        let (ft, mut cfg) = build_running_example(&mut t);
        cfg.max_hierarchy_nodes = 1;
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        assert!(h.capped, "cap must be reported");
        for id in h.iter() {
            assert!(h.node(id).is_initial, "no parents may be generated");
        }
    }

    fn assert_hierarchies_identical(a: &SliceHierarchy, b: &SliceHierarchy) {
        assert_eq!(a.nodes_created, b.nodes_created);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.max_level(), b.max_level());
        assert_eq!(a.capped, b.capped);
        for id in 0..a.nodes_created {
            let (x, y) = (&a.nodes[id], &b.nodes[id]);
            assert_eq!(x.props, y.props, "node {id}");
            assert_eq!(x.extent, y.extent, "node {id}");
            assert_eq!(x.children, y.children, "node {id}");
            assert_eq!(x.parents, y.parents, "node {id}");
            assert_eq!(x.removed, y.removed, "node {id}");
            assert_eq!(x.extent_freed, y.extent_freed, "node {id}");
            assert_eq!(x.canonical, y.canonical, "node {id}");
            assert_eq!(x.valid, y.valid, "node {id}");
            assert_eq!(x.profit.to_bits(), y.profit.to_bits(), "node {id}");
            assert_eq!(x.slb_profit.to_bits(), y.slb_profit.to_bits(), "node {id}");
            assert_eq!(x.slb_slices, y.slb_slices, "node {id}");
        }
    }

    /// `threads = 4` must build a bit-identical hierarchy to `threads = 1`.
    #[test]
    fn parallel_build_is_node_for_node_identical() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h1 = SliceHierarchy::build(&ft, &ctx, &cfg);
        let h4 = SliceHierarchy::build(&ft, &ctx, &cfg.clone().with_threads(4));
        assert_hierarchies_identical(&h1, &h4);

        // Also with pruning disabled (more surviving structure to compare).
        let mut cfg_np = cfg;
        cfg_np.disable_profit_pruning = true;
        let h1 = SliceHierarchy::build(&ft, &ctx, &cfg_np);
        let h4 = SliceHierarchy::build(&ft, &ctx, &cfg_np.clone().with_threads(4));
        assert_hierarchies_identical(&h1, &h4);
    }

    /// Warm-patching last round's hierarchy after a KB insertion delta must
    /// be node-for-node identical (profit bits, SLB sets, validity, freed
    /// extents) to a fresh build over the refreshed table — repeatedly, as
    /// the augmentation loop makes one entity after another old. This walks
    /// through invalid→valid flips and freed-extent recomputation, since
    /// shrinking `new(e)` moves both `f({S})` and `f_LB(S)`.
    #[test]
    fn warm_patch_matches_fresh_build_across_kb_deltas() {
        let mut t = Interner::new();
        let (src, mut kb) = skyrocket(&mut t);
        let mut ft = FactTable::build(&src, &kb);
        let cfg = MidasConfig::running_example();
        let mut warm = {
            let ctx = ProfitCtx::new(&ft, cfg.cost);
            SliceHierarchy::build(&ft, &ctx, &cfg)
        };
        // Make one entity's facts known per iteration, as accepted rounds do.
        while let Some(eid) =
            (0..ft.num_entities() as EntityId).find(|&e| ft.row(e).iter().any(|f| kb.is_new(f)))
        {
            let subject = ft.subject(eid);
            for f in ft.row(eid).to_vec() {
                kb.insert(f);
            }
            let changed = ft.refresh_new_counts(&kb, [subject]);
            assert_eq!(changed, vec![eid]);
            ft.recalibrate_divisor();
            let ctx = ProfitCtx::new(&ft, cfg.cost);
            assert!(warm.warm_patch(&ctx, &cfg, &changed), "patchable delta");
            let fresh = SliceHierarchy::build(&ft, &ctx, &cfg);
            assert_hierarchies_identical(&warm, &fresh);
        }
    }

    /// A changed entity outside the hierarchy's universe signals a
    /// structural delta: the patch must refuse (the caller rebuilds cold).
    #[test]
    fn warm_patch_refuses_out_of_universe_delta() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let mut h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let outside = ft.num_entities() as EntityId;
        assert!(!h.warm_patch(&ctx, &cfg, &[outside]));
        // The refusal must leave the hierarchy untouched.
        let fresh = SliceHierarchy::build(&ft, &ctx, &cfg);
        assert_hierarchies_identical(&h, &fresh);
    }

    /// An empty delta is a no-op patch: everything is clean.
    #[test]
    fn warm_patch_with_no_changes_is_identity() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let mut h = SliceHierarchy::build(&ft, &ctx, &cfg);
        assert!(h.warm_patch(&ctx, &cfg, &[]));
        let fresh = SliceHierarchy::build(&ft, &ctx, &cfg);
        assert_hierarchies_identical(&h, &fresh);
    }

    /// The node cap is level-atomic: a level that starts under the cap is
    /// expanded in full (even if it overshoots), and the next level is then
    /// skipped entirely.
    #[test]
    fn node_cap_is_level_atomic() {
        let mut t = Interner::new();
        let (ft, mut cfg) = build_running_example(&mut t);
        // 4 seeds < 5, so level 3 → 2 expands fully (to 12 nodes);
        // 12 ≥ 5, so level 2 → 1 is skipped as a whole.
        cfg.max_hierarchy_nodes = 5;
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        assert!(h.capped, "cap must be reported");
        // S5 = {category=rocket_family, sponsor=NASA} is generated mid-level
        // after the count passed the cap — the level still finishes.
        let s5 = find_node(
            &h,
            &ft,
            &mut t,
            &[("category", "rocket_family"), ("sponsor", "NASA")],
        );
        assert!(s5.is_some(), "level 3 → 2 must be expanded in full");
        // No level-1 node exists at all: level 2 → 1 was skipped atomically.
        assert_eq!(h.level(1).count(), 0);
    }
}
