//! Slice-hierarchy construction (§III-A, step 1).
//!
//! The hierarchy is the property-subset lattice restricted to the property
//! sets reachable from the *initial slices* (the maximal property
//! combinations of each entity). Construction proceeds bottom-up, two levels
//! at a time, exactly as the paper describes:
//!
//! 1. **Parent generation** — each slice at level `l` (i.e. with `l`
//!    properties) generates its `l` parents by dropping one property at a
//!    time, Apriori-style.
//! 2. **Canonicality pruning** (Proposition 12) — a slice is canonical iff
//!    it is an initial slice or has at least two canonical children.
//!    Non-canonical slices are *removed*: their children are re-linked to
//!    their parents unless already reachable through another path.
//! 3. **Low-profit pruning** — a canonical slice `S` is marked invalid when
//!    `f({S}) < 0` or `f({S}) < f_LB(S)`, where `f_LB(S)` is the profit of
//!    the best known set of slices in `S`'s subtree (`SLB(S)`). Invalid
//!    slices stay in the hierarchy (they still generate parents and
//!    participate in canonicality counting) but are never reported.

use midas_kb::fnv::{FnvHashMap, FnvHashSet};

use crate::config::MidasConfig;
use crate::fact_table::{EntityId, FactTable, PropertyId};
use crate::profit::ProfitCtx;

/// Index of a node in the hierarchy.
pub type NodeId = u32;

/// One slice node.
#[derive(Debug, Clone)]
pub struct SliceNode {
    /// Defining property set, sorted by id.
    pub props: Box<[PropertyId]>,
    /// Entity extent `Π`, sorted.
    pub extent: Vec<EntityId>,
    /// Children (slices with strictly more properties).
    pub children: Vec<NodeId>,
    /// Parents (slices with strictly fewer properties).
    pub parents: Vec<NodeId>,
    /// Whether the node came from an entity (or a framework seed).
    pub is_initial: bool,
    /// Canonicality per Proposition 12 (meaningful once its level is processed).
    pub canonical: bool,
    /// `true` once the node is deleted as non-canonical.
    pub removed: bool,
    /// `false` once the node is pruned as low-profit.
    pub valid: bool,
    /// `f({S})` for this node.
    pub profit: f64,
    /// `f_LB(S)` — the subtree profit lower bound.
    pub slb_profit: f64,
    /// The slice set `SLB(S)` achieving `slb_profit`.
    pub slb_slices: Vec<NodeId>,
}

/// The constructed (and pruned) slice hierarchy of one web source.
#[derive(Debug)]
pub struct SliceHierarchy {
    nodes: Vec<SliceNode>,
    by_key: FnvHashMap<Box<[PropertyId]>, NodeId>,
    levels: Vec<Vec<NodeId>>,
    max_level: usize,
    /// Whether the node-count safety valve stopped expansion.
    pub capped: bool,
    /// Number of nodes ever created (before pruning) — reported by the
    /// pruning-effectiveness benchmarks.
    pub nodes_created: usize,
}

impl SliceHierarchy {
    /// Builds the hierarchy for `table`, seeding the initial level from the
    /// entities of the fact table (the single-source case of §III-A).
    pub fn build(table: &FactTable, ctx: &ProfitCtx<'_>, config: &MidasConfig) -> Self {
        Self::build_inner(table, ctx, config, None)
    }

    /// Builds the hierarchy with explicit initial property sets — the
    /// framework's multi-source case (§III-B), where the initial slices are
    /// the slices exported by the children sources. When `seeds` is empty
    /// the result is an empty hierarchy.
    pub fn build_seeded(
        table: &FactTable,
        ctx: &ProfitCtx<'_>,
        config: &MidasConfig,
        seeds: &[Vec<PropertyId>],
    ) -> Self {
        Self::build_inner(table, ctx, config, Some(seeds))
    }

    fn build_inner(
        table: &FactTable,
        ctx: &ProfitCtx<'_>,
        config: &MidasConfig,
        seeds: Option<&[Vec<PropertyId>]>,
    ) -> Self {
        let mut h = SliceHierarchy {
            nodes: Vec::new(),
            by_key: FnvHashMap::default(),
            levels: Vec::new(),
            max_level: 0,
            capped: false,
            nodes_created: 0,
        };
        match seeds {
            Some(seeds) => h.seed_from_property_sets(table, config, seeds),
            None => h.seed_from_entities(table, config),
        }
        h.construct_and_prune(table, ctx, config);
        h
    }

    /// Number of live (non-removed) nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| !n.removed).count()
    }

    /// Whether the hierarchy has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest level (number of properties of the most specific slice).
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &SliceNode {
        &self.nodes[id as usize]
    }

    /// Live node ids at `level`, in creation order.
    pub fn level(&self, level: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.levels
            .get(level)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&id| !self.nodes[id as usize].removed)
    }

    /// All live node ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as NodeId).filter(move |&id| !self.nodes[id as usize].removed)
    }

    /// Looks up a node by exact property set (must be sorted).
    pub fn find(&self, props: &[PropertyId]) -> Option<NodeId> {
        self.by_key.get(props).copied()
    }

    // ---- construction -----------------------------------------------------

    fn get_or_create(&mut self, table: &FactTable, props: Box<[PropertyId]>) -> NodeId {
        if let Some(&id) = self.by_key.get(&props) {
            return id;
        }
        let extent = table.extent_of(&props);
        let level = props.len();
        let id = u32::try_from(self.nodes.len()).expect("hierarchy overflow");
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
        }
        self.levels[level].push(id);
        self.max_level = self.max_level.max(level);
        self.by_key.insert(props.clone(), id);
        self.nodes.push(SliceNode {
            props,
            extent,
            children: Vec::new(),
            parents: Vec::new(),
            is_initial: false,
            canonical: false,
            removed: false,
            valid: true,
            profit: 0.0,
            slb_profit: 0.0,
            slb_slices: Vec::new(),
        });
        self.nodes_created += 1;
        id
    }

    /// Creates the initial slices from entities: for each entity, the
    /// cross-product of one property per predicate (capped).
    fn seed_from_entities(&mut self, table: &FactTable, config: &MidasConfig) {
        for e in 0..table.num_entities() as EntityId {
            let props = table.entity_properties(e);
            if props.is_empty() {
                continue;
            }
            // Group by predicate, preserving per-group value order.
            let mut groups: Vec<(midas_kb::Symbol, Vec<PropertyId>)> = Vec::new();
            for &pid in props {
                let (pred, _) = table.catalog().pair(pid);
                match groups.iter_mut().find(|(g, _)| *g == pred) {
                    Some((_, v)) => v.push(pid),
                    None => groups.push((pred, vec![pid])),
                }
            }
            // Bound the lattice: keep the most selective predicates when an
            // entity has too many.
            if groups.len() > config.max_properties_per_entity {
                groups.sort_by_key(|(_, v)| {
                    v.iter()
                        .map(|&p| table.catalog().extent(p).len())
                        .min()
                        .unwrap_or(usize::MAX)
                });
                groups.truncate(config.max_properties_per_entity);
            }
            // Cross product of one value per predicate, capped.
            let mut combos: Vec<Vec<PropertyId>> = vec![Vec::with_capacity(groups.len())];
            for (_, values) in &groups {
                let mut next = Vec::with_capacity(combos.len() * values.len());
                'outer: for combo in &combos {
                    for &v in values {
                        if next.len() + combos.len() >= config.max_initial_combinations_per_entity
                            && !next.is_empty()
                        {
                            break 'outer;
                        }
                        let mut c = combo.clone();
                        c.push(v);
                        next.push(c);
                    }
                }
                combos = next;
            }
            for mut combo in combos {
                combo.sort_unstable();
                let id = self.get_or_create(table, combo.into_boxed_slice());
                self.nodes[id as usize].is_initial = true;
            }
        }
    }

    fn seed_from_property_sets(
        &mut self,
        table: &FactTable,
        _config: &MidasConfig,
        seeds: &[Vec<PropertyId>],
    ) {
        for seed in seeds {
            let mut s = seed.clone();
            s.sort_unstable();
            s.dedup();
            if s.is_empty() {
                continue;
            }
            let id = self.get_or_create(table, s.into_boxed_slice());
            let node = &mut self.nodes[id as usize];
            if node.extent.is_empty() {
                // A seed that matches no entity in this table carries no
                // facts; drop it outright.
                node.removed = true;
                continue;
            }
            node.is_initial = true;
        }
    }

    fn construct_and_prune(&mut self, table: &FactTable, ctx: &ProfitCtx<'_>, config: &MidasConfig) {
        for l in (1..=self.max_level).rev() {
            if l > 1 {
                self.generate_parents(table, config, l);
            }
            self.prune_non_canonical(l);
            self.evaluate_and_prune_profit(ctx, config, l);
        }
    }

    /// Step (1): generate the `l` parents of every slice at level `l`.
    fn generate_parents(&mut self, table: &FactTable, config: &MidasConfig, l: usize) {
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        for id in ids {
            if self.nodes[id as usize].removed {
                continue;
            }
            if self.nodes.len() >= config.max_hierarchy_nodes {
                self.capped = true;
                return;
            }
            let props = self.nodes[id as usize].props.clone();
            for skip in 0..props.len() {
                let parent_props: Box<[PropertyId]> = props
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &p)| p)
                    .collect();
                let pid = self.get_or_create(table, parent_props);
                self.link(pid, id);
            }
        }
    }

    fn link(&mut self, parent: NodeId, child: NodeId) {
        if !self.nodes[parent as usize].children.contains(&child) {
            self.nodes[parent as usize].children.push(child);
            self.nodes[child as usize].parents.push(parent);
        }
    }

    fn unlink_all(&mut self, id: NodeId) -> (Vec<NodeId>, Vec<NodeId>) {
        let parents = std::mem::take(&mut self.nodes[id as usize].parents);
        let children = std::mem::take(&mut self.nodes[id as usize].children);
        for &p in &parents {
            self.nodes[p as usize].children.retain(|&c| c != id);
        }
        for &c in &children {
            self.nodes[c as usize].parents.retain(|&p| p != id);
        }
        (parents, children)
    }

    /// Whether `target` is reachable from `from` through live children links.
    /// Links always point from a property subset to a strict superset, so the
    /// search only descends into nodes whose property set is a subset of the
    /// target's.
    fn is_descendant(&self, from: NodeId, target: NodeId) -> bool {
        let target_props = &self.nodes[target as usize].props;
        let mut stack: Vec<NodeId> = vec![from];
        let mut visited: FnvHashSet<NodeId> = FnvHashSet::default();
        while let Some(cur) = stack.pop() {
            for &c in &self.nodes[cur as usize].children {
                if c == target {
                    return true;
                }
                let cn = &self.nodes[c as usize];
                if cn.removed || !visited.insert(c) {
                    continue;
                }
                if cn.props.len() < target_props.len() && is_subset(&cn.props, target_props) {
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Step (2): canonicality per Proposition 12 at level `l`, removing
    /// non-canonical slices and re-linking their children.
    fn prune_non_canonical(&mut self, l: usize) {
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        for id in ids {
            let node = &self.nodes[id as usize];
            if node.removed {
                continue;
            }
            let canonical = node.is_initial
                || node
                    .children
                    .iter()
                    .filter(|&&c| self.nodes[c as usize].canonical)
                    .count()
                    >= 2;
            if canonical {
                self.nodes[id as usize].canonical = true;
                continue;
            }
            // Remove the node; re-link children to parents unless already
            // reachable through another path.
            self.nodes[id as usize].removed = true;
            let (parents, children) = self.unlink_all(id);
            for &p in &parents {
                for &c in &children {
                    if !self.is_descendant(p, c) {
                        self.link(p, c);
                    }
                }
            }
        }
    }

    /// Step (3): profit evaluation, `SLB`/`f_LB` maintenance, and low-profit
    /// pruning at level `l`.
    fn evaluate_and_prune_profit(&mut self, ctx: &ProfitCtx<'_>, config: &MidasConfig, l: usize) {
        let ids: Vec<NodeId> = self.levels.get(l).cloned().unwrap_or_default();
        for id in ids {
            if self.nodes[id as usize].removed {
                continue;
            }
            let profit = ctx.profit_single(&self.nodes[id as usize].extent);

            // Union of the children's lower-bound slice sets (those with
            // positive lower-bound profit).
            let mut child_set: Vec<NodeId> = Vec::new();
            {
                let node = &self.nodes[id as usize];
                let mut seen: FnvHashSet<NodeId> = FnvHashSet::default();
                for &c in &node.children {
                    let cn = &self.nodes[c as usize];
                    if cn.slb_profit > 0.0 {
                        for &s in &cn.slb_slices {
                            if seen.insert(s) {
                                child_set.push(s);
                            }
                        }
                    }
                }
            }
            let f_child_set = if child_set.is_empty() {
                0.0
            } else {
                let mut union: FnvHashSet<EntityId> = FnvHashSet::default();
                for &s in &child_set {
                    union.extend(self.nodes[s as usize].extent.iter().copied());
                }
                let mut new_facts = 0u64;
                let mut total_facts = 0u64;
                for &e in &union {
                    new_facts += u64::from(ctx.table().new_of(e));
                    total_facts += u64::from(ctx.table().facts_of(e));
                }
                ctx.profit_from_counts(new_facts, total_facts, child_set.len())
            };

            let node = &mut self.nodes[id as usize];
            node.profit = profit;
            if profit >= f_child_set && profit > 0.0 {
                node.slb_profit = profit;
                node.slb_slices = vec![id];
            } else if f_child_set > 0.0 {
                node.slb_profit = f_child_set;
                node.slb_slices = child_set;
            } else {
                node.slb_profit = 0.0;
                node.slb_slices = Vec::new();
            }
            if !config.disable_profit_pruning && (profit < 0.0 || profit < f_child_set) {
                node.valid = false;
            }
        }
    }
}

fn is_subset(sub: &[PropertyId], sup: &[PropertyId]) -> bool {
    // Both sorted.
    let mut j = 0;
    for &x in sub {
        while j < sup.len() && sup[j] < x {
            j += 1;
        }
        if j >= sup.len() || sup[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::fact_table::FactTable;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;

    fn build_running_example(
        terms: &mut Interner,
    ) -> (FactTable, MidasConfig) {
        let (src, kb) = skyrocket(terms);
        let ft = FactTable::build(&src, &kb);
        (ft, MidasConfig::running_example())
    }

    fn prop(ft: &FactTable, t: &mut Interner, p: &str, v: &str) -> PropertyId {
        ft.catalog().get(t.intern(p), t.intern(v)).expect("property")
    }

    fn find_node(
        h: &SliceHierarchy,
        ft: &FactTable,
        t: &mut Interner,
        props: &[(&str, &str)],
    ) -> Option<NodeId> {
        let mut ids: Vec<PropertyId> = props.iter().map(|&(p, v)| prop(ft, t, p, v)).collect();
        ids.sort_unstable();
        h.find(&ids)
    }

    #[test]
    fn initial_slices_match_figure_5a() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        // Figure 5a: S1, S2, S3 at level 3 and S4 at level 2 are initial.
        let s1 = find_node(&h, &ft, &mut t, &[("category", "space_program"), ("started", "1959"), ("sponsor", "NASA")]).unwrap();
        let s2 = find_node(&h, &ft, &mut t, &[("category", "rocket_family"), ("started", "1957"), ("sponsor", "NASA")]).unwrap();
        let s3 = find_node(&h, &ft, &mut t, &[("category", "rocket_family"), ("started", "1971"), ("sponsor", "NASA")]).unwrap();
        let s4 = find_node(&h, &ft, &mut t, &[("category", "space_program"), ("sponsor", "NASA")]).unwrap();
        for id in [s1, s2, s3, s4] {
            assert!(h.node(id).is_initial);
            assert!(h.node(id).canonical);
        }
        assert_eq!(h.node(s4).extent.len(), 3, "S4 covers e1, e2, e4");
    }

    #[test]
    fn s5_is_discovered_and_canonical() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let s5 = find_node(&h, &ft, &mut t, &[("category", "rocket_family"), ("sponsor", "NASA")]).unwrap();
        let n = h.node(s5);
        assert!(!n.is_initial, "S5 is generated, not initial");
        assert!(n.canonical, "S5 has two canonical children S2, S3");
        assert!(n.valid, "S5 survives profit pruning");
        assert!((n.profit - 4.327).abs() < 1e-9);
        assert_eq!(n.extent.len(), 2);
    }

    #[test]
    fn non_canonical_pairs_are_removed() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        // {c1, c3} ("space programs started in 1959") selects the same
        // entity as S1 but with fewer properties — non-canonical.
        let id = find_node(&h, &ft, &mut t, &[("category", "space_program"), ("started", "1959")]);
        match id {
            None => {}
            Some(id) => assert!(h.node(id).removed),
        }
        // Same for {c4, c6} vs S2.
        if let Some(id) = find_node(&h, &ft, &mut t, &[("started", "1957"), ("sponsor", "NASA")]) {
            assert!(h.node(id).removed);
        }
    }

    #[test]
    fn c6_is_canonical_but_pruned_low_profit() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let c6 = find_node(&h, &ft, &mut t, &[("sponsor", "NASA")]).unwrap();
        let n = h.node(c6);
        assert!(n.canonical, "c6 has canonical children S4 and S5");
        assert!(!n.valid, "f(c6)=4.257 < f_LB from S5=4.327");
        assert!((n.profit - 4.257).abs() < 1e-9);
        assert!((n.slb_profit - 4.327).abs() < 1e-9);
    }

    #[test]
    fn s4_and_s1_are_pruned_negative() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let s4 = find_node(&h, &ft, &mut t, &[("category", "space_program"), ("sponsor", "NASA")]).unwrap();
        assert!(!h.node(s4).valid);
        assert!((h.node(s4).profit - (-1.083)).abs() < 1e-9);
        assert_eq!(h.node(s4).slb_profit, 0.0);
        let s1 = find_node(&h, &ft, &mut t, &[("category", "space_program"), ("started", "1959"), ("sponsor", "NASA")]).unwrap();
        assert!(!h.node(s1).valid);
        assert!((h.node(s1).profit - (-1.043)).abs() < 1e-9);
    }

    #[test]
    fn singleton_c1_to_c5_are_non_canonical() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        for (p, v) in [
            ("category", "space_program"),
            ("category", "rocket_family"),
            ("started", "1959"),
            ("started", "1957"),
            ("started", "1971"),
        ] {
            let id = find_node(&h, &ft, &mut t, &[(p, v)]).unwrap();
            assert!(
                h.node(id).removed,
                "singleton {p}={v} has one canonical child and must be removed"
            );
        }
    }

    #[test]
    fn disable_profit_pruning_keeps_all_canonical_valid() {
        let mut t = Interner::new();
        let (ft, mut cfg) = build_running_example(&mut t);
        cfg.disable_profit_pruning = true;
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        for id in h.iter() {
            assert!(h.node(id).valid);
        }
    }

    #[test]
    fn seeded_hierarchy_builds_from_property_sets() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let c2 = prop(&ft, &mut t, "category", "rocket_family");
        let c4 = prop(&ft, &mut t, "started", "1957");
        let c5 = prop(&ft, &mut t, "started", "1971");
        let c6 = prop(&ft, &mut t, "sponsor", "NASA");
        let seeds = vec![vec![c2, c4, c6], vec![c2, c5, c6]];
        let h = SliceHierarchy::build_seeded(&ft, &ctx, &cfg, &seeds);
        // The parent {c2, c6} (= S5) must be generated and canonical.
        let mut key = vec![c2, c6];
        key.sort_unstable();
        let s5 = h.find(&key).expect("S5 generated from seeds");
        assert!(h.node(s5).canonical);
        assert!(h.node(s5).valid);
    }

    #[test]
    fn empty_seed_list_yields_empty_hierarchy() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build_seeded(&ft, &ctx, &cfg, &[]);
        assert!(h.is_empty());
    }

    #[test]
    fn multi_valued_predicate_generates_capped_combinations() {
        let mut t = Interner::new();
        let mut facts = Vec::new();
        for i in 0..10 {
            facts.push(midas_kb::Fact::intern(
                &mut t,
                "cocktail",
                "ingredient",
                &format!("ing{i}"),
            ));
        }
        let src = crate::source::SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://c.com/m").unwrap(),
            facts,
        );
        let kb = midas_kb::KnowledgeBase::new();
        let ft = FactTable::build(&src, &kb);
        let mut cfg = MidasConfig::running_example();
        cfg.max_initial_combinations_per_entity = 4;
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        let initial = h.iter().filter(|&id| h.node(id).is_initial).count();
        assert!(initial <= 4, "combination cap respected, got {initial}");
        assert!(initial >= 1);
    }

    #[test]
    fn parent_links_are_strict_subsets() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        for id in h.iter() {
            let n = h.node(id);
            for &c in &n.children {
                let cn = h.node(c);
                assert!(cn.props.len() > n.props.len());
                assert!(is_subset(&n.props, &cn.props));
                assert!(cn.parents.contains(&id));
            }
        }
    }

    #[test]
    fn extents_shrink_down_the_hierarchy() {
        let mut t = Interner::new();
        let (ft, cfg) = build_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let h = SliceHierarchy::build(&ft, &ctx, &cfg);
        for id in h.iter() {
            let n = h.node(id);
            for &c in &n.children {
                let cextent = &h.node(c).extent;
                assert!(
                    cextent.iter().all(|e| n.extent.contains(e)),
                    "child extent must be a subset of parent extent"
                );
            }
        }
    }

    #[test]
    fn is_subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }
}
