//! Runtime-dispatched block kernels for the dense extent path.
//!
//! Every dense-bitmap loop in the engine — intersection, union, subset
//! probes, popcounts, and the batched multi-way union — funnels through
//! the free functions in this module. Each forwards through a per-process
//! [`KernelOps`] table selected exactly once (a `OnceLock`): the portable
//! 4×`u64` unrolled scalar kernels everywhere, or AVX2 implementations
//! (`std::arch` intrinsics behind `is_x86_feature_detected!`) when the
//! host supports them.
//!
//! Selection honours the `MIDAS_KERNEL` environment variable:
//!
//! * `auto` (or unset) — AVX2 when detected, scalar otherwise;
//! * `scalar` — force the portable kernels (used by the differential
//!   suites and the `check.sh` kernel lane);
//! * `avx2` — force AVX2, panicking if the host lacks it (so a CI lane
//!   that believes it runs on AVX2 hardware fails loudly instead of
//!   silently benchmarking scalar code).
//!
//! **Bit-identity contract:** every implementation of an entry point must
//! return exactly the same bytes and counts as the scalar kernel for the
//! same inputs. The SIMD kernels only reassociate popcount additions over
//! `u64` lane counts, which is exact; there is no floating point anywhere
//! in this layer. `tests/kernel_differential.rs` enforces the contract on
//! randomized inputs, and the streaming/incremental equivalence suites
//! re-run end-to-end under `MIDAS_KERNEL=scalar` to pin report
//! byte-identity.
//!
//! **Safety argument** for the AVX2 path: the intrinsics bodies are
//! `#[target_feature(enable = "avx2")] unsafe fn`s, sound only on hosts
//! with AVX2. They are reachable solely through the safe shims in
//! `avx2_entry`, which are referenced solely by the `AVX2` ops table,
//! which is handed out solely by [`avx2_ops`] — and `avx2_ops` returns
//! `Some` only after `is_x86_feature_detected!("avx2")` confirms the
//! host executes every instruction the bodies use. No other path reaches
//! the `unsafe` code, so the detection check is the single gate.

use std::sync::OnceLock;

/// A resolved kernel implementation: one function pointer per dense-block
/// entry point. Tables are `'static` and selected once per process; see
/// [`active`].
pub struct KernelOps {
    /// Implementation name as reported by diagnostics and benches
    /// (`"scalar"` or `"avx2"`).
    pub name: &'static str,
    /// `out = a & b`; returns the popcount of the result.
    pub and_into: fn(&mut [u64], &[u64], &[u64]) -> u32,
    /// `out = a | b`; returns the popcount of the result.
    pub or_into: fn(&mut [u64], &[u64], &[u64]) -> u32,
    /// `out = a & !b`; returns the popcount of the result.
    pub andnot_into: fn(&mut [u64], &[u64], &[u64]) -> u32,
    /// `a &= b` in place; returns the popcount of the result.
    pub and_assign: fn(&mut [u64], &[u64]) -> u32,
    /// `a |= b` in place; returns the popcount of the result.
    pub or_assign: fn(&mut [u64], &[u64]) -> u32,
    /// Popcount over all blocks.
    pub count: fn(&[u64]) -> u32,
    /// Whether every set bit of `a` is also set in `b`.
    pub is_subset: fn(&[u64], &[u64]) -> bool,
    /// `acc |= src` for every source in one pass over memory; returns the
    /// popcount of the final `acc`.
    pub union_into: fn(&mut [u64], &[&[u64]]) -> u32,
}

/// Portable 4×`u64` unrolled kernels over `chunks_exact(4)` plus a scalar
/// remainder. The fixed-width chunks give the compiler straight-line
/// bodies it can keep in registers and auto-vectorise (two 128-bit or one
/// 256-bit op per chunk), which the iterator-chained forms do not
/// reliably achieve.
mod scalar {
    /// `out = a & b`; returns the popcount of the result.
    pub fn and_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        debug_assert!(out.len() == a.len() && a.len() == b.len());
        let mut count = 0u32;
        let mut co = out.chunks_exact_mut(4);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for ((o, x), y) in (&mut co).zip(&mut ca).zip(&mut cb) {
            let w0 = x[0] & y[0];
            let w1 = x[1] & y[1];
            let w2 = x[2] & y[2];
            let w3 = x[3] & y[3];
            o[0] = w0;
            o[1] = w1;
            o[2] = w2;
            o[3] = w3;
            count += w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones();
        }
        for ((o, x), y) in co
            .into_remainder()
            .iter_mut()
            .zip(ca.remainder())
            .zip(cb.remainder())
        {
            let w = x & y;
            *o = w;
            count += w.count_ones();
        }
        count
    }

    /// `out = a | b`; returns the popcount of the result.
    pub fn or_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        debug_assert!(out.len() == a.len() && a.len() == b.len());
        let mut count = 0u32;
        let mut co = out.chunks_exact_mut(4);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for ((o, x), y) in (&mut co).zip(&mut ca).zip(&mut cb) {
            let w0 = x[0] | y[0];
            let w1 = x[1] | y[1];
            let w2 = x[2] | y[2];
            let w3 = x[3] | y[3];
            o[0] = w0;
            o[1] = w1;
            o[2] = w2;
            o[3] = w3;
            count += w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones();
        }
        for ((o, x), y) in co
            .into_remainder()
            .iter_mut()
            .zip(ca.remainder())
            .zip(cb.remainder())
        {
            let w = x | y;
            *o = w;
            count += w.count_ones();
        }
        count
    }

    /// `out = a & !b`; returns the popcount of the result.
    pub fn andnot_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        debug_assert!(out.len() == a.len() && a.len() == b.len());
        let mut count = 0u32;
        let mut co = out.chunks_exact_mut(4);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for ((o, x), y) in (&mut co).zip(&mut ca).zip(&mut cb) {
            let w0 = x[0] & !y[0];
            let w1 = x[1] & !y[1];
            let w2 = x[2] & !y[2];
            let w3 = x[3] & !y[3];
            o[0] = w0;
            o[1] = w1;
            o[2] = w2;
            o[3] = w3;
            count += w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones();
        }
        for ((o, x), y) in co
            .into_remainder()
            .iter_mut()
            .zip(ca.remainder())
            .zip(cb.remainder())
        {
            let w = x & !y;
            *o = w;
            count += w.count_ones();
        }
        count
    }

    /// `a &= b` in place; returns the popcount of the result.
    pub fn and_assign(a: &mut [u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let mut count = 0u32;
        let mut ca = a.chunks_exact_mut(4);
        let mut cb = b.chunks_exact(4);
        for (x, y) in (&mut ca).zip(&mut cb) {
            let w0 = x[0] & y[0];
            let w1 = x[1] & y[1];
            let w2 = x[2] & y[2];
            let w3 = x[3] & y[3];
            x[0] = w0;
            x[1] = w1;
            x[2] = w2;
            x[3] = w3;
            count += w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones();
        }
        for (x, y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
            *x &= y;
            count += x.count_ones();
        }
        count
    }

    /// `a |= b` in place; returns the popcount of the result.
    pub fn or_assign(a: &mut [u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let mut count = 0u32;
        let mut ca = a.chunks_exact_mut(4);
        let mut cb = b.chunks_exact(4);
        for (x, y) in (&mut ca).zip(&mut cb) {
            let w0 = x[0] | y[0];
            let w1 = x[1] | y[1];
            let w2 = x[2] | y[2];
            let w3 = x[3] | y[3];
            x[0] = w0;
            x[1] = w1;
            x[2] = w2;
            x[3] = w3;
            count += w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones();
        }
        for (x, y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
            *x |= y;
            count += x.count_ones();
        }
        count
    }

    /// Popcount over all blocks.
    pub fn count(blocks: &[u64]) -> u32 {
        let mut c = 0u32;
        let chunks = blocks.chunks_exact(4);
        let rem = chunks.remainder();
        for w in chunks {
            c += w[0].count_ones() + w[1].count_ones() + w[2].count_ones() + w[3].count_ones();
        }
        for w in rem {
            c += w.count_ones();
        }
        c
    }

    /// Whether every set bit of `a` is also set in `b`.
    pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let ca = a.chunks_exact(4);
        let cb = b.chunks_exact(4);
        let (ra, rb) = (ca.remainder(), cb.remainder());
        for (x, y) in ca.zip(cb) {
            let stray = (x[0] & !y[0]) | (x[1] & !y[1]) | (x[2] & !y[2]) | (x[3] & !y[3]);
            if stray != 0 {
                return false;
            }
        }
        ra.iter().zip(rb).all(|(x, y)| x & !y == 0)
    }

    /// `acc |= src` for every source in one pass; returns the popcount of
    /// the final `acc`. All sources are read once per 4-word group so the
    /// accumulator words stay in registers across the whole group.
    pub fn union_into(acc: &mut [u64], srcs: &[&[u64]]) -> u32 {
        for s in srcs {
            debug_assert_eq!(s.len(), acc.len());
        }
        let n = acc.len();
        let mut count = 0u32;
        let mut i = 0usize;
        while i + 4 <= n {
            let mut w0 = acc[i];
            let mut w1 = acc[i + 1];
            let mut w2 = acc[i + 2];
            let mut w3 = acc[i + 3];
            for s in srcs {
                w0 |= s[i];
                w1 |= s[i + 1];
                w2 |= s[i + 2];
                w3 |= s[i + 3];
            }
            acc[i] = w0;
            acc[i + 1] = w1;
            acc[i + 2] = w2;
            acc[i + 3] = w3;
            count += w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones();
            i += 4;
        }
        while i < n {
            let mut w = acc[i];
            for s in srcs {
                w |= s[i];
            }
            acc[i] = w;
            count += w.count_ones();
            i += 1;
        }
        count
    }
}

/// AVX2 kernels: 256-bit lanes cover 4 `u64` blocks per op, popcounts via
/// the nibble-LUT (`_mm256_shuffle_epi8` + `_mm256_sad_epu8`) reduction,
/// subset probes via `_mm256_testc_si256`, plus the same scalar remainder
/// tails as the portable kernels so counts stay bit-identical at every
/// length. All loads/stores are unaligned (`loadu`/`storeu`): extent
/// blocks live in `Vec<u64>`/mmap'd columns with 8-byte alignment only.
///
/// Every fn here is `unsafe` + `#[target_feature(enable = "avx2")]`; the
/// module-level safety argument (single detection gate in [`avx2_ops`])
/// is in the crate docs above.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Per-64-bit-lane popcount of `v`, added into `acc`. Classic nibble
    /// LUT: split each byte into nibbles, look both up in a per-lane
    /// 16-entry table via `shuffle_epi8`, then `sad_epu8` horizontally
    /// sums the 8 byte-counts of each 64-bit lane into that lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_accum(v: __m256i, acc: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()))
    }

    /// Horizontal sum of the four 64-bit lanes of a popcount accumulator.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes[0] + lanes[1] + lanes[2] + lanes[3]
    }

    /// `out = a & b`; returns the popcount of the result.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        let n = out.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let w = _mm256_and_si256(x, y);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), w);
            acc = popcount_accum(w, acc);
            i += 4;
        }
        let mut count = hsum(acc) as u32;
        while i < n {
            let w = a[i] & b[i];
            out[i] = w;
            count += w.count_ones();
            i += 1;
        }
        count
    }

    /// `out = a | b`; returns the popcount of the result.
    #[target_feature(enable = "avx2")]
    pub unsafe fn or_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        let n = out.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let w = _mm256_or_si256(x, y);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), w);
            acc = popcount_accum(w, acc);
            i += 4;
        }
        let mut count = hsum(acc) as u32;
        while i < n {
            let w = a[i] | b[i];
            out[i] = w;
            count += w.count_ones();
            i += 1;
        }
        count
    }

    /// `out = a & !b`; returns the popcount of the result.
    #[target_feature(enable = "avx2")]
    pub unsafe fn andnot_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        let n = out.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            // andnot(y, x) computes !y & x, i.e. x & !y.
            let w = _mm256_andnot_si256(y, x);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), w);
            acc = popcount_accum(w, acc);
            i += 4;
        }
        let mut count = hsum(acc) as u32;
        while i < n {
            let w = a[i] & !b[i];
            out[i] = w;
            count += w.count_ones();
            i += 1;
        }
        count
    }

    /// `a &= b` in place; returns the popcount of the result.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_assign(a: &mut [u64], b: &[u64]) -> u32 {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let w = _mm256_and_si256(x, y);
            _mm256_storeu_si256(a.as_mut_ptr().add(i).cast(), w);
            acc = popcount_accum(w, acc);
            i += 4;
        }
        let mut count = hsum(acc) as u32;
        while i < n {
            let w = a[i] & b[i];
            a[i] = w;
            count += w.count_ones();
            i += 1;
        }
        count
    }

    /// `a |= b` in place; returns the popcount of the result.
    #[target_feature(enable = "avx2")]
    pub unsafe fn or_assign(a: &mut [u64], b: &[u64]) -> u32 {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let w = _mm256_or_si256(x, y);
            _mm256_storeu_si256(a.as_mut_ptr().add(i).cast(), w);
            acc = popcount_accum(w, acc);
            i += 4;
        }
        let mut count = hsum(acc) as u32;
        while i < n {
            let w = a[i] | b[i];
            a[i] = w;
            count += w.count_ones();
            i += 1;
        }
        count
    }

    /// Popcount over all blocks.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count(blocks: &[u64]) -> u32 {
        let n = blocks.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(blocks.as_ptr().add(i).cast());
            acc = popcount_accum(v, acc);
            i += 4;
        }
        let mut c = hsum(acc) as u32;
        while i < n {
            c += blocks[i].count_ones();
            i += 1;
        }
        c
    }

    /// Whether every set bit of `a` is also set in `b`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn is_subset(a: &[u64], b: &[u64]) -> bool {
        let n = a.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            // testc(y, x) sets CF iff (!y & x) == 0, i.e. x ⊆ y.
            if _mm256_testc_si256(y, x) == 0 {
                return false;
            }
            i += 4;
        }
        while i < n {
            if a[i] & !b[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// `acc |= src` for every source in one pass; returns the popcount of
    /// the final `acc`. The 256-bit accumulator stays in a register while
    /// every source contributes its 4-word group, so N-way unions read
    /// and write `acc` once instead of N times.
    #[target_feature(enable = "avx2")]
    pub unsafe fn union_into(acc: &mut [u64], srcs: &[&[u64]]) -> u32 {
        let n = acc.len();
        let mut pc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let mut w = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
            for s in srcs {
                w = _mm256_or_si256(w, _mm256_loadu_si256(s.as_ptr().add(i).cast()));
            }
            _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), w);
            pc = popcount_accum(w, pc);
            i += 4;
        }
        let mut count = hsum(pc) as u32;
        while i < n {
            let mut w = acc[i];
            for s in srcs {
                w |= s[i];
            }
            acc[i] = w;
            count += w.count_ones();
            i += 1;
        }
        count
    }
}

/// Safe, fn-pointer-compatible shims over the AVX2 implementations.
///
/// SAFETY: these shims are referenced only by the `AVX2` ops table, which
/// is handed out only by [`avx2_ops`] after `is_x86_feature_detected!`
/// confirms the host supports AVX2 — the single gate described in the
/// module docs. Lengths are validated by the public wrappers' debug
/// asserts and by the kernels' own remainder handling.
#[cfg(target_arch = "x86_64")]
mod avx2_entry {
    use super::avx2;

    pub fn and_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: reachable only via the detection-gated `AVX2` table.
        unsafe { avx2::and_into(out, a, b) }
    }

    pub fn or_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: reachable only via the detection-gated `AVX2` table.
        unsafe { avx2::or_into(out, a, b) }
    }

    pub fn andnot_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: reachable only via the detection-gated `AVX2` table.
        unsafe { avx2::andnot_into(out, a, b) }
    }

    pub fn and_assign(a: &mut [u64], b: &[u64]) -> u32 {
        // SAFETY: reachable only via the detection-gated `AVX2` table.
        unsafe { avx2::and_assign(a, b) }
    }

    pub fn or_assign(a: &mut [u64], b: &[u64]) -> u32 {
        // SAFETY: reachable only via the detection-gated `AVX2` table.
        unsafe { avx2::or_assign(a, b) }
    }

    pub fn count(blocks: &[u64]) -> u32 {
        // SAFETY: reachable only via the detection-gated `AVX2` table.
        unsafe { avx2::count(blocks) }
    }

    pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
        // SAFETY: reachable only via the detection-gated `AVX2` table.
        unsafe { avx2::is_subset(a, b) }
    }

    pub fn union_into(acc: &mut [u64], srcs: &[&[u64]]) -> u32 {
        // SAFETY: reachable only via the detection-gated `AVX2` table.
        unsafe { avx2::union_into(acc, srcs) }
    }
}

static SCALAR: KernelOps = KernelOps {
    name: "scalar",
    and_into: scalar::and_into,
    or_into: scalar::or_into,
    andnot_into: scalar::andnot_into,
    and_assign: scalar::and_assign,
    or_assign: scalar::or_assign,
    count: scalar::count,
    is_subset: scalar::is_subset,
    union_into: scalar::union_into,
};

#[cfg(target_arch = "x86_64")]
static AVX2: KernelOps = KernelOps {
    name: "avx2",
    and_into: avx2_entry::and_into,
    or_into: avx2_entry::or_into,
    andnot_into: avx2_entry::andnot_into,
    and_assign: avx2_entry::and_assign,
    or_assign: avx2_entry::or_assign,
    count: avx2_entry::count,
    is_subset: avx2_entry::is_subset,
    union_into: avx2_entry::union_into,
};

/// The portable scalar ops table (always available).
pub fn scalar_ops() -> &'static KernelOps {
    &SCALAR
}

/// The AVX2 ops table, or `None` when the host CPU (or target arch)
/// lacks AVX2. This detection check is the single safety gate for every
/// `unsafe` kernel body — see the module docs.
#[cfg(target_arch = "x86_64")]
pub fn avx2_ops() -> Option<&'static KernelOps> {
    if is_x86_feature_detected!("avx2") {
        Some(&AVX2)
    } else {
        None
    }
}

/// The AVX2 ops table, or `None` when the host CPU (or target arch)
/// lacks AVX2.
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_ops() -> Option<&'static KernelOps> {
    None
}

/// Telemetry for the kernel layer: which table won dispatch, and call /
/// word volumes per entry point. The wrappers tally through [`tally`] —
/// one enabled check, then two sharded relaxed adds — so the disabled
/// path costs a single predictable branch per kernel call.
mod metrics {
    crate::counter!(pub DISPATCH_SCALAR, "kernel.dispatch.scalar");
    crate::counter!(pub DISPATCH_AVX2, "kernel.dispatch.avx2");
    crate::counter!(pub AND_INTO_CALLS, "kernel.and_into.calls");
    crate::counter!(pub AND_INTO_WORDS, "kernel.and_into.words");
    crate::counter!(pub OR_INTO_CALLS, "kernel.or_into.calls");
    crate::counter!(pub OR_INTO_WORDS, "kernel.or_into.words");
    crate::counter!(pub ANDNOT_INTO_CALLS, "kernel.andnot_into.calls");
    crate::counter!(pub ANDNOT_INTO_WORDS, "kernel.andnot_into.words");
    crate::counter!(pub AND_ASSIGN_CALLS, "kernel.and_assign.calls");
    crate::counter!(pub AND_ASSIGN_WORDS, "kernel.and_assign.words");
    crate::counter!(pub OR_ASSIGN_CALLS, "kernel.or_assign.calls");
    crate::counter!(pub OR_ASSIGN_WORDS, "kernel.or_assign.words");
    crate::counter!(pub COUNT_CALLS, "kernel.count.calls");
    crate::counter!(pub COUNT_WORDS, "kernel.count.words");
    crate::counter!(pub IS_SUBSET_CALLS, "kernel.is_subset.calls");
    crate::counter!(pub IS_SUBSET_WORDS, "kernel.is_subset.words");
    crate::counter!(pub UNION_INTO_CALLS, "kernel.union_into.calls");
    crate::counter!(pub UNION_INTO_WORDS, "kernel.union_into.words");
}

/// Row indices into the thread-local kernel tally, one per public op.
const OP_AND_INTO: usize = 0;
const OP_OR_INTO: usize = 1;
const OP_ANDNOT_INTO: usize = 2;
const OP_AND_ASSIGN: usize = 3;
const OP_OR_ASSIGN: usize = 4;
const OP_COUNT: usize = 5;
const OP_IS_SUBSET: usize = 6;
const OP_UNION_INTO: usize = 7;
const NUM_OPS: usize = 8;

/// The shared `(calls, words)` counter pair behind each tally row.
static OP_SINKS: [(&crate::telemetry::Counter, &crate::telemetry::Counter); NUM_OPS] = [
    (&metrics::AND_INTO_CALLS, &metrics::AND_INTO_WORDS),
    (&metrics::OR_INTO_CALLS, &metrics::OR_INTO_WORDS),
    (&metrics::ANDNOT_INTO_CALLS, &metrics::ANDNOT_INTO_WORDS),
    (&metrics::AND_ASSIGN_CALLS, &metrics::AND_ASSIGN_WORDS),
    (&metrics::OR_ASSIGN_CALLS, &metrics::OR_ASSIGN_WORDS),
    (&metrics::COUNT_CALLS, &metrics::COUNT_WORDS),
    (&metrics::IS_SUBSET_CALLS, &metrics::IS_SUBSET_WORDS),
    (&metrics::UNION_INTO_CALLS, &metrics::UNION_INTO_WORDS),
];

/// Tallies are batched this many ops before draining to the shared
/// counters: kernel calls are the innermost hot path (often one cache
/// line of work), so paying two atomic RMWs per call costs double-digit
/// percent on small extents. Batching into plain thread-local cells keeps
/// the enabled path at a TLS bump and amortises the atomics to noise;
/// snapshots stay monotone and lag a live thread by at most one batch
/// (the remainder drains at thread exit).
const FLUSH_EVERY: u64 = 1024;

#[derive(Default)]
struct LocalTally {
    calls: [std::cell::Cell<u64>; NUM_OPS],
    words: [std::cell::Cell<u64>; NUM_OPS],
    pending: std::cell::Cell<u64>,
}

impl LocalTally {
    fn flush(&self) {
        for (op, (calls, words)) in OP_SINKS.iter().enumerate() {
            let c = self.calls[op].take();
            if c > 0 {
                calls.add_always(c);
            }
            let w = self.words[op].take();
            if w > 0 {
                words.add_always(w);
            }
        }
        self.pending.set(0);
    }
}

impl Drop for LocalTally {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TALLY: LocalTally = LocalTally::default();
}

#[inline]
fn tally(op: usize, n: usize) {
    if crate::telemetry::enabled() {
        tally_enabled(op, n);
    }
}

#[cold]
#[inline(never)]
fn tally_enabled(op: usize, n: usize) {
    let _ = TALLY.try_with(|t| {
        t.calls[op].set(t.calls[op].get() + 1);
        t.words[op].set(t.words[op].get() + n as u64);
        let pending = t.pending.get() + 1;
        if pending >= FLUSH_EVERY {
            t.flush();
        } else {
            t.pending.set(pending);
        }
    });
}

static ACTIVE: OnceLock<&'static KernelOps> = OnceLock::new();

/// The process-wide kernel table, selected on first use from the
/// `MIDAS_KERNEL` environment variable and CPU feature detection via
/// [`try_active`]. Panics where `try_active` would error — a forced
/// selection that silently fell back would invalidate whatever the
/// caller was pinning.
pub fn active() -> &'static KernelOps {
    match try_active() {
        Ok(ops) => ops,
        Err(e) => panic!("{e}"),
    }
}

/// Selects and pins the process-wide kernel table from the
/// `MIDAS_KERNEL` environment variable (`auto`/unset, `scalar`,
/// `avx2`) and CPU feature detection, reporting misconfiguration as an
/// error instead of panicking: an unknown value, or `MIDAS_KERNEL=avx2`
/// on a host without AVX2.
///
/// Front-ends should call this once on the main thread before spawning
/// work — the first kernel use otherwise happens inside a panic-isolated
/// detection worker, where the panic from [`active`] would be quarantined
/// as a per-source fault rather than surfaced as the configuration error
/// it is.
pub fn try_active() -> Result<&'static KernelOps, String> {
    if let Some(ops) = ACTIVE.get() {
        return Ok(ops);
    }
    let ops = match std::env::var("MIDAS_KERNEL") {
        Err(_) => avx2_ops().unwrap_or_else(scalar_ops),
        Ok(v) => match v.as_str() {
            "" | "auto" => avx2_ops().unwrap_or_else(scalar_ops),
            "scalar" => scalar_ops(),
            "avx2" => avx2_ops()
                .ok_or_else(|| "MIDAS_KERNEL=avx2 but the host CPU lacks AVX2".to_string())?,
            other => {
                return Err(format!(
                    "unknown MIDAS_KERNEL value {other:?} (expected auto, scalar, or avx2)"
                ))
            }
        },
    };
    Ok(ACTIVE.get_or_init(|| {
        // Dispatch choice is recorded unconditionally (it is one event per
        // process) so a later-enabled snapshot still reports it.
        match ops.name {
            "avx2" => metrics::DISPATCH_AVX2.add_always(1),
            _ => metrics::DISPATCH_SCALAR.add_always(1),
        }
        ops
    }))
}

/// `out = a & b` through the active kernel; returns the result popcount.
#[inline]
pub fn and_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
    debug_assert!(out.len() == a.len() && a.len() == b.len());
    tally(OP_AND_INTO, out.len());
    (active().and_into)(out, a, b)
}

/// `out = a | b` through the active kernel; returns the result popcount.
#[inline]
pub fn or_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
    debug_assert!(out.len() == a.len() && a.len() == b.len());
    tally(OP_OR_INTO, out.len());
    (active().or_into)(out, a, b)
}

/// `out = a & !b` through the active kernel; returns the result popcount.
#[inline]
pub fn andnot_into(out: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
    debug_assert!(out.len() == a.len() && a.len() == b.len());
    tally(OP_ANDNOT_INTO, out.len());
    (active().andnot_into)(out, a, b)
}

/// `a &= b` through the active kernel; returns the result popcount.
#[inline]
pub fn and_assign(a: &mut [u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    tally(OP_AND_ASSIGN, a.len());
    (active().and_assign)(a, b)
}

/// `a |= b` through the active kernel; returns the result popcount.
#[inline]
pub fn or_assign(a: &mut [u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    tally(OP_OR_ASSIGN, a.len());
    (active().or_assign)(a, b)
}

/// Popcount over all blocks through the active kernel.
#[inline]
pub fn count(blocks: &[u64]) -> u32 {
    tally(OP_COUNT, blocks.len());
    (active().count)(blocks)
}

/// Whether every set bit of `a` is also set in `b`, through the active
/// kernel.
#[inline]
pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    tally(OP_IS_SUBSET, a.len());
    (active().is_subset)(a, b)
}

/// `acc |= src` for every source in one pass through the active kernel;
/// returns the popcount of the final `acc`.
#[inline]
pub fn union_into(acc: &mut [u64], srcs: &[&[u64]]) -> u32 {
    for s in srcs {
        debug_assert_eq!(s.len(), acc.len());
    }
    tally(OP_UNION_INTO, acc.len() * srcs.len().max(1));
    (active().union_into)(acc, srcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* blocks; seeds spread patterns across
    /// dense, sparse, empty and all-ones words.
    fn blocks(seed: u64, len: usize) -> Vec<u64> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                match i % 7 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => s.wrapping_mul(0x2545_f491_4f6c_dd1d),
                }
            })
            .collect()
    }

    fn ref_count(blocks: &[u64]) -> u32 {
        blocks.iter().map(|w| w.count_ones()).sum()
    }

    /// Exercises every entry point of `ops` against a straight-line
    /// reference at the given length (covers 4-word groups, remainder
    /// tails, and the empty slice).
    fn check_ops_at(ops: &KernelOps, len: usize) {
        let a = blocks(len as u64 + 1, len);
        let b = blocks(len as u64 + 1000, len);
        let c = blocks(len as u64 + 2000, len);

        let want_and: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
        let mut out = vec![0u64; len];
        assert_eq!((ops.and_into)(&mut out, &a, &b), ref_count(&want_and));
        assert_eq!(out, want_and, "and_into blocks ({})", ops.name);

        let want_or: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
        let mut out = vec![0u64; len];
        assert_eq!((ops.or_into)(&mut out, &a, &b), ref_count(&want_or));
        assert_eq!(out, want_or, "or_into blocks ({})", ops.name);

        let want_andnot: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & !y).collect();
        let mut out = vec![0u64; len];
        assert_eq!((ops.andnot_into)(&mut out, &a, &b), ref_count(&want_andnot));
        assert_eq!(out, want_andnot, "andnot_into blocks ({})", ops.name);

        let mut acc = a.clone();
        assert_eq!((ops.and_assign)(&mut acc, &b), ref_count(&want_and));
        assert_eq!(acc, want_and, "and_assign blocks ({})", ops.name);

        let mut acc = a.clone();
        assert_eq!((ops.or_assign)(&mut acc, &b), ref_count(&want_or));
        assert_eq!(acc, want_or, "or_assign blocks ({})", ops.name);

        assert_eq!((ops.count)(&a), ref_count(&a), "count ({})", ops.name);

        assert!((ops.is_subset)(&want_and, &a), "and ⊆ a ({})", ops.name);
        assert!((ops.is_subset)(&want_and, &b), "and ⊆ b ({})", ops.name);
        if ref_count(&want_andnot) > 0 {
            assert!(!(ops.is_subset)(&a, &b), "a ⊄ b ({})", ops.name);
        }

        let mut acc = a.clone();
        let srcs: Vec<&[u64]> = vec![&b, &c, &want_and];
        let want_union: Vec<u64> = (0..len).map(|i| a[i] | b[i] | c[i]).collect();
        assert_eq!((ops.union_into)(&mut acc, &srcs), ref_count(&want_union));
        assert_eq!(acc, want_union, "union_into blocks ({})", ops.name);
        // Zero sources: a pure popcount of the untouched accumulator.
        let mut acc = a.clone();
        assert_eq!((ops.union_into)(&mut acc, &[]), ref_count(&a));
        assert_eq!(acc, a, "union_into with no sources ({})", ops.name);
    }

    #[test]
    fn scalar_kernels_match_reference_across_widths() {
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 100] {
            check_ops_at(scalar_ops(), len);
        }
    }

    #[test]
    fn avx2_kernels_match_reference_across_widths() {
        let Some(ops) = avx2_ops() else {
            eprintln!("avx2 unavailable on this host; skipping");
            return;
        };
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 100] {
            check_ops_at(ops, len);
        }
    }

    #[test]
    fn active_table_matches_scalar_table() {
        // Whatever `MIDAS_KERNEL` selected, the dispatched results must be
        // bit-identical to scalar.
        let ops = active();
        for len in [0, 3, 8, 13, 64, 257] {
            check_ops_at(ops, len);
        }
    }

    #[test]
    fn wrappers_route_through_active_table() {
        let a = blocks(7, 29);
        let b = blocks(11, 29);
        let mut out = vec![0u64; 29];
        let n = and_into(&mut out, &a, &b);
        assert_eq!(n, scalar::count(&out));
        let mut acc = out.clone();
        assert_eq!(or_assign(&mut acc, &a), count(&acc));
        assert!(is_subset(&out, &a));
        let mut u = vec![0u64; 29];
        let total = union_into(&mut u, &[&a, &b]);
        assert_eq!(
            total,
            (a.iter().zip(&b).map(|(x, y)| x | y))
                .map(|w| w.count_ones())
                .sum::<u32>()
        );
        let mut an = vec![0u64; 29];
        assert_eq!(andnot_into(&mut an, &a, &b), count(&an));
        let mut aa = a.clone();
        assert_eq!(and_assign(&mut aa, &b), n);
        assert_eq!(aa, out);
    }
}
