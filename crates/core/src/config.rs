//! Cost model and algorithm configuration.

use crate::budget::SourceBudget;

/// The cost coefficients of the profit function (Definition 9).
///
/// The profit of a set of slices `S` drawn from web sources `W` against a
/// knowledge base `E` is
///
/// ```text
/// f(S) = G(S) − C(S)
/// G(S) = |∪S \ E|                                    (unique new facts)
/// C(S) = C_crawl + C_dedup + C_validate
/// C_crawl    = |S|·f_p + Σ_{W∈W} f_c·|T_W|           (training + crawling)
/// C_dedup    = f_d·|∪S|                              (all facts in slices)
/// C_validate = f_v·|∪S \ E|                          (new facts only)
/// ```
///
/// Paper defaults: `f_p = 10, f_c = 0.001, f_d = 0.01, f_v = 0.1`; the
/// running example (Figures 4–5, Examples 10–14) uses `f_p = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-slice unit cost for training an extractor (`f_p`).
    pub fp: f64,
    /// Per-fact crawling cost over the whole source (`f_c`).
    pub fc: f64,
    /// Per-fact de-duplication cost over the slice facts (`f_d`).
    pub fd: f64,
    /// Per-new-fact validation cost (`f_v`).
    pub fv: f64,
}

impl Default for CostModel {
    /// The paper's experimental defaults.
    fn default() -> Self {
        CostModel {
            fp: 10.0,
            fc: 0.001,
            fd: 0.01,
            fv: 0.1,
        }
    }
}

impl CostModel {
    /// The cost model of the paper's running example (`f_p = 1`).
    pub fn running_example() -> Self {
        CostModel {
            fp: 1.0,
            ..CostModel::default()
        }
    }
}

/// Tuning knobs for MIDASalg and the framework.
#[derive(Debug, Clone, PartialEq)]
pub struct MidasConfig {
    /// Cost coefficients of the profit function.
    pub cost: CostModel,
    /// Cap on the number of initial slices generated per entity when a
    /// predicate is multi-valued (the paper takes the full cross-product of
    /// per-predicate values but does not discuss the blow-up; we bound it).
    pub max_initial_combinations_per_entity: usize,
    /// Cap on the number of properties considered per entity. Entities with
    /// more distinct properties keep the most *selective* ones (smallest
    /// extents), bounding the O(2^k) property lattice.
    pub max_properties_per_entity: usize,
    /// Global safety valve on hierarchy size; construction stops expanding
    /// once this many nodes exist (results remain valid slices, possibly
    /// missing some coarse ancestors).
    pub max_hierarchy_nodes: usize,
    /// Disables low-profit pruning — for the ablation benchmarks only.
    pub disable_profit_pruning: bool,
    /// When the traversal selects nothing (every slice is unprofitable on
    /// its own), report the single best canonical slice anyway, with its
    /// (negative) profit. Combined with [`crate::ExportPolicy::ExportAll`]
    /// this lets the framework aggregate many individually-unprofitable
    /// pages into a profitable coarser slice.
    pub always_report_best: bool,
    /// Keep the extents of low-profit-invalidated hierarchy nodes alive for
    /// the whole build instead of releasing them at the level boundary that
    /// invalidated them. The eager release (the default) cuts peak resident
    /// memory and is invisible to reports — invalid nodes never enter `SLB`
    /// sets and the traversal skips them — but debugging and introspection
    /// tooling that walks pruned nodes can set this to read their extents.
    /// (`always_report_best` implies retention: its fallback may report an
    /// invalid node.)
    pub retain_invalid_extents: bool,
    /// Worker threads for level-wise hierarchy construction (parent
    /// generation and profit evaluation). `1` = fully sequential. Any value
    /// produces node-for-node identical hierarchies: parallel phases only
    /// compute, and all structural mutation happens in a deterministic
    /// sequential merge.
    pub threads: usize,
    /// Per-source execution budget enforced by the framework rounds. Three
    /// knobs, all unlimited by default:
    ///
    /// * `max_facts` — sources with more facts are quarantined up front
    ///   (CLI: `--max-source-facts`);
    /// * `max_nodes` — hierarchy construction beyond this many nodes
    ///   quarantines the source at the next level boundary
    ///   (CLI: `--max-source-nodes`);
    /// * `deadline` — wall-clock allowance per source, enforced across
    ///   workers (CLI: `--source-deadline-ms`).
    ///
    /// A source that breaches any knob is dropped with its partial state
    /// discarded and recorded in the run's [`crate::Quarantine`]; the run
    /// itself always completes.
    pub budget: SourceBudget,
    /// Bound on the number of shards a framework round admits to its pool at
    /// once (CLI: `--stream-window`). `None` = unbounded (the whole round in
    /// flight). Smaller windows cap peak resident memory; reports are
    /// bit-identical at every window.
    pub stream_window: Option<usize>,
}

impl Default for MidasConfig {
    fn default() -> Self {
        MidasConfig {
            cost: CostModel::default(),
            max_initial_combinations_per_entity: 64,
            max_properties_per_entity: 12,
            max_hierarchy_nodes: 4_000_000,
            disable_profit_pruning: false,
            always_report_best: false,
            retain_invalid_extents: false,
            threads: 1,
            budget: SourceBudget::unlimited(),
            stream_window: None,
        }
    }
}

impl MidasConfig {
    /// Config with the running-example cost model.
    pub fn running_example() -> Self {
        MidasConfig {
            cost: CostModel::running_example(),
            ..MidasConfig::default()
        }
    }

    /// Replaces the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the construction thread count (`1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the per-source execution budget.
    pub fn with_budget(mut self, budget: SourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the framework's streaming admission window (`None` = unbounded).
    pub fn with_stream_window(mut self, window: Option<usize>) -> Self {
        self.stream_window = window.map(|w| w.max(1));
        self
    }

    /// Keeps invalidated hierarchy nodes' extents alive for the whole
    /// build (see [`MidasConfig::retain_invalid_extents`]).
    pub fn with_retain_invalid_extents(mut self, retain: bool) -> Self {
        self.retain_invalid_extents = retain;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CostModel::default();
        assert_eq!(c.fp, 10.0);
        assert_eq!(c.fc, 0.001);
        assert_eq!(c.fd, 0.01);
        assert_eq!(c.fv, 0.1);
    }

    #[test]
    fn running_example_only_changes_fp() {
        let c = CostModel::running_example();
        assert_eq!(c.fp, 1.0);
        assert_eq!(c.fc, 0.001);
    }

    #[test]
    fn config_builder_replaces_cost() {
        let cfg = MidasConfig::default().with_cost(CostModel::running_example());
        assert_eq!(cfg.cost.fp, 1.0);
        assert!(!cfg.disable_profit_pruning);
    }
}
