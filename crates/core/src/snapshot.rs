//! Corpus snapshots: the parsed-and-built state of an extraction corpus —
//! interner, per-source fact columns, knowledge base, and per-source
//! [`FactTable`]s — serialised into one `MSNP` container (see
//! [`midas_kb::snapshot`]) and loaded back zero-copy via mmap.
//!
//! A cold run pays TSV parsing, URL parsing, sorting, deduplication, and
//! fact-table construction (hashing, extent building) for every source. A
//! warm run maps the snapshot and borrows every bulk column — fact rows,
//! offsets, property lists, counts, extent id lists and bitsets — straight
//! from the page cache; only the small hash indexes (interner map, subject
//! and property lookup tables) and the knowledge-base tree are rebuilt.
//!
//! The interner's strings are stored in insertion order, so re-interning
//! them assigns every symbol its original index and all stored columns remain
//! valid; terms interned *after* a load (gold labels, report strings) receive
//! the same fresh symbols a cold run would hand out. This is what makes warm
//! and cold runs bit-identical.
//!
//! Section tags are ASCII mnemonics. The container's checksum already
//! fails closed on truncation and bit flips; loaders here additionally
//! validate cross-section invariants (counts, offsets, symbol ranges) so a
//! structurally sound but inconsistent file surfaces as
//! [`SnapshotError::Corrupt`], never as a wrong answer.

use midas_kb::{
    Column, Fact, Interner, KnowledgeBase, Snapshot, SnapshotBuilder, SnapshotError, Symbol,
};
use midas_weburl::SourceUrl;
use std::io;
use std::path::Path;

use crate::extent::ExtentSet;
use crate::fact_table::{FactTable, PropertyCatalog, PropertyId};
use crate::slice::DiscoveredSlice;
use crate::source::SourceFacts;

/// Corpus-level metadata (counts).
pub const TAG_META: u32 = u32::from_le_bytes(*b"META");
/// Interner strings, insertion order.
pub const TAG_STRINGS: u32 = u32::from_le_bytes(*b"STRS");
/// Per-source URLs and fact counts.
pub const TAG_SOURCES: u32 = u32::from_le_bytes(*b"SRCS");
/// All source fact columns, concatenated in source order.
pub const TAG_FACTS: u32 = u32::from_le_bytes(*b"FCTS");
/// Knowledge-base triples, sorted.
pub const TAG_KB: u32 = u32::from_le_bytes(*b"KBTR");
/// Per-source fact tables (columns + extent directory).
pub const TAG_TABLES: u32 = u32::from_le_bytes(*b"TBLS");
/// Discovered slice reports.
pub const TAG_SLICES: u32 = u32::from_le_bytes(*b"SLCS");

const EXTENT_SPARSE: u32 = 0;
const EXTENT_DENSE: u32 = 1;

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// A corpus reassembled from a snapshot: everything a detection run needs,
/// with bulk storage still borrowing from the mapping.
#[derive(Debug)]
pub struct Corpus {
    /// The shared term interner, symbols identical to the saving run.
    pub terms: Interner,
    /// Per-source working sets, fact columns mapped.
    pub sources: Vec<SourceFacts>,
    /// The knowledge base to augment.
    pub kb: KnowledgeBase,
    /// Prebuilt fact tables, parallel to `sources`.
    pub tables: Vec<FactTable>,
}

/// Writes the corpus snapshot atomically to `path`, keyed by `cache_key`.
///
/// `tables` must be parallel to `sources` (one prebuilt table per source,
/// built against `kb`).
pub fn save_corpus(
    path: &Path,
    cache_key: u64,
    terms: &Interner,
    sources: &[SourceFacts],
    kb: &KnowledgeBase,
    tables: &[FactTable],
) -> io::Result<()> {
    assert_eq!(sources.len(), tables.len(), "one prebuilt table per source");
    let mut b = SnapshotBuilder::new(cache_key);

    let mut w = b.section(TAG_META);
    w.put_u32(sources.len() as u32);
    w.put_u32(terms.len() as u32);
    w.put_u64(kb.len() as u64);

    let mut w = b.section(TAG_STRINGS);
    for (_, s) in terms.iter() {
        w.put_str(s);
    }

    let mut w = b.section(TAG_SOURCES);
    for src in sources {
        w.put_str(src.url.as_str());
        w.put_u64(src.facts.len() as u64);
    }

    // Fact columns back-to-back: a `Fact` is 12 bytes (align 4) and section
    // payloads start 8-aligned, so consecutive columns stay 4-aligned.
    let mut w = b.section(TAG_FACTS);
    for src in sources {
        w.put_column::<Fact>(&src.facts);
    }

    let mut w = b.section(TAG_KB);
    let kb_facts: Vec<Fact> = kb.iter().collect();
    w.put_column::<Fact>(&kb_facts);

    let mut w = b.section(TAG_TABLES);
    for t in tables {
        let n = t.num_entities();
        w.align8();
        w.put_u32(n as u32);
        w.put_u32(t.catalog.props.len() as u32);
        w.put_u64(t.total_facts as u64);
        w.put_u64(t.distinct_sp_pairs as u64);
        w.put_u32(t.divisor);
        w.put_u32(t.entity_props_flat.len() as u32);
        w.put_column::<Symbol>(&t.subjects);
        w.put_column::<u32>(&t.row_offsets);
        w.put_column::<u32>(&t.entity_props_offsets);
        w.put_column::<PropertyId>(&t.entity_props_flat);
        w.put_column::<u32>(&t.facts_count);
        w.put_column::<u32>(&t.new_count);
        for &(p, v) in &t.catalog.props {
            w.put_column::<Symbol>(&[p, v]);
        }
        for ext in &t.catalog.extents {
            w.put_u32(if ext.is_dense() {
                EXTENT_DENSE
            } else {
                EXTENT_SPARSE
            });
            w.put_u32(ext.len() as u32);
            if let Some(blocks) = ext.dense_blocks() {
                w.align8();
                w.put_column::<u64>(blocks);
            } else if let Some(ids) = ext.sparse_ids() {
                w.align4();
                w.put_column::<u32>(ids);
            }
        }
    }

    b.write_atomic_labeled(path, "snap")
}

/// Opens the snapshot at `path`, verifies it was produced from inputs
/// hashing to `expected_key`, and reassembles the corpus.
///
/// Fails with [`SnapshotError::KeyMismatch`] when the file is sound but
/// stale (inputs or extraction config changed), and
/// [`SnapshotError::Corrupt`] on any structural or consistency violation.
pub fn load_corpus(path: &Path, expected_key: u64) -> Result<Corpus, SnapshotError> {
    let snap = Snapshot::open(path)?;
    if snap.cache_key() != expected_key {
        return Err(SnapshotError::KeyMismatch {
            expected: expected_key,
            found: snap.cache_key(),
        });
    }

    let mut r = snap.section(TAG_META)?;
    let n_sources = r.get_u32("source count")? as usize;
    let n_strings = r.get_u32("string count")? as usize;
    let kb_len = r.get_u64("kb fact count")? as usize;
    r.expect_end("meta")?;

    // The dump was written from an interner, so the strings are distinct
    // and in insertion order; adopt them wholesale and let the lookup map
    // sync lazily on the first post-load intern. Runs that only resolve
    // symbols never index the table at all.
    let mut r = snap.section(TAG_STRINGS)?;
    let mut dump: Vec<Box<str>> = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        dump.push(r.get_str_ref("interner string")?.into());
    }
    let terms = Interner::from_dump(dump);
    r.expect_end("strings")?;
    let in_range = |sym: Symbol| -> bool { sym.index() < n_strings };

    let mut r = snap.section(TAG_SOURCES)?;
    let mut heads: Vec<(SourceUrl, usize)> = Vec::with_capacity(n_sources);
    for _ in 0..n_sources {
        let url = r.get_str("source url")?;
        let url = SourceUrl::parse(&url)
            .map_err(|e| corrupt(format!("invalid source url {url:?}: {e}")))?;
        let len = r.get_u64("source fact count")? as usize;
        heads.push((url, len));
    }
    r.expect_end("sources")?;

    let mut r = snap.section(TAG_FACTS)?;
    let mut sources: Vec<SourceFacts> = Vec::with_capacity(n_sources);
    for (url, len) in heads {
        let facts: Column<Fact> = r.get_column(len, "source facts")?;
        // One sequential pass re-establishes the invariants everything
        // downstream relies on: sorted, deduplicated, symbols in range.
        let sorted = facts.windows(2).all(|w| w[0] < w[1]);
        let bounded = facts
            .iter()
            .all(|f| in_range(f.subject) && in_range(f.predicate) && in_range(f.object));
        if !sorted || !bounded {
            return Err(corrupt(format!(
                "source {url} facts unsorted or out of range"
            )));
        }
        sources.push(SourceFacts::from_sorted_column(url, facts));
    }
    r.expect_end("facts")?;

    let mut r = snap.section(TAG_KB)?;
    let kb_facts: Column<Fact> = r.get_column(kb_len, "kb facts")?;
    let mut kb = KnowledgeBase::new();
    for &f in &kb_facts {
        if !(in_range(f.subject) && in_range(f.predicate) && in_range(f.object)) {
            return Err(corrupt("kb fact symbol out of range"));
        }
        kb.insert(f);
    }
    r.expect_end("kb")?;

    let mut r = snap.section(TAG_TABLES)?;
    let mut tables: Vec<FactTable> = Vec::with_capacity(n_sources);
    for src in &sources {
        r.align8()?;
        let n = r.get_u32("entity count")? as usize;
        let n_props = r.get_u32("property count")? as usize;
        let total_facts = r.get_u64("table fact count")? as usize;
        let distinct_sp_pairs = r.get_u64("distinct sp pairs")? as usize;
        let divisor = r.get_u32("density divisor")?;
        let props_flat_len = r.get_u32("flattened property count")? as usize;
        let subjects: Column<Symbol> = r.get_column(n, "subjects")?;
        let row_offsets: Column<u32> = r.get_column(n + 1, "row offsets")?;
        let props_offsets: Column<u32> = r.get_column(n + 1, "property offsets")?;
        let props_flat: Column<PropertyId> = r.get_column(props_flat_len, "properties")?;
        let facts_count: Column<u32> = r.get_column(n, "fact counts")?;
        let new_count: Column<u32> = r.get_column(n, "new counts")?;
        if total_facts != src.facts.len()
            || row_offsets.last() != Some(&(total_facts as u32))
            || props_offsets.last() != Some(&(props_flat_len as u32))
            || !subjects.iter().all(|&s| in_range(s))
        {
            return Err(corrupt(format!("table for {} inconsistent", src.url)));
        }
        let mut props: Vec<(Symbol, Symbol)> = Vec::with_capacity(n_props);
        for _ in 0..n_props {
            let pair: Column<Symbol> = r.get_column(2, "property pair")?;
            if !(in_range(pair[0]) && in_range(pair[1])) {
                return Err(corrupt("property symbol out of range"));
            }
            props.push((pair[0], pair[1]));
        }
        let universe = n as u32;
        let mut extents: Vec<ExtentSet> = Vec::with_capacity(n_props);
        for _ in 0..n_props {
            let kind = r.get_u32("extent kind")?;
            let len = r.get_u32("extent length")?;
            if len as usize > n {
                return Err(corrupt("extent larger than entity universe"));
            }
            match kind {
                EXTENT_SPARSE => {
                    r.align4()?;
                    let ids: Column<u32> = r.get_column(len as usize, "extent ids")?;
                    if ids.last().is_some_and(|&e| e >= universe) {
                        return Err(corrupt("extent id out of universe"));
                    }
                    extents.push(ExtentSet::from_raw_sparse(universe, divisor, ids));
                }
                EXTENT_DENSE => {
                    r.align8()?;
                    let blocks: Column<u64> = r.get_column((n).div_ceil(64), "extent blocks")?;
                    extents.push(ExtentSet::from_raw_dense(universe, divisor, blocks, len));
                }
                k => return Err(corrupt(format!("unknown extent kind {k}"))),
            }
        }
        tables.push(FactTable::from_parts(
            subjects,
            src.facts.clone(),
            row_offsets,
            props_flat,
            props_offsets,
            facts_count,
            new_count,
            PropertyCatalog::from_parts(props, extents),
            total_facts,
            distinct_sp_pairs,
            divisor,
        ));
    }
    r.expect_end("tables")?;

    Ok(Corpus {
        terms,
        sources,
        kb,
        tables,
    })
}

/// Writes a discovered slice report atomically to `path`, keyed by
/// `cache_key`. Slices are stored with resolved strings, so the file is
/// self-contained and can be reloaded into any interner.
pub fn save_slices(
    path: &Path,
    cache_key: u64,
    terms: &Interner,
    slices: &[DiscoveredSlice],
) -> io::Result<()> {
    let mut b = SnapshotBuilder::new(cache_key);
    let mut w = b.section(TAG_SLICES);
    w.put_u32(slices.len() as u32);
    for s in slices {
        w.put_str(s.source.as_str());
        w.put_u32(s.properties.len() as u32);
        for &(p, v) in &s.properties {
            w.put_str(terms.resolve(p));
            w.put_str(terms.resolve(v));
        }
        w.put_u32(s.entities.len() as u32);
        for &e in &s.entities {
            w.put_str(terms.resolve(e));
        }
        w.put_u64(s.num_facts as u64);
        w.put_u64(s.num_new_facts as u64);
        w.put_f64(s.profit);
    }
    b.write_atomic_labeled(path, "slices")
}

/// Loads a slice report saved by [`save_slices`], re-interning its strings.
pub fn load_slices(
    path: &Path,
    expected_key: u64,
    terms: &mut Interner,
) -> Result<Vec<DiscoveredSlice>, SnapshotError> {
    let snap = Snapshot::open(path)?;
    if snap.cache_key() != expected_key {
        return Err(SnapshotError::KeyMismatch {
            expected: expected_key,
            found: snap.cache_key(),
        });
    }
    let mut r = snap.section(TAG_SLICES)?;
    let count = r.get_u32("slice count")? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let url = r.get_str("slice source")?;
        let source = SourceUrl::parse(&url)
            .map_err(|e| corrupt(format!("invalid slice source {url:?}: {e}")))?;
        let n_props = r.get_u32("slice property count")? as usize;
        let mut properties = Vec::with_capacity(n_props);
        for _ in 0..n_props {
            let p = terms.intern(&r.get_str("slice predicate")?);
            let v = terms.intern(&r.get_str("slice value")?);
            properties.push((p, v));
        }
        let n_entities = r.get_u32("slice entity count")? as usize;
        let mut entities = Vec::with_capacity(n_entities);
        for _ in 0..n_entities {
            entities.push(terms.intern(&r.get_str("slice entity")?));
        }
        let num_facts = r.get_u64("slice fact count")? as usize;
        let num_new_facts = r.get_u64("slice new-fact count")? as usize;
        let profit = r.get_f64("slice profit")?;
        out.push(DiscoveredSlice {
            source,
            properties,
            entities,
            num_facts,
            num_new_facts,
            profit,
        });
    }
    r.expect_end("slices")?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::skyrocket;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("midas-corpus-{}-{name}.snap", std::process::id()))
    }

    fn sample_corpus() -> (Interner, Vec<SourceFacts>, KnowledgeBase, Vec<FactTable>) {
        let mut terms = Interner::new();
        let (src, kb) = skyrocket(&mut terms);
        let second = SourceFacts::new(
            SourceUrl::parse("http://other.example.org/page").unwrap(),
            vec![
                Fact::intern(&mut terms, "Voskhod", "sponsor", "ÜSSR ✓"),
                Fact::intern(&mut terms, "Voskhod", "category", "space_program"),
            ],
        );
        let tables = vec![FactTable::build(&src, &kb), FactTable::build(&second, &kb)];
        (terms, vec![src, second], kb, tables)
    }

    #[test]
    fn corpus_round_trips_and_borrows_from_the_mapping() {
        let (terms, sources, kb, tables) = sample_corpus();
        let path = tmp("roundtrip");
        save_corpus(&path, 42, &terms, &sources, &kb, &tables).unwrap();
        let corpus = load_corpus(&path, 42).unwrap();
        std::fs::remove_file(&path).ok();

        // Interner: identical symbol assignment.
        assert_eq!(corpus.terms.len(), terms.len());
        for (sym, s) in terms.iter() {
            assert_eq!(corpus.terms.get(s), Some(sym));
        }

        // Sources: same urls and facts, columns mapped (zero-copy engaged).
        assert_eq!(corpus.sources.len(), sources.len());
        for (a, b) in corpus.sources.iter().zip(&sources) {
            assert_eq!(a.url, b.url);
            assert_eq!(&a.facts[..], &b.facts[..]);
            assert!(a.facts.is_mapped(), "source facts must borrow the mmap");
        }

        // Knowledge base: same contents.
        assert_eq!(corpus.kb.len(), kb.len());
        for f in kb.iter() {
            assert!(corpus.kb.contains(&f));
        }

        // Tables: identical structure and counts, mapped bulk columns.
        for (a, b) in corpus.tables.iter().zip(&tables) {
            assert!(a.is_mapped(), "table rows must borrow the mmap");
            assert_eq!(a.num_entities(), b.num_entities());
            assert_eq!(a.total_facts(), b.total_facts());
            assert_eq!(
                a.distinct_subject_predicate_pairs(),
                b.distinct_subject_predicate_pairs()
            );
            assert_eq!(a.divisor(), b.divisor());
            assert_eq!(a.catalog().len(), b.catalog().len());
            for e in 0..a.num_entities() as u32 {
                assert_eq!(a.subject(e), b.subject(e));
                assert_eq!(a.row(e), b.row(e));
                assert_eq!(a.entity_properties(e), b.entity_properties(e));
                assert_eq!(a.facts_of(e), b.facts_of(e));
                assert_eq!(a.new_of(e), b.new_of(e));
            }
            for p in 0..a.catalog().len() as u32 {
                assert_eq!(a.catalog().pair(p), b.catalog().pair(p));
                assert_eq!(a.catalog().extent(p), b.catalog().extent(p));
            }
            let full = ExtentSet::full(a.num_entities() as u32);
            assert_eq!(a.fact_counts(&full), b.fact_counts(&full));
        }
    }

    #[test]
    fn key_mismatch_is_reported_not_loaded() {
        let (terms, sources, kb, tables) = sample_corpus();
        let path = tmp("keymismatch");
        save_corpus(&path, 7, &terms, &sources, &kb, &tables).unwrap();
        let err = load_corpus(&path, 8).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            err,
            SnapshotError::KeyMismatch {
                expected: 8,
                found: 7
            }
        ));
    }

    #[test]
    fn corrupted_corpus_fails_closed() {
        let (terms, sources, kb, tables) = sample_corpus();
        let path = tmp("corrupt");
        save_corpus(&path, 1, &terms, &sources, &kb, &tables).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_corpus(&path, 1).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SnapshotError::Corrupt(_)));
    }

    #[test]
    fn truncated_corpus_fails_closed() {
        let (terms, sources, kb, tables) = sample_corpus();
        let path = tmp("truncated");
        save_corpus(&path, 1, &terms, &sources, &kb, &tables).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_corpus(&path, 1).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SnapshotError::Corrupt(_)));
    }

    #[test]
    fn loaded_corpus_supports_kb_refresh() {
        // The incremental path mutates count columns in place; on a mapped
        // table this must copy-on-write, leaving rows and extents mapped.
        let (terms, sources, kb, tables) = sample_corpus();
        let path = tmp("refresh");
        save_corpus(&path, 3, &terms, &sources, &kb, &tables).unwrap();
        let mut corpus = load_corpus(&path, 3).unwrap();
        std::fs::remove_file(&path).ok();

        let (subject, fact) = {
            let table = &corpus.tables[0];
            (0..table.num_entities() as u32)
                .flat_map(|e| table.row(e).iter().map(move |&f| (table.subject(e), f)))
                .find(|(_, f)| corpus.kb.is_new(f))
                .expect("fixture source contributes at least one new fact")
        };
        corpus.kb.insert(fact);
        let table = &mut corpus.tables[0];
        let changed = table.refresh_new_counts(&corpus.kb, [subject]);
        assert_eq!(changed.len(), 1);
        assert!(table.is_mapped(), "rows stay mapped after the refresh");
    }

    #[test]
    fn slices_round_trip_with_unicode() {
        let mut terms = Interner::new();
        let slices = vec![DiscoveredSlice {
            source: SourceUrl::parse("http://a.com/x").unwrap(),
            properties: vec![(terms.intern("catégorie"), terms.intern("fusée ✓"))],
            entities: vec![terms.intern("Ariane"), terms.intern("Союз")],
            num_facts: 9,
            num_new_facts: 4,
            profit: 2.5,
        }];
        let path = tmp("slices");
        save_slices(&path, 99, &terms, &slices).unwrap();

        // Reload into a *fresh* interner: strings re-intern to new symbols
        // but resolve to the same terms.
        let mut fresh = Interner::new();
        let loaded = load_slices(&path, 99, &mut fresh).unwrap();
        assert!(matches!(
            load_slices(&path, 100, &mut fresh),
            Err(SnapshotError::KeyMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].source, slices[0].source);
        assert_eq!(fresh.resolve(loaded[0].properties[0].1), "fusée ✓");
        assert_eq!(fresh.resolve(loaded[0].entities[1]), "Союз");
        assert_eq!(loaded[0].num_facts, 9);
        assert_eq!(loaded[0].profit.to_bits(), slices[0].profit.to_bits());
    }
}
