//! The profit function (Definition 9).
//!
//! All slice profits inside one web source reduce to entity-set arithmetic:
//! a slice's facts are all facts of its entities, entity rows are disjoint,
//! so for any set of slices `S` within source `W`,
//!
//! ```text
//! f(S) = (1 − f_v)·new(U) − f_d·facts(U) − f_p·|S| − f_c·|T_W|
//! ```
//!
//! where `U` is the union of the slices' entity extents. [`ProfitCtx`] binds
//! the cost model to one source's fact table and evaluates single slices,
//! slice sets, and the marginal profit of adding a slice to an accumulator —
//! the three operations MIDASalg needs.

use crate::config::CostModel;
use crate::extent::{kernels, ExtentSet};
use crate::fact_table::FactTable;

/// Profit evaluator bound to one source.
#[derive(Debug, Clone, Copy)]
pub struct ProfitCtx<'a> {
    table: &'a FactTable,
    cost: CostModel,
    /// `f_c·|T_W|` — the fixed crawling term of this source.
    crawl_fixed: f64,
}

impl<'a> ProfitCtx<'a> {
    /// Binds `cost` to `table`.
    pub fn new(table: &'a FactTable, cost: CostModel) -> Self {
        ProfitCtx {
            table,
            cost,
            crawl_fixed: cost.fc * table.total_facts() as f64,
        }
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The bound fact table.
    pub fn table(&self) -> &FactTable {
        self.table
    }

    /// The fixed per-source crawling term `f_c·|T_W|`.
    pub fn crawl_fixed(&self) -> f64 {
        self.crawl_fixed
    }

    /// Profit of a set of `k` slices whose union of entity extents has the
    /// given new/total fact counts.
    #[inline]
    pub fn profit_from_counts(&self, new_facts: u64, total_facts: u64, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        (1.0 - self.cost.fv) * new_facts as f64
            - self.cost.fd * total_facts as f64
            - self.cost.fp * k as f64
            - self.crawl_fixed
    }

    /// `f({S})` for a single slice with entity extent `entities`.
    pub fn profit_single(&self, entities: &ExtentSet) -> f64 {
        let (new_facts, total_facts) = self.table.fact_counts(entities);
        self.profit_from_counts(new_facts, total_facts, 1)
    }

    /// `f(S)` for a set of `k` slices whose union of extents is `union`.
    pub fn profit_set(&self, union: &ExtentSet, k: usize) -> f64 {
        let (new_facts, total_facts) = self.table.fact_counts(union);
        self.profit_from_counts(new_facts, total_facts, k)
    }

    /// `f(S)` for a set of `k` slices given the extents whose union covers
    /// `S`'s entities — the batched multi-way form of [`Self::profit_set`].
    /// The union bitmap is built in one pass over a scratch bitmap through
    /// the dispatched multi-way union kernel instead of `k` pairwise
    /// passes; the counts (and thus the profit) are bit-identical to
    /// folding the extents one by one, because the union bits are the
    /// same bits whichever way they were OR'd together.
    pub fn profit_of_union(&self, extents: &[&ExtentSet], k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let words = self.table.num_entities().div_ceil(64);
        let (new_facts, total_facts) = crate::scratch::with_bitmap(words, |bits| {
            crate::extent::union_mark_into(extents, bits);
            self.table.fact_counts_from_blocks(bits)
        });
        self.profit_from_counts(new_facts, total_facts, k)
    }

    /// Starts an incremental accumulator for Algorithm 1.
    pub fn accumulator(&self) -> ProfitAccumulator {
        ProfitAccumulator {
            covered: vec![0u64; self.table.num_entities().div_ceil(64)],
            new_facts: 0,
            total_facts: 0,
            k: 0,
        }
    }
}

/// Incremental profit of a growing result set of slices.
///
/// Tracks the union of covered entities with a `u64`-block bitmap so that
/// the marginal profit of a candidate slice is computable in O(|extent|) —
/// and in O(universe/64) words when the extent is dense.
#[derive(Debug, Clone)]
pub struct ProfitAccumulator {
    covered: Vec<u64>,
    new_facts: u64,
    total_facts: u64,
    k: usize,
}

impl ProfitAccumulator {
    /// Current profit `f(S)` of the accumulated set.
    pub fn profit(&self, ctx: &ProfitCtx<'_>) -> f64 {
        ctx.profit_from_counts(self.new_facts, self.total_facts, self.k)
    }

    /// Number of slices accumulated.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether no slice has been added yet.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Marginal profit `f(S ∪ {s}) − f(S)` of adding a slice with the given
    /// extent, without mutating the accumulator.
    pub fn marginal(&self, ctx: &ProfitCtx<'_>, extent: &ExtentSet) -> f64 {
        let (dnew, dtotal) = ctx.table.fact_counts_missing_from(extent, &self.covered);
        let mut delta =
            (1.0 - ctx.cost.fv) * dnew as f64 - ctx.cost.fd * dtotal as f64 - ctx.cost.fp;
        if self.k == 0 {
            // The first slice brings in the fixed crawl term of the source.
            delta -= ctx.crawl_fixed;
        }
        delta
    }

    /// Adds a slice with the given extent to the set.
    pub fn add(&mut self, ctx: &ProfitCtx<'_>, extent: &ExtentSet) {
        let (dnew, dtotal) = ctx.table.fact_counts_claim(extent, &mut self.covered);
        self.new_facts += dnew;
        self.total_facts += dtotal;
        self.k += 1;
    }

    /// Marginal profit `f(S ∪ G) − f(S)` of adding a whole group of slices
    /// at once — the batched multi-way form of [`Self::marginal`]. The
    /// group's union bitmap is built in one kernel pass, the uncovered
    /// remainder extracted with one `and-not` pass, and both fact counts
    /// taken from that single fresh bitmap, so the cost is
    /// O(universe/64 · groups) instead of one full accumulator probe per
    /// slice. Exactly equal to the telescoped sum of per-slice marginals
    /// interleaved with adds (the fresh bits are the same bits).
    pub fn marginal_union(&self, ctx: &ProfitCtx<'_>, extents: &[&ExtentSet]) -> f64 {
        if extents.is_empty() {
            return 0.0;
        }
        let words = self.covered.len();
        let (dnew, dtotal) = crate::scratch::with_bitmap(words, |union_bits| {
            crate::extent::union_mark_into(extents, union_bits);
            crate::scratch::with_bitmap(words, |fresh| {
                kernels::andnot_into(fresh, union_bits, &self.covered);
                ctx.table.fact_counts_from_blocks(fresh)
            })
        });
        let mut delta = (1.0 - ctx.cost.fv) * dnew as f64
            - ctx.cost.fd * dtotal as f64
            - ctx.cost.fp * extents.len() as f64;
        if self.k == 0 {
            // The first slice brings in the fixed crawl term of the source.
            delta -= ctx.crawl_fixed;
        }
        delta
    }

    /// Adds a whole group of slices at once — the batched multi-way form
    /// of [`Self::add`]. The accumulator lands in the same state as adding
    /// the group's slices one by one in any order: the fresh-bit counts
    /// are integers and the covered map only ever gains the union's bits.
    pub fn add_union(&mut self, ctx: &ProfitCtx<'_>, extents: &[&ExtentSet]) {
        if extents.is_empty() {
            return;
        }
        let words = self.covered.len();
        let (dnew, dtotal) = crate::scratch::with_bitmap(words, |union_bits| {
            crate::extent::union_mark_into(extents, union_bits);
            crate::scratch::with_bitmap(words, |fresh| {
                kernels::andnot_into(fresh, union_bits, &self.covered);
                let counts = ctx.table.fact_counts_from_blocks(fresh);
                // covered ∪= fresh ≡ covered ∪= union: the bits removed by
                // the and-not were already covered.
                kernels::or_assign(&mut self.covered, fresh);
                counts
            })
        });
        self.new_facts += dnew;
        self.total_facts += dtotal;
        self.k += extents.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::fact_table::FactTable;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;

    fn ctx_for_running_example(
        terms: &mut Interner,
    ) -> (FactTable, MidasConfig, Vec<(&'static str, &'static str)>) {
        let (src, kb) = skyrocket(terms);
        let ft = FactTable::build(&src, &kb);
        (ft, MidasConfig::running_example(), vec![])
    }

    fn extent(ft: &FactTable, terms: &mut Interner, props: &[(&str, &str)]) -> ExtentSet {
        let ids: Vec<_> = props
            .iter()
            .map(|&(p, v)| {
                ft.catalog()
                    .get(terms.intern(p), terms.intern(v))
                    .expect("property exists")
            })
            .collect();
        ft.extent_of(&ids)
    }

    /// Figure 5 reports f(S5) = 4.327 with f_p = 1.
    #[test]
    fn slice_s5_profit_matches_figure_5() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let s5 = extent(
            &ft,
            &mut t,
            &[("category", "rocket_family"), ("sponsor", "NASA")],
        );
        assert!((ctx.profit_single(&s5) - 4.327).abs() < 1e-9);
    }

    /// Figure 5 reports f(S2) = f(S3) = 1.657.
    #[test]
    fn slices_s2_s3_profit_match_figure_5() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let s2 = extent(
            &ft,
            &mut t,
            &[
                ("category", "rocket_family"),
                ("started", "1957"),
                ("sponsor", "NASA"),
            ],
        );
        assert_eq!(s2.len(), 1);
        assert!((ctx.profit_single(&s2) - 1.657).abs() < 1e-9);
    }

    /// Figure 5 reports f(S4) = −1.083.
    #[test]
    fn slice_s4_profit_matches_figure_5() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let s4 = extent(
            &ft,
            &mut t,
            &[("category", "space_program"), ("sponsor", "NASA")],
        );
        assert_eq!(s4.len(), 3);
        assert!((ctx.profit_single(&s4) - (-1.083)).abs() < 1e-9);
    }

    /// The paper prints f(S1) = −1.013 but the Definition 9 formula gives
    /// −1.043 (the published figure appears to drop S1's de-dup term; see
    /// DESIGN.md). We assert the formula value.
    #[test]
    fn slice_s1_profit_follows_definition_9() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let s1 = extent(
            &ft,
            &mut t,
            &[
                ("category", "space_program"),
                ("started", "1959"),
                ("sponsor", "NASA"),
            ],
        );
        assert_eq!(s1.len(), 1);
        assert!((ctx.profit_single(&s1) - (-1.043)).abs() < 1e-9);
    }

    /// Example 10: {S5} beats {S2, S3} because it avoids one f_p, and beats
    /// {S6} through lower de-dup cost.
    #[test]
    fn example_10_set_comparisons() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let s5 = extent(
            &ft,
            &mut t,
            &[("category", "rocket_family"), ("sponsor", "NASA")],
        );
        let s6 = extent(&ft, &mut t, &[("sponsor", "NASA")]);
        let f_s5 = ctx.profit_set(&s5, 1);
        let f_s6 = ctx.profit_set(&s6, 1);
        let f_s2_s3 = ctx.profit_set(&s5, 2); // same union, two slices
        assert!(f_s5 > f_s6);
        assert!(f_s5 > f_s2_s3);
        assert!((f_s5 - f_s2_s3 - cfg.cost.fp).abs() < 1e-9);
    }

    #[test]
    fn empty_set_has_zero_profit() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        assert_eq!(ctx.profit_from_counts(0, 0, 0), 0.0);
        let acc = ctx.accumulator();
        assert_eq!(acc.profit(&ctx), 0.0);
        assert!(acc.is_empty());
    }

    #[test]
    fn accumulator_matches_batch_profit() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let s5 = extent(
            &ft,
            &mut t,
            &[("category", "rocket_family"), ("sponsor", "NASA")],
        );
        let s4 = extent(
            &ft,
            &mut t,
            &[("category", "space_program"), ("sponsor", "NASA")],
        );
        let mut acc = ctx.accumulator();
        let m1 = acc.marginal(&ctx, &s5);
        acc.add(&ctx, &s5);
        assert!(
            (acc.profit(&ctx) - m1).abs() < 1e-9,
            "first marginal from zero"
        );
        let m2 = acc.marginal(&ctx, &s4);
        acc.add(&ctx, &s4);
        let union = s5.union(&s4);
        assert!((acc.profit(&ctx) - ctx.profit_set(&union, 2)).abs() < 1e-9);
        assert!((acc.profit(&ctx) - (m1 + m2)).abs() < 1e-9);
    }

    #[test]
    fn batched_union_paths_match_sequential_folds() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let s5 = extent(
            &ft,
            &mut t,
            &[("category", "rocket_family"), ("sponsor", "NASA")],
        );
        let s4 = extent(
            &ft,
            &mut t,
            &[("category", "space_program"), ("sponsor", "NASA")],
        );
        let s6 = extent(&ft, &mut t, &[("sponsor", "NASA")]);
        let group: Vec<&ExtentSet> = vec![&s5, &s4, &s6];

        // profit_of_union == profit_set over the folded union.
        let union = s5.union(&s4).union(&s6);
        assert_eq!(
            ctx.profit_of_union(&group, 3).to_bits(),
            ctx.profit_set(&union, 3).to_bits(),
            "batched set profit must be bit-identical to the pairwise fold"
        );
        assert_eq!(ctx.profit_of_union(&group, 0), 0.0);
        assert_eq!(ctx.profit_of_union(&[], 0), 0.0);

        // marginal_union == telescoped sequential marginals; add_union
        // leaves the accumulator in the sequential state (covered bits,
        // integer counts, k) so later profits stay bit-identical.
        let mut seq = ctx.accumulator();
        let mut telescoped = 0.0;
        for e in &group {
            telescoped += seq.marginal(&ctx, e);
            seq.add(&ctx, e);
        }
        let mut batched = ctx.accumulator();
        let m = batched.marginal_union(&ctx, &group);
        batched.add_union(&ctx, &group);
        assert!((m - telescoped).abs() < 1e-9, "group marginal from zero");
        assert_eq!(
            batched.profit(&ctx).to_bits(),
            seq.profit(&ctx).to_bits(),
            "accumulator state must match the sequential fold exactly"
        );
        assert_eq!(batched.len(), seq.len());

        // A second group on a non-empty accumulator (no crawl term now).
        let m2_seq = seq.marginal(&ctx, &s5) + {
            let mut probe = seq.clone();
            probe.add(&ctx, &s5);
            probe.marginal(&ctx, &s4)
        };
        let m2 = batched.marginal_union(&ctx, &[&s5, &s4]);
        assert!((m2 - m2_seq).abs() < 1e-9, "group marginal mid-stream");
        seq.add(&ctx, &s5);
        seq.add(&ctx, &s4);
        batched.add_union(&ctx, &[&s5, &s4]);
        assert_eq!(batched.profit(&ctx).to_bits(), seq.profit(&ctx).to_bits());

        // Empty group: no-op marginal and add.
        assert_eq!(batched.marginal_union(&ctx, &[]), 0.0);
        let before = batched.profit(&ctx);
        batched.add_union(&ctx, &[]);
        assert_eq!(batched.profit(&ctx).to_bits(), before.to_bits());
    }

    #[test]
    fn marginal_of_fully_covered_slice_is_negative_fp() {
        let mut t = Interner::new();
        let (ft, cfg, _) = ctx_for_running_example(&mut t);
        let ctx = ProfitCtx::new(&ft, cfg.cost);
        let s5 = extent(
            &ft,
            &mut t,
            &[("category", "rocket_family"), ("sponsor", "NASA")],
        );
        let mut acc = ctx.accumulator();
        acc.add(&ctx, &s5);
        let m = acc.marginal(&ctx, &s5);
        assert!((m + cfg.cost.fp).abs() < 1e-9);
    }
}
