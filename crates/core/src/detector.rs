//! The pluggable slice-detection interface of the framework.
//!
//! §III-B: *"For the 'Detecting Slices' module, MIDAS can employ MIDASalg or
//! other slice detection algorithms."* The baselines crate implements this
//! trait for GREEDY and AGGCLUSTER so that all algorithms can be
//! parallelised by the same framework.

use midas_kb::{KnowledgeBase, Symbol};

use crate::fact_table::{EntityId, FactTable};
use crate::hierarchy::SliceHierarchy;
use crate::quarantine::FaultCause;
use crate::single_source::MidasAlg;
use crate::slice::DiscoveredSlice;
use crate::source::SourceFacts;

/// Input to one detection call: a web source (at any granularity), the
/// knowledge base to augment, and — from round two on — the slices exported
/// by the source's children, as property sets.
#[derive(Debug)]
pub struct DetectInput<'a> {
    /// The source to detect slices in.
    pub source: &'a SourceFacts,
    /// The knowledge base being augmented.
    pub kb: &'a KnowledgeBase,
    /// Children-exported property sets (empty in the first round).
    pub seeds: &'a [Vec<(Symbol, Symbol)>],
}

/// A slice-detection algorithm usable inside the framework.
pub trait SliceDetector: Sync {
    /// Short algorithm name for reports ("midas", "greedy", …).
    fn name(&self) -> &'static str;

    /// Detects slices in one source.
    ///
    /// When `input.seeds` is non-empty the detector should use them as the
    /// initial hierarchy (detectors that cannot exploit seeds may ignore
    /// them and detect from scratch).
    fn detect(&self, input: DetectInput<'_>) -> Vec<DiscoveredSlice>;

    /// Like [`SliceDetector::detect`], but additionally returns the
    /// [`FactTable`] the detector built for the source, so callers driving
    /// incremental re-runs can cache it across augmentation rounds.
    /// Detectors that do not materialise a reusable table (the baselines)
    /// fall back to plain detection and return `None`; results are identical
    /// to [`SliceDetector::detect`] either way.
    fn detect_retaining_table(
        &self,
        input: DetectInput<'_>,
    ) -> (Vec<DiscoveredSlice>, Option<FactTable>) {
        (self.detect(input), None)
    }

    /// Detects slices over a pre-built fact table for `input.source` — the
    /// incremental fast path, where a cached table (with refreshed
    /// `new`-flag counts, see [`FactTable::refresh_new_counts`]) replaces
    /// the per-round rebuild. The default ignores the table and detects from
    /// scratch, which is always correct.
    fn detect_on_table(&self, table: &FactTable, input: DetectInput<'_>) -> Vec<DiscoveredSlice> {
        let _ = table;
        self.detect(input)
    }

    /// Like [`SliceDetector::detect_retaining_table`], but additionally
    /// returns the slice hierarchy the detector built, so warm-hierarchy
    /// drivers can patch it in place next round instead of rebuilding.
    /// Detectors without a reusable hierarchy return `None` for it; results
    /// are identical to [`SliceDetector::detect`] either way.
    fn detect_retaining_state(
        &self,
        input: DetectInput<'_>,
    ) -> (
        Vec<DiscoveredSlice>,
        Option<FactTable>,
        Option<SliceHierarchy>,
    ) {
        let (slices, table) = self.detect_retaining_table(input);
        (slices, table, None)
    }

    /// Warm re-detection over a cached table and (optionally) last round's
    /// hierarchy for the same source. `changed` lists the entity ids whose
    /// `new`-fact counts moved since the hierarchy was built (see
    /// [`FactTable::refresh_new_counts`]). Returns the slices, the hierarchy
    /// to cache for the next round (if the detector retains one), and
    /// whether the warm patch was actually used. The default recycles any
    /// warm hierarchy and detects cold over the table, which is always
    /// correct.
    fn detect_warm(
        &self,
        table: &FactTable,
        input: DetectInput<'_>,
        warm: Option<SliceHierarchy>,
        changed: &[EntityId],
    ) -> (Vec<DiscoveredSlice>, Option<SliceHierarchy>, bool) {
        if let Some(h) = warm {
            h.recycle();
        }
        let _ = changed;
        (self.detect_on_table(table, input), None, false)
    }

    /// Runs [`SliceDetector::detect`] under panic isolation: a panic or
    /// budget breach inside the detector becomes a structured
    /// [`FaultCause`] instead of unwinding into the caller. Callers outside
    /// the framework's worker pool (e.g. sequential per-source eval loops)
    /// use this to get the same degrade-per-source semantics.
    fn detect_isolated(&self, input: DetectInput<'_>) -> Result<Vec<DiscoveredSlice>, FaultCause> {
        crate::parallel::run_isolated(|| self.detect(input))
    }
}

impl SliceDetector for MidasAlg {
    fn name(&self) -> &'static str {
        "midas"
    }

    fn detect(&self, input: DetectInput<'_>) -> Vec<DiscoveredSlice> {
        if input.seeds.is_empty() {
            self.run(input.source, input.kb)
        } else {
            self.run_seeded(input.source, input.kb, input.seeds)
        }
    }

    fn detect_retaining_table(
        &self,
        input: DetectInput<'_>,
    ) -> (Vec<DiscoveredSlice>, Option<FactTable>) {
        self.run_retaining_table(input.source, input.kb, input.seeds)
    }

    fn detect_on_table(&self, table: &FactTable, input: DetectInput<'_>) -> Vec<DiscoveredSlice> {
        self.run_on_table(table, input.source, input.kb, input.seeds)
    }

    fn detect_retaining_state(
        &self,
        input: DetectInput<'_>,
    ) -> (
        Vec<DiscoveredSlice>,
        Option<FactTable>,
        Option<SliceHierarchy>,
    ) {
        // The warm-hierarchy engine only patches unseeded (leaf) runs;
        // seeded merge shards keep the plain table-retaining path.
        if input.seeds.is_empty() {
            self.run_retaining_state(input.source, input.kb)
        } else {
            let (slices, table) = self.run_retaining_table(input.source, input.kb, input.seeds);
            (slices, table, None)
        }
    }

    fn detect_warm(
        &self,
        table: &FactTable,
        input: DetectInput<'_>,
        warm: Option<SliceHierarchy>,
        changed: &[EntityId],
    ) -> (Vec<DiscoveredSlice>, Option<SliceHierarchy>, bool) {
        if !input.seeds.is_empty() {
            // Seeded runs never cache hierarchies; defensive fallback.
            if let Some(h) = warm {
                h.recycle();
            }
            return (
                self.run_on_table(table, input.source, input.kb, input.seeds),
                None,
                false,
            );
        }
        self.run_on_table_warm(table, input.source, warm, changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;

    #[test]
    fn midas_alg_implements_detector() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let out = alg.detect(DetectInput {
            source: &src,
            kb: &kb,
            seeds: &[],
        });
        assert_eq!(out.len(), 1);
        assert_eq!(alg.name(), "midas");
    }
}
