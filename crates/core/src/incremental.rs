//! Incremental knowledge-base augmentation — the operational loop around
//! MIDAS.
//!
//! The paper stops at *suggesting* slices; operationally, an operator picks
//! a suggestion, extracts it (crawl + wrapper induction), loads the new
//! facts, and asks MIDAS again — previously-suggested slices lose their
//! value as their facts become known, and previously-buried slices surface.
//! [`Augmenter`] drives that loop with a pluggable "extraction" step; the
//! default [`Augmenter::accept`] simulates a perfect extraction by loading
//! the slice's facts straight into the knowledge base.
//!
//! The loop is **incremental**: the corpus is shared behind an `Arc` (no
//! per-round deep clone), every `accept` records the insertion delta as a
//! [`KbDelta`], and [`Augmenter::suggest`] drives
//! [`Framework::run_incremental`] with a persistent [`RoundCache`] so only
//! the dirty subtree of the URL hierarchy is re-detected. Results are
//! bit-identical to a from-scratch rebuild ([`Augmenter::suggest_fresh`])
//! at every round.

use std::sync::Arc;

use crate::config::MidasConfig;
use crate::framework::{Framework, FrameworkReport, KbDelta, RoundCache};
use crate::single_source::MidasAlg;
use crate::slice::DiscoveredSlice;
use crate::source::SourceFacts;
use midas_kb::{Fact, KnowledgeBase, Symbol};

/// One accepted suggestion and the augmentation it caused.
#[derive(Debug, Clone)]
pub struct AugmentationStep {
    /// The slice that was accepted.
    pub slice: DiscoveredSlice,
    /// How many facts the knowledge base actually gained.
    pub facts_added: usize,
    /// Knowledge-base size after the step.
    pub kb_size: usize,
}

/// Iterative augmentation driver.
#[derive(Debug)]
pub struct Augmenter {
    config: MidasConfig,
    sources: Arc<[SourceFacts]>,
    kb: KnowledgeBase,
    threads: usize,
    history: Vec<AugmentationStep>,
    cache: RoundCache,
    /// Insertions accepted since the last `suggest`, projected onto the
    /// corpus; drained into `run_incremental` as the invalidation key.
    delta: KbDelta,
}

impl Augmenter {
    /// Creates the driver over a corpus and an initial knowledge base.
    pub fn new(config: MidasConfig, sources: Vec<SourceFacts>, kb: KnowledgeBase) -> Self {
        Augmenter::with_shared_sources(config, Arc::from(sources), kb)
    }

    /// Creates the driver over an already-shared corpus, so a caller that
    /// keeps its own handle pays no copy at all.
    pub fn with_shared_sources(
        config: MidasConfig,
        sources: Arc<[SourceFacts]>,
        kb: KnowledgeBase,
    ) -> Self {
        Augmenter {
            config,
            sources,
            kb,
            threads: 1,
            history: Vec::new(),
            cache: RoundCache::new(),
            delta: KbDelta::new(),
        }
    }

    /// Sets the framework worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The current knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The corpus the loop runs over.
    pub fn sources(&self) -> &[SourceFacts] {
        &self.sources
    }

    /// The accepted steps so far.
    pub fn history(&self) -> &[AugmentationStep] {
        &self.history
    }

    /// The algorithm configuration the loop runs with.
    pub fn config(&self) -> &MidasConfig {
        &self.config
    }

    /// Number of leaf hierarchies the incremental cache currently retains
    /// for warm patching (zero before the first `suggest` and whenever
    /// `MIDAS_NO_WARM_HIERARCHY` disabled retention on the last run).
    pub fn warm_hierarchies(&self) -> usize {
        self.cache.warm_hierarchies()
    }

    fn framework<'a>(&self, alg: &'a MidasAlg) -> Framework<'a, MidasAlg> {
        Framework::new(alg, self.config.cost)
            .with_threads(self.threads)
            .with_budget(self.config.budget)
            .with_stream_window(self.config.stream_window)
    }

    /// Runs discovery against the current knowledge base, returning ranked
    /// suggestions. Incremental: only sources whose facts intersect the
    /// insertions accepted since the previous call (and the URL subtrees
    /// above them) are re-detected; everything else replays from the cache.
    pub fn suggest(&mut self) -> Vec<DiscoveredSlice> {
        self.suggest_report().slices
    }

    /// Like [`Augmenter::suggest`], but returns the full framework report
    /// (execution counters, quarantine) alongside the suggestions.
    pub fn suggest_report(&mut self) -> FrameworkReport {
        let alg = MidasAlg::new(self.config.clone());
        let delta = std::mem::take(&mut self.delta);
        self.framework(&alg)
            .run_incremental(&self.sources, &self.kb, &mut self.cache, &delta)
    }

    /// From-scratch discovery on the current knowledge base, neither reading
    /// nor touching the incremental cache. Bit-identical to what
    /// [`Augmenter::suggest`] returns at the same KB state — the
    /// `incremental_equivalence` suite pins that down — and kept as the
    /// rebuild baseline for tests and benchmarks.
    pub fn suggest_fresh(&self) -> FrameworkReport {
        let alg = MidasAlg::new(self.config.clone());
        self.framework(&alg).run(self.sources.to_vec(), &self.kb)
    }

    /// Accepts a suggestion: simulates a perfect extraction of the slice by
    /// loading every fact of its entities (within its source scope) into the
    /// knowledge base. Returns the recorded step.
    pub fn accept(&mut self, slice: &DiscoveredSlice) -> AugmentationStep {
        // The membership test below binary-searches the slice's extent.
        // Framework-built slices uphold the sorted invariant; a hand-built
        // one may not, and unsorted input used to make the search silently
        // miss facts — fall back to a sorted copy instead.
        let mut sorted_storage: Vec<Symbol>;
        let entities: &[Symbol] = if slice.entities_sorted() {
            &slice.entities
        } else {
            sorted_storage = slice.entities.clone();
            sorted_storage.sort_unstable();
            &sorted_storage
        };
        let mut inserted: Vec<Fact> = Vec::new();
        for src in self.sources.iter() {
            if !slice.source.contains(&src.url) {
                continue;
            }
            for f in &src.facts {
                if entities.binary_search(&f.subject).is_ok() && self.kb.insert(*f) {
                    inserted.push(*f);
                }
            }
        }
        self.delta.record(&self.sources, &inserted);
        let step = AugmentationStep {
            slice: slice.clone(),
            facts_added: inserted.len(),
            kb_size: self.kb.len(),
        };
        self.history.push(step.clone());
        step
    }

    /// Runs the full loop: repeatedly accept the top suggestion until no
    /// positive-profit suggestion remains or `max_rounds` is reached.
    /// Returns the accepted steps.
    pub fn run_to_saturation(&mut self, max_rounds: usize) -> Vec<AugmentationStep> {
        let mut steps = Vec::new();
        for _ in 0..max_rounds {
            let suggestions = self.suggest();
            let Some(best) = suggestions.into_iter().find(|s| s.profit > 0.0) else {
                break;
            };
            let step = self.accept(&best);
            let stalled = step.facts_added == 0;
            steps.push(step);
            if stalled {
                // A positive-profit suggestion that added nothing cannot
                // make progress: the KB is unchanged, so the next round
                // would re-suggest and re-accept the same slice until
                // `max_rounds` burns out.
                break;
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostModel;
    use crate::fixtures::skyrocket_pages;
    use midas_kb::Interner;

    #[test]
    fn accepting_s5_saturates_the_running_example() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages, kb);

        let suggestions = aug.suggest();
        assert_eq!(suggestions.len(), 1, "S5 is the only suggestion");
        let step = aug.accept(&suggestions[0]);
        assert_eq!(step.facts_added, 6, "the six rocket-family facts");

        // After augmentation nothing remains to suggest.
        let after = aug.suggest();
        assert!(after.is_empty(), "KB is saturated: {after:?}");
        assert_eq!(aug.history().len(), 1);
    }

    #[test]
    fn run_to_saturation_terminates() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages, kb).with_threads(2);
        let steps = aug.run_to_saturation(10);
        assert_eq!(steps.len(), 1);
        assert!(aug.suggest().is_empty());
        // Idempotent once saturated.
        assert!(aug.run_to_saturation(3).is_empty());
    }

    #[test]
    fn accepting_twice_adds_nothing_new() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages, kb);
        let s = aug.suggest().remove(0);
        let first = aug.accept(&s);
        let second = aug.accept(&s);
        assert_eq!(first.facts_added, 6);
        assert_eq!(second.facts_added, 0);
        assert_eq!(second.kb_size, first.kb_size);
    }

    #[test]
    fn accept_handles_shuffled_entity_lists() {
        // Regression: `accept` binary-searched `slice.entities` as given, so
        // an unsorted extent silently skipped facts. A reversed (descending)
        // list must now add exactly as many facts as the sorted one.
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages.clone(), kb.clone());
        let s = aug.suggest().remove(0);
        assert!(s.entities.len() >= 2);

        let mut shuffled = s.clone();
        shuffled.entities.reverse();
        assert!(!shuffled.entities_sorted(), "test needs an unsorted extent");

        let mut aug2 = Augmenter::new(MidasConfig::running_example(), pages, kb);
        let sorted_step = aug.accept(&s);
        let shuffled_step = aug2.accept(&shuffled);
        assert_eq!(sorted_step.facts_added, 6);
        assert_eq!(
            shuffled_step.facts_added, sorted_step.facts_added,
            "entity order must not change what gets extracted"
        );
        assert_eq!(shuffled_step.kb_size, sorted_step.kb_size);
    }

    #[test]
    fn run_to_saturation_stops_on_zero_progress() {
        // A negative per-slice cost makes a slice with zero new facts
        // positive-profit: f = (1-fv)·new − fd·facts − fp·|S| − fc·|T_W| with
        // fp < 0 stays above zero even once everything is known. The loop
        // used to re-accept such a suggestion until max_rounds burned out.
        let mut t = Interner::new();
        let mut facts = Vec::new();
        for i in 0..4 {
            facts.push(Fact::intern(&mut t, &format!("e{i}"), "type", "widget"));
        }
        let sources = vec![SourceFacts::new(
            midas_weburl::SourceUrl::parse("http://a.com/widgets/page").unwrap(),
            facts.clone(),
        )];
        // Seed the KB with every fact: nothing is new from the start.
        let mut kb = KnowledgeBase::new();
        for f in &facts {
            kb.insert(*f);
        }
        let config = MidasConfig {
            cost: CostModel {
                fp: -5.0,
                fc: 0.0,
                fd: 0.0,
                fv: 0.1,
            },
            ..MidasConfig::running_example()
        };
        let mut aug = Augmenter::new(config, sources, kb);
        let probe = aug.suggest_fresh();
        assert!(
            probe.slices.iter().any(|s| s.profit > 0.0),
            "the setup must produce a positive-profit zero-gain suggestion: {:?}",
            probe.slices
        );
        let steps = aug.run_to_saturation(50);
        assert_eq!(steps.len(), 1, "one stalled accept, then stop: {steps:?}");
        assert_eq!(steps[0].facts_added, 0);
    }

    #[test]
    fn suggest_matches_fresh_rebuild_after_each_accept() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages, kb);
        for _ in 0..4 {
            let fresh = aug.suggest_fresh();
            let incr = aug.suggest_report();
            assert_eq!(incr.slices.len(), fresh.slices.len());
            for (a, b) in incr.slices.iter().zip(&fresh.slices) {
                assert_eq!(a.source, b.source);
                assert_eq!(a.entities, b.entities);
                assert_eq!(a.profit.to_bits(), b.profit.to_bits());
            }
            let Some(best) = incr.slices.into_iter().find(|s| s.profit > 0.0) else {
                break;
            };
            aug.accept(&best);
        }
        assert!(!aug.history().is_empty());
    }

    #[test]
    fn warm_hierarchies_are_retained_and_patched() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages, kb);
        assert_eq!(aug.warm_hierarchies(), 0, "cold loop retains nothing yet");
        let first = aug.suggest_report();
        assert_eq!(first.hierarchies_reused, 0, "round 0 has nothing to patch");
        assert!(
            aug.warm_hierarchies() > 0,
            "round 0 must retain leaf hierarchies for the next round"
        );
        let best = first
            .slices
            .into_iter()
            .find(|s| s.profit > 0.0)
            .expect("the running example suggests S5");
        aug.accept(&best);
        let fresh = aug.suggest_fresh();
        let warm = aug.suggest_report();
        assert!(
            warm.hierarchies_reused > 0,
            "dirty leaves must patch their retained hierarchy in place"
        );
        assert_eq!(warm.slices.len(), fresh.slices.len());
        for (a, b) in warm.slices.iter().zip(&fresh.slices) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.entities, b.entities);
            assert_eq!(a.profit.to_bits(), b.profit.to_bits());
        }
    }

    #[test]
    fn multi_vertical_corpus_saturates_in_order() {
        // Two verticals of different value: the loop must take the more
        // profitable one first.
        let mut t = Interner::new();
        let mut facts_a = Vec::new();
        let mut facts_b = Vec::new();
        for i in 0..12 {
            facts_a.push(midas_kb::Fact::intern(
                &mut t,
                &format!("golf{i}"),
                "type",
                "golf",
            ));
            facts_a.push(midas_kb::Fact::intern(
                &mut t,
                &format!("golf{i}"),
                "hole",
                &format!("h{i}"),
            ));
        }
        for i in 0..4 {
            facts_b.push(midas_kb::Fact::intern(
                &mut t,
                &format!("game{i}"),
                "type",
                "game",
            ));
        }
        let url = |s: &str| midas_weburl::SourceUrl::parse(s).unwrap();
        let sources = vec![
            SourceFacts::new(url("http://a.com/golf/page"), facts_a),
            SourceFacts::new(url("http://a.com/games/page"), facts_b),
        ];
        let mut aug = Augmenter::new(
            MidasConfig::running_example(),
            sources,
            KnowledgeBase::new(),
        );
        let steps = aug.run_to_saturation(10);
        assert!(
            steps.len() >= 2,
            "both verticals eventually accepted: {steps:?}"
        );
        assert!(
            steps[0].facts_added > steps[1].facts_added,
            "richer slice first"
        );
    }
}
