//! Incremental knowledge-base augmentation — the operational loop around
//! MIDAS.
//!
//! The paper stops at *suggesting* slices; operationally, an operator picks
//! a suggestion, extracts it (crawl + wrapper induction), loads the new
//! facts, and asks MIDAS again — previously-suggested slices lose their
//! value as their facts become known, and previously-buried slices surface.
//! [`Augmenter`] drives that loop with a pluggable "extraction" step; the
//! default [`Augmenter::accept`] simulates a perfect extraction by loading
//! the slice's facts straight into the knowledge base.

use crate::config::MidasConfig;
use crate::framework::Framework;
use crate::single_source::MidasAlg;
use crate::slice::DiscoveredSlice;
use crate::source::SourceFacts;
use midas_kb::KnowledgeBase;

/// One accepted suggestion and the augmentation it caused.
#[derive(Debug, Clone)]
pub struct AugmentationStep {
    /// The slice that was accepted.
    pub slice: DiscoveredSlice,
    /// How many facts the knowledge base actually gained.
    pub facts_added: usize,
    /// Knowledge-base size after the step.
    pub kb_size: usize,
}

/// Iterative augmentation driver.
#[derive(Debug)]
pub struct Augmenter {
    config: MidasConfig,
    sources: Vec<SourceFacts>,
    kb: KnowledgeBase,
    threads: usize,
    history: Vec<AugmentationStep>,
}

impl Augmenter {
    /// Creates the driver over a corpus and an initial knowledge base.
    pub fn new(config: MidasConfig, sources: Vec<SourceFacts>, kb: KnowledgeBase) -> Self {
        Augmenter {
            config,
            sources,
            kb,
            threads: 1,
            history: Vec::new(),
        }
    }

    /// Sets the framework worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The current knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The accepted steps so far.
    pub fn history(&self) -> &[AugmentationStep] {
        &self.history
    }

    /// Runs discovery against the current knowledge base, returning ranked
    /// suggestions.
    pub fn suggest(&self) -> Vec<DiscoveredSlice> {
        let alg = MidasAlg::new(self.config.clone());
        let fw = Framework::new(&alg, self.config.cost).with_threads(self.threads);
        fw.run(self.sources.clone(), &self.kb).slices
    }

    /// Accepts a suggestion: simulates a perfect extraction of the slice by
    /// loading every fact of its entities (within its source scope) into the
    /// knowledge base. Returns the recorded step.
    pub fn accept(&mut self, slice: &DiscoveredSlice) -> AugmentationStep {
        let mut added = 0usize;
        for src in &self.sources {
            if !slice.source.contains(&src.url) {
                continue;
            }
            for f in &src.facts {
                if slice.entities.binary_search(&f.subject).is_ok() && self.kb.insert(*f) {
                    added += 1;
                }
            }
        }
        let step = AugmentationStep {
            slice: slice.clone(),
            facts_added: added,
            kb_size: self.kb.len(),
        };
        self.history.push(step.clone());
        step
    }

    /// Runs the full loop: repeatedly accept the top suggestion until no
    /// positive-profit suggestion remains or `max_rounds` is reached.
    /// Returns the accepted steps.
    pub fn run_to_saturation(&mut self, max_rounds: usize) -> Vec<AugmentationStep> {
        let mut steps = Vec::new();
        for _ in 0..max_rounds {
            let suggestions = self.suggest();
            let Some(best) = suggestions.into_iter().find(|s| s.profit > 0.0) else {
                break;
            };
            steps.push(self.accept(&best));
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::skyrocket_pages;
    use midas_kb::Interner;

    #[test]
    fn accepting_s5_saturates_the_running_example() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages, kb);

        let suggestions = aug.suggest();
        assert_eq!(suggestions.len(), 1, "S5 is the only suggestion");
        let step = aug.accept(&suggestions[0]);
        assert_eq!(step.facts_added, 6, "the six rocket-family facts");

        // After augmentation nothing remains to suggest.
        let after = aug.suggest();
        assert!(after.is_empty(), "KB is saturated: {after:?}");
        assert_eq!(aug.history().len(), 1);
    }

    #[test]
    fn run_to_saturation_terminates() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages, kb).with_threads(2);
        let steps = aug.run_to_saturation(10);
        assert_eq!(steps.len(), 1);
        assert!(aug.suggest().is_empty());
        // Idempotent once saturated.
        assert!(aug.run_to_saturation(3).is_empty());
    }

    #[test]
    fn accepting_twice_adds_nothing_new() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let mut aug = Augmenter::new(MidasConfig::running_example(), pages, kb);
        let s = aug.suggest().remove(0);
        let first = aug.accept(&s);
        let second = aug.accept(&s);
        assert_eq!(first.facts_added, 6);
        assert_eq!(second.facts_added, 0);
        assert_eq!(second.kb_size, first.kb_size);
    }

    #[test]
    fn multi_vertical_corpus_saturates_in_order() {
        // Two verticals of different value: the loop must take the more
        // profitable one first.
        let mut t = Interner::new();
        let mut facts_a = Vec::new();
        let mut facts_b = Vec::new();
        for i in 0..12 {
            facts_a.push(midas_kb::Fact::intern(
                &mut t,
                &format!("golf{i}"),
                "type",
                "golf",
            ));
            facts_a.push(midas_kb::Fact::intern(
                &mut t,
                &format!("golf{i}"),
                "hole",
                &format!("h{i}"),
            ));
        }
        for i in 0..4 {
            facts_b.push(midas_kb::Fact::intern(
                &mut t,
                &format!("game{i}"),
                "type",
                "game",
            ));
        }
        let url = |s: &str| midas_weburl::SourceUrl::parse(s).unwrap();
        let sources = vec![
            SourceFacts::new(url("http://a.com/golf/page"), facts_a),
            SourceFacts::new(url("http://a.com/games/page"), facts_b),
        ];
        let mut aug = Augmenter::new(
            MidasConfig::running_example(),
            sources,
            KnowledgeBase::new(),
        );
        let steps = aug.run_to_saturation(10);
        assert!(
            steps.len() >= 2,
            "both verticals eventually accepted: {steps:?}"
        );
        assert!(
            steps[0].facts_added > steps[1].facts_added,
            "richer slice first"
        );
    }
}
