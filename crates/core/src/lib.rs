//! # midas-core — web source slices, the profit model, MIDASalg, and the
//! multi-source framework
//!
//! This crate implements the primary contribution of *"MIDAS: Finding the
//! Right Web Sources to Fill Knowledge Gaps"* (Wang, Dong, Li, Meliou —
//! ICDE 2019):
//!
//! * **Web source slices** (Definitions 3–7): a [`FactTable`] organises the
//!   facts extracted from one web source by entity; a slice is a conjunction
//!   of `(predicate, value)` *properties* together with the entities that
//!   satisfy all of them and all facts of those entities. *Canonical* slices
//!   carry the maximal property set describing their extent.
//! * **The profit function** (Definition 9): [`CostModel`] and
//!   [`ProfitCtx`] quantify the value of a set of slices as
//!   `gain − (crawl + de-dup + validation)` cost.
//! * **MIDASalg** (§III-A): [`MidasAlg`] builds the slice hierarchy
//!   bottom-up with canonicality pruning (Proposition 12) and low-profit
//!   pruning (the `f_LB` subtree lower bound), then traverses it top-down
//!   (Algorithm 1) to select the reported slices.
//! * **The MIDAS framework** (§III-B): [`framework::Framework`] runs
//!   shard → detect → consolidate rounds over the URL hierarchy, reusing
//!   children's slices as the parent's initial hierarchy, with optional
//!   thread parallelism.
//!
//! The running example of the paper (Figures 2, 4 and 5) is reproduced in
//! this crate's tests and in the `space_programs` example of the workspace
//! root.

#![warn(missing_docs)]

pub mod budget;
pub mod config;
pub mod detector;
pub mod enrich;
pub mod explain;
pub mod extent;
pub mod fact_table;
pub mod faultinject;
pub mod fixtures;
pub mod framework;
pub mod hierarchy;
pub mod incremental;
pub mod parallel;
pub mod profit;
pub mod quarantine;
pub mod scratch;
pub mod single_source;
pub mod slice;
pub mod snapshot;
pub mod source;
pub mod telemetry;
pub mod traversal;

pub use budget::{BreachKind, BudgetBreach, BudgetScope, SourceBudget};
pub use config::{CostModel, MidasConfig};
pub use detector::{DetectInput, SliceDetector};
pub use enrich::RangeEnrichment;
pub use explain::ProfitBreakdown;
pub use extent::ExtentSet;
pub use fact_table::{EntityId, FactTable, PropertyCatalog, PropertyId};
pub use faultinject::FaultPlan;
pub use framework::{ExportPolicy, Framework, FrameworkReport, KbDelta, RoundCache};
pub use hierarchy::SliceHierarchy;
pub use incremental::{AugmentationStep, Augmenter};
pub use midas_kb::crashpoint;
pub use profit::ProfitCtx;
pub use quarantine::{FaultCause, Quarantine, SourceFault, Stage};
pub use single_source::MidasAlg;
pub use slice::{DiscoveredSlice, SliceSetStats};
pub use snapshot::{load_corpus, load_slices, save_corpus, save_slices, Corpus};
pub use source::SourceFacts;
