//! The MIDAS multi-source framework (§III-B).
//!
//! The framework walks the URL hierarchy bottom-up in rounds. Each round
//! takes the sources at the current finest depth and the slice candidates
//! discovered so far, and
//!
//! 1. **shards** them by their one-level-coarser parent URL,
//! 2. **detects** slices in each parent source, seeding the slice hierarchy
//!    with the property sets of the children's exported slices, and
//! 3. **consolidates**: for every parent slice, the children slices whose
//!    extents it contains compete with it as a set; the side with the higher
//!    profit survives (Example 16: the sub-domain slice "rocket families
//!    sponsored by NASA" displaces the two page slices it covers).
//!
//! Shards are independent, so each round is processed by a small thread pool
//! (the paper used MapReduce with the same keying).
//!
//! ### Streaming pipeline
//!
//! Each round runs as a **bounded streaming pipeline** over
//! [`crate::parallel::par_map_streamed`]: at most `stream_window` shards are
//! admitted to the pool at once (configurable via
//! [`Framework::with_stream_window`], `--stream-window` on the CLI), and
//! each shard's result is folded into the round state in deterministic input
//! order the moment its turn completes. Completed shards release their fact
//! tables, hierarchy extents, and scratch buffers eagerly (see
//! [`crate::scratch`]), so peak resident memory is proportional to the
//! window, not the corpus. The delivery order — and therefore every report
//! and quarantine entry — is bit-identical at every `(window, threads)`
//! combination.
//!
//! ### Approximations relative to the paper
//!
//! * Entities appearing on several sibling pages are counted once per slice
//!   when child slices are combined into a set profit; cross-page entity
//!   overlap (rare in practice) slightly overstates a children set's gain.
//! * A seed slice whose property set is a subset of another seed's is
//!   treated as initial (hence canonical) even if its extent coincides; the
//!   paper does not specify this corner.
//!
//! ### Fault isolation
//!
//! Every detection task runs in the panic-safe pool
//! ([`crate::parallel::par_map_isolated`]) under the configured per-source
//! [`SourceBudget`]. A source whose task panics or breaches its budget is
//! **quarantined**: its partial state is discarded, a [`SourceFault`] is
//! recorded in the report, and — for round-0 leaves — its facts are removed
//! before the merge step, so the run over the surviving sources is
//! bit-identical to a clean run that never saw the faulted sources. When a
//! merge-round (parent) task faults, the children's candidates survive and
//! continue competing at coarser granularities; only the parent's own
//! detection is lost.

use std::collections::BTreeMap;

use midas_kb::{KnowledgeBase, Symbol};
use midas_weburl::SourceUrl;

use crate::budget::{self, BreachKind, BudgetBreach, BudgetScope, SourceBudget};
use crate::config::CostModel;
use crate::detector::{DetectInput, SliceDetector};
use crate::faultinject;
use crate::parallel::par_map_streamed;
use crate::quarantine::{Quarantine, SourceFault, Stage};
use crate::slice::DiscoveredSlice;
use crate::source::SourceFacts;

/// What a round exports to the next round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportPolicy {
    /// Only positive-profit slices propagate upward (the paper's behaviour,
    /// Example 16).
    #[default]
    PositiveOnly,
    /// All detected slices propagate; useful when many small pages only
    /// become profitable once merged at a coarser granularity (ablation).
    ExportAll,
}

/// A slice candidate travelling through the rounds.
#[derive(Debug, Clone)]
struct Candidate {
    slice: DiscoveredSlice,
    /// `|T_W|` of the slice's origin source (for the crawl term of set
    /// profits during consolidation).
    origin_total_facts: usize,
}

/// Result of a framework run.
#[derive(Debug)]
pub struct FrameworkReport {
    /// All surviving slices, sorted by profit, descending.
    pub slices: Vec<DiscoveredSlice>,
    /// Number of depth rounds executed (excluding the initial per-source
    /// detection round).
    pub rounds: usize,
    /// Total number of detector invocations.
    pub detect_calls: usize,
    /// Sources dropped from the run (panics, budget breaches), in
    /// deterministic source order per round.
    pub quarantine: Quarantine,
}

/// The shard → detect → consolidate driver.
pub struct Framework<'a, D: SliceDetector> {
    detector: &'a D,
    cost: CostModel,
    policy: ExportPolicy,
    threads: usize,
    budget: SourceBudget,
    stream_window: Option<usize>,
}

impl<'a, D: SliceDetector> Framework<'a, D> {
    /// Creates a sequential framework around `detector`.
    pub fn new(detector: &'a D, cost: CostModel) -> Self {
        Framework {
            detector,
            cost,
            policy: ExportPolicy::PositiveOnly,
            threads: 1,
            budget: SourceBudget::unlimited(),
            stream_window: None,
        }
    }

    /// Sets the export policy.
    pub fn with_policy(mut self, policy: ExportPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the number of worker threads per round (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the per-source execution budget (applies to every detection
    /// unit: each leaf in round 0 and each parent shard in merge rounds).
    pub fn with_budget(mut self, budget: SourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Bounds the number of shards admitted to a round's pool at once
    /// (`None` = unbounded: the whole round in flight, the pre-streaming
    /// behaviour). Smaller windows cap peak resident memory — a completed
    /// shard's fact table, extents, and scratch buffers are released before
    /// later shards are admitted — at the cost of pipeline slack when shard
    /// sizes are very uneven. Reports are bit-identical at every window.
    pub fn with_stream_window(mut self, window: Option<usize>) -> Self {
        self.stream_window = window.map(|w| w.max(1));
        self
    }

    /// Effective admission window for a round of `n` tasks.
    fn window_for(&self, n: usize) -> usize {
        self.stream_window.map_or_else(|| n.max(1), |w| w.max(1))
    }

    /// The per-task guard: fault injection hooks, then the up-front
    /// fact-count cap. Unwinds (into the isolated pool) on breach.
    fn guard_task(&self, url: &str, index: usize, total_facts: usize) {
        faultinject::maybe_panic_worker(url, index);
        faultinject::maybe_exhaust_budget(url, index);
        if let Some(cap) = self.budget.max_facts {
            if total_facts > cap {
                budget::breach(BudgetBreach {
                    kind: BreachKind::Facts,
                    limit: cap as u64,
                    observed: total_facts as u64,
                });
            }
        }
    }

    /// Runs the framework over a corpus of per-source fact sets.
    pub fn run(&self, sources: Vec<SourceFacts>, kb: &KnowledgeBase) -> FrameworkReport {
        // Normalise: merge inputs sharing a URL.
        let mut by_url: BTreeMap<SourceUrl, SourceFacts> = BTreeMap::new();
        for s in sources {
            match by_url.get_mut(&s.url) {
                Some(existing) => {
                    let merged = SourceFacts::merge(
                        s.url.clone(),
                        [
                            std::mem::replace(existing, SourceFacts::new(s.url.clone(), vec![])),
                            s,
                        ],
                    );
                    *existing = merged;
                }
                None => {
                    by_url.insert(s.url.clone(), s);
                }
            }
        }

        let mut detect_calls = 0usize;
        let mut quarantine = Quarantine::new();

        // Round 0: per-source detection, entity-based initial slices. Each
        // leaf runs isolated under the per-source budget; `index` is the
        // leaf's position in the deterministic sorted source order (the
        // coordinate fault-injection plans target). Leaves stream through a
        // bounded window: each result is folded into the candidate map in
        // source order as soon as its turn completes, so only `window`
        // detections' worth of state is ever in flight.
        let leaf_meta: Vec<(SourceUrl, usize)> =
            by_url.values().map(|s| (s.url.clone(), s.len())).collect();
        let leaf_sources: Vec<(usize, &SourceFacts)> = by_url.values().enumerate().collect();
        detect_calls += leaf_sources.len();
        let window = self.window_for(leaf_sources.len());

        let mut candidates: BTreeMap<SourceUrl, Vec<Candidate>> = BTreeMap::new();
        let mut faulted: Vec<SourceUrl> = Vec::new();
        par_map_streamed(
            self.threads,
            window,
            leaf_sources,
            |(index, src)| {
                self.guard_task(src.url.as_str(), index, src.len());
                let _scope = BudgetScope::enter(&self.budget);
                self.detector.detect(DetectInput {
                    source: src,
                    kb,
                    seeds: &[],
                })
            },
            |index, result| {
                let (url, facts_seen) = &leaf_meta[index];
                match result {
                    Ok(slices) => {
                        let mut kept: Vec<Candidate> = slices
                            .into_iter()
                            .filter(|s| self.exportable(s))
                            .map(|slice| Candidate {
                                slice,
                                origin_total_facts: *facts_seen,
                            })
                            .collect();
                        if !kept.is_empty() {
                            candidates.entry(url.clone()).or_default().append(&mut kept);
                        }
                    }
                    Err(fault) => {
                        quarantine.push(SourceFault {
                            source: url.as_str().to_string(),
                            stage: Stage::Detect,
                            cause: fault.cause,
                            facts_seen: *facts_seen,
                        });
                        faulted.push(url.clone());
                    }
                }
            },
        );
        // Discard quarantined leaves *before* the merge loop: their facts
        // never reach a parent, so the run over the surviving N−k sources is
        // identical to a clean run that was never given the faulted k.
        for url in &faulted {
            by_url.remove(url);
        }

        // Depth rounds, finest to coarsest.
        let max_depth = by_url.keys().map(SourceUrl::depth).max().unwrap_or(0);
        let mut rounds = 0usize;
        for d in (1..=max_depth).rev() {
            rounds += 1;
            // Merge sources at depth d into their parents: group each
            // parent's children first, then merge every group in one pass
            // (one sort + dedup per parent instead of one per child).
            let deep_urls: Vec<SourceUrl> =
                by_url.keys().filter(|u| u.depth() == d).cloned().collect();
            let mut regrouped: BTreeMap<SourceUrl, Vec<SourceFacts>> = BTreeMap::new();
            for url in deep_urls {
                let child = by_url.remove(&url).expect("url present");
                let parent = url.parent().expect("depth ≥ 1 has a parent");
                regrouped.entry(parent).or_default().push(child);
            }
            for (parent, mut children) in regrouped {
                if let Some(own) = by_url.remove(&parent) {
                    children.push(own);
                }
                let merged = SourceFacts::merge(parent.clone(), children);
                by_url.insert(parent, merged);
            }

            // Shard candidates at depth d by parent.
            let deep_positions: Vec<SourceUrl> = candidates
                .keys()
                .filter(|u| u.depth() == d)
                .cloned()
                .collect();
            let mut shards: BTreeMap<SourceUrl, Vec<Candidate>> = BTreeMap::new();
            for pos in deep_positions {
                let cands = candidates.remove(&pos).expect("position present");
                let parent = pos.parent().expect("depth ≥ 1 has a parent");
                shards.entry(parent).or_default().extend(cands);
            }

            // Fold the parents' own pre-existing candidates into their shard
            // so they compete during consolidation.
            for (parent, shard) in &mut shards {
                if let Some(own) = candidates.remove(parent) {
                    shard.extend(own);
                }
            }

            // Detect + consolidate per parent shard, streamed through the
            // bounded window. Tasks borrow the work list so that a faulting
            // parent's child candidates can be recovered in the sink (the
            // clone happens only on that rare fault path).
            let work: Vec<(SourceUrl, Vec<Candidate>)> = shards.into_iter().collect();
            detect_calls += work.len();
            let indices: Vec<usize> = (0..work.len()).collect();
            let window = self.window_for(work.len());
            par_map_streamed(
                self.threads,
                window,
                indices,
                |wi| {
                    let (parent, inputs) = &work[wi];
                    // Merge-round tasks are only addressable by URL substring
                    // (index coordinates name round-0 leaves).
                    self.guard_task(parent.as_str(), usize::MAX, by_url[parent].len());
                    let _scope = BudgetScope::enter(&self.budget);
                    let parent_src = &by_url[parent];
                    let seeds = seed_sets(inputs);
                    let detected = self.detector.detect(DetectInput {
                        source: parent_src,
                        kb,
                        seeds: &seeds,
                    });
                    self.consolidate(detected, inputs.clone(), parent_src.len())
                },
                |wi, result| {
                    let (parent, inputs) = &work[wi];
                    match result {
                        Ok(survivors) => {
                            let kept: Vec<Candidate> = survivors
                                .into_iter()
                                .filter(|c| self.exportable(&c.slice))
                                .collect();
                            if !kept.is_empty() {
                                candidates.entry(parent.clone()).or_default().extend(kept);
                            }
                        }
                        Err(fault) => {
                            quarantine.push(SourceFault {
                                source: parent.as_str().to_string(),
                                stage: Stage::Consolidate,
                                cause: fault.cause,
                                facts_seen: by_url.get(parent).map_or(0, SourceFacts::len),
                            });
                            // The parent's own detection is lost, but the
                            // children's candidates keep competing upward.
                            if !inputs.is_empty() {
                                candidates
                                    .entry(parent.clone())
                                    .or_default()
                                    .extend(inputs.iter().cloned());
                            }
                        }
                    }
                },
            );
        }

        let mut slices: Vec<DiscoveredSlice> = candidates
            .into_values()
            .flatten()
            .map(|c| c.slice)
            .collect();
        slices.sort_by(|a, b| b.profit.partial_cmp(&a.profit).expect("finite profits"));
        FrameworkReport {
            slices,
            rounds,
            detect_calls,
            quarantine,
        }
    }

    fn exportable(&self, s: &DiscoveredSlice) -> bool {
        match self.policy {
            ExportPolicy::PositiveOnly => s.profit > 0.0,
            ExportPolicy::ExportAll => true,
        }
    }

    /// The consolidation phase: parent slices vs the children slices whose
    /// extents they contain.
    fn consolidate(
        &self,
        mut detected: Vec<DiscoveredSlice>,
        inputs: Vec<Candidate>,
        parent_total_facts: usize,
    ) -> Vec<Candidate> {
        detected.sort_by(|a, b| b.profit.partial_cmp(&a.profit).expect("finite profits"));
        let mut assigned = vec![false; inputs.len()];
        let mut kept: Vec<Candidate> = Vec::new();
        for parent_slice in detected {
            let contained: Vec<usize> = (0..inputs.len())
                .filter(|&i| {
                    !assigned[i]
                        && is_entity_subset(&inputs[i].slice.entities, &parent_slice.entities)
                })
                .collect();
            if contained.is_empty() {
                kept.push(Candidate {
                    slice: parent_slice,
                    origin_total_facts: parent_total_facts,
                });
                continue;
            }
            let f_children = self.children_set_profit(&inputs, &contained);
            // Ties go to the children: at equal profit the finer-grained
            // sources are the more precise extraction target.
            if f_children >= parent_slice.profit {
                for &i in &contained {
                    assigned[i] = true;
                    kept.push(inputs[i].clone());
                }
            } else {
                for &i in &contained {
                    assigned[i] = true;
                }
                kept.push(Candidate {
                    slice: parent_slice,
                    origin_total_facts: parent_total_facts,
                });
            }
        }
        for (i, c) in inputs.into_iter().enumerate() {
            if !assigned[i] {
                kept.push(c);
            }
        }
        kept
    }

    /// Profit of a set of child candidates (Definition 9 with the crawl term
    /// charged once per distinct origin source).
    fn children_set_profit(&self, inputs: &[Candidate], idxs: &[usize]) -> f64 {
        let mut gain_terms = 0.0;
        let mut crawl_sources: Vec<(&SourceUrl, usize)> = Vec::new();
        for &i in idxs {
            let c = &inputs[i];
            gain_terms += (1.0 - self.cost.fv) * c.slice.num_new_facts as f64
                - self.cost.fd * c.slice.num_facts as f64;
            if !crawl_sources.iter().any(|(u, _)| *u == &c.slice.source) {
                crawl_sources.push((&c.slice.source, c.origin_total_facts));
            }
        }
        let crawl: f64 = crawl_sources
            .iter()
            .map(|&(_, tw)| self.cost.fc * tw as f64)
            .sum();
        gain_terms - self.cost.fp * idxs.len() as f64 - crawl
    }
}

/// Deduplicated property sets of the input candidates, used to seed the
/// parent's slice hierarchy.
fn seed_sets(inputs: &[Candidate]) -> Vec<Vec<(Symbol, Symbol)>> {
    let mut seeds: Vec<Vec<(Symbol, Symbol)>> = Vec::new();
    for c in inputs {
        if c.slice.properties.is_empty() {
            continue;
        }
        if !seeds.contains(&c.slice.properties) {
            seeds.push(c.slice.properties.clone());
        }
    }
    seeds
}

/// Whether sorted symbol list `sub` is a subset of sorted list `sup`.
fn is_entity_subset(sub: &[Symbol], sup: &[Symbol]) -> bool {
    let mut j = 0;
    for &x in sub {
        while j < sup.len() && sup[j] < x {
            j += 1;
        }
        if j >= sup.len() || sup[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::fixtures::skyrocket_pages;
    use crate::single_source::MidasAlg;
    use midas_kb::Interner;

    fn run_running_example(threads: usize) -> (Interner, FrameworkReport) {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost).with_threads(threads);
        let report = fw.run(pages, &kb);
        (t, report)
    }

    /// Example 16 end to end: the framework reports exactly the sub-domain
    /// slice S5 ("rocket families sponsored by NASA" at /doc_lau_fam).
    #[test]
    fn example_16_end_to_end() {
        let (t, report) = run_running_example(1);
        assert_eq!(report.slices.len(), 1, "only S5 survives");
        let s5 = &report.slices[0];
        assert_eq!(
            s5.source.as_str(),
            "http://space.skyrocket.de/doc_lau_fam",
            "S5 is reported at the sub-domain granularity"
        );
        assert_eq!(s5.entities.len(), 2);
        assert_eq!(s5.num_new_facts, 6);
        let desc = s5.describe(&t);
        assert!(desc.contains("rocket_family"));
        assert!(report.rounds >= 2, "pages → sub-domain → domain");
        assert!(
            report.quarantine.is_empty(),
            "clean run quarantines nothing"
        );
    }

    #[test]
    fn fact_cap_quarantines_every_leaf() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let n = pages.len();
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost)
            .with_budget(SourceBudget::unlimited().with_max_facts(0));
        let report = fw.run(pages, &kb);
        assert!(report.slices.is_empty());
        assert_eq!(report.rounds, 0, "no surviving leaves, no merge rounds");
        assert_eq!(report.quarantine.len(), n);
        assert!(report.quarantine.iter().all(|f| matches!(
            f.cause,
            crate::quarantine::FaultCause::Budget(BudgetBreach {
                kind: BreachKind::Facts,
                ..
            })
        )));
    }

    #[test]
    fn budget_quarantined_leaf_matches_clean_run_without_it() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let largest = pages.iter().map(SourceFacts::len).max().unwrap();
        let survivors: Vec<SourceFacts> = pages
            .iter()
            .filter(|p| p.len() < largest)
            .cloned()
            .collect();
        let dropped = pages.len() - survivors.len();
        assert!(dropped > 0 && !survivors.is_empty());

        let alg = MidasAlg::new(MidasConfig::running_example());
        for threads in [1, 4] {
            let budgeted = Framework::new(&alg, alg.config.cost)
                .with_threads(threads)
                .with_budget(SourceBudget::unlimited().with_max_facts(largest - 1))
                .run(pages.clone(), &kb);
            let clean = Framework::new(&alg, alg.config.cost)
                .with_threads(threads)
                .run(survivors.clone(), &kb);
            assert_eq!(budgeted.quarantine.len(), dropped);
            assert!(clean.quarantine.is_empty());
            assert_eq!(budgeted.slices.len(), clean.slices.len());
            for (a, b) in budgeted.slices.iter().zip(&clean.slices) {
                assert_eq!(a.source, b.source);
                assert_eq!(a.entities, b.entities);
                assert_eq!(a.profit.to_bits(), b.profit.to_bits());
            }
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let (_, seq) = run_running_example(1);
        let (_, par) = run_running_example(4);
        assert_eq!(seq.slices.len(), par.slices.len());
        for (a, b) in seq.slices.iter().zip(&par.slices) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.entities, b.entities);
            assert!((a.profit - b.profit).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_window_never_changes_the_report() {
        let (_, unbounded) = run_running_example(4);
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        for window in [1usize, 2, 3] {
            for threads in [1usize, 4] {
                let fw = Framework::new(&alg, alg.config.cost)
                    .with_threads(threads)
                    .with_stream_window(Some(window));
                let report = fw.run(pages.clone(), &kb);
                assert_eq!(report.slices.len(), unbounded.slices.len());
                for (a, b) in report.slices.iter().zip(&unbounded.slices) {
                    assert_eq!(a.source, b.source);
                    assert_eq!(a.entities, b.entities);
                    assert_eq!(a.profit.to_bits(), b.profit.to_bits());
                }
                assert_eq!(report.detect_calls, unbounded.detect_calls);
            }
        }
    }

    #[test]
    fn export_all_keeps_negative_candidates() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost).with_policy(ExportPolicy::ExportAll);
        let report = fw.run(pages, &kb);
        // With export-all, at least the S5 consolidation result must still
        // be present and profitable.
        assert!(report.slices.iter().any(|s| s.profit > 4.0));
    }

    #[test]
    fn empty_corpus_is_fine() {
        let alg = MidasAlg::default();
        let fw = Framework::new(&alg, alg.config.cost);
        let report = fw.run(vec![], &KnowledgeBase::new());
        assert!(report.slices.is_empty());
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn duplicate_source_urls_are_merged() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        // Split the atlas page into two SourceFacts with the same URL.
        let mut doubled = Vec::new();
        for p in pages {
            if p.url.as_str().contains("atlas") {
                let half = p.facts.len() / 2;
                doubled.push(SourceFacts::new(p.url.clone(), p.facts[..half].to_vec()));
                doubled.push(SourceFacts::new(p.url.clone(), p.facts[half..].to_vec()));
            } else {
                doubled.push(p);
            }
        }
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost);
        let report = fw.run(doubled, &kb);
        assert_eq!(report.slices.len(), 1);
        assert_eq!(report.slices[0].num_new_facts, 6);
    }

    #[test]
    fn entity_subset_helper() {
        let s = |v: &[u32]| -> Vec<Symbol> {
            v.iter().map(|&i| Symbol::from_index(i as usize)).collect()
        };
        assert!(is_entity_subset(&s(&[1, 3]), &s(&[1, 2, 3])));
        assert!(!is_entity_subset(&s(&[0, 3]), &s(&[1, 2, 3])));
        assert!(is_entity_subset(&s(&[]), &s(&[1])));
    }
}
