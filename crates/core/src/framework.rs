//! The MIDAS multi-source framework (§III-B).
//!
//! The framework walks the URL hierarchy bottom-up in rounds. Each round
//! takes the sources at the current finest depth and the slice candidates
//! discovered so far, and
//!
//! 1. **shards** them by their one-level-coarser parent URL,
//! 2. **detects** slices in each parent source, seeding the slice hierarchy
//!    with the property sets of the children's exported slices, and
//! 3. **consolidates**: for every parent slice, the children slices whose
//!    extents it contains compete with it as a set; the side with the higher
//!    profit survives (Example 16: the sub-domain slice "rocket families
//!    sponsored by NASA" displaces the two page slices it covers).
//!
//! Shards are independent, so each round is processed by a small thread pool
//! (the paper used MapReduce with the same keying).
//!
//! ### Streaming pipeline
//!
//! Each round runs as a **bounded streaming pipeline** over
//! [`crate::parallel::par_map_streamed`]: at most `stream_window` shards are
//! admitted to the pool at once (configurable via
//! [`Framework::with_stream_window`], `--stream-window` on the CLI), and
//! each shard's result is folded into the round state in deterministic input
//! order the moment its turn completes. Completed shards release their fact
//! tables, hierarchy extents, and scratch buffers eagerly (see
//! [`crate::scratch`]), so peak resident memory is proportional to the
//! window, not the corpus. The delivery order — and therefore every report
//! and quarantine entry — is bit-identical at every `(window, threads)`
//! combination.
//!
//! ### Incremental re-runs
//!
//! The augmentation loop re-runs the framework after every accepted slice,
//! but an accept only flips the `new` flags of facts it inserted into the
//! knowledge base. [`Framework::run_incremental`] exploits that: a
//! [`RoundCache`] memoises every task outcome (a leaf detection or a merge
//! shard's consolidation) keyed by task URL, and a [`KbDelta`] — the
//! projection of the KB insertions onto the corpus — names the sources whose
//! outcomes can have changed. A cached outcome is replayed verbatim unless
//! its URL subtree contains a dirty source; dirty leaves additionally keep
//! their cached [`FactTable`] and only refresh the `new` counts of rows the
//! delta's subjects touch. Clean subtrees see bit-identical inputs, so
//! replaying their cached outputs is bit-identical to recomputation — the
//! invariant the `incremental_equivalence` integration suite pins down
//! across the threads × stream-window matrix.
//!
//! ### Approximations relative to the paper
//!
//! * Entities appearing on several sibling pages are counted once per slice
//!   when child slices are combined into a set profit; cross-page entity
//!   overlap (rare in practice) slightly overstates a children set's gain.
//! * A seed slice whose property set is a subset of another seed's is
//!   treated as initial (hence canonical) even if its extent coincides; the
//!   paper does not specify this corner.
//!
//! ### Fault isolation
//!
//! Every detection task runs in the panic-safe pool
//! ([`crate::parallel::par_map_isolated`]) under the configured per-source
//! [`SourceBudget`]. A source whose task panics or breaches its budget is
//! **quarantined**: its partial state is discarded, a [`SourceFault`] is
//! recorded in the report, and — for round-0 leaves — its facts are removed
//! before the merge step, so the run over the surviving sources is
//! bit-identical to a clean run that never saw the faulted sources. When a
//! merge-round (parent) task faults, the children's candidates survive and
//! continue competing at coarser granularities; only the parent's own
//! detection is lost. Fault outcomes are cached and replayed like clean ones
//! (fault-injection plans are deterministic per task coordinate), so
//! incremental runs reproduce the same quarantine.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use midas_kb::{Fact, KnowledgeBase, Symbol};
use midas_weburl::SourceUrl;

use crate::budget::{self, BreachKind, BudgetBreach, BudgetScope, SourceBudget};
use crate::config::CostModel;
use crate::detector::{DetectInput, SliceDetector};
use crate::fact_table::{EntityId, FactTable};
use crate::faultinject;
use crate::hierarchy::SliceHierarchy;
use crate::parallel::par_map_streamed;
use crate::quarantine::{Quarantine, SourceFault, Stage};
use crate::slice::DiscoveredSlice;
use crate::source::SourceFacts;
use crate::telemetry;

/// Round-phase telemetry. The execution counters are **dual-sinked**: the
/// per-run [`FrameworkReport`] fields stay exact per run (they come from
/// locals in `drive`, so concurrent runs in one process — the test suites —
/// never bleed into each other), and every per-round aggregate is forwarded
/// into these registry counters with `add_always`, so a single-run process
/// (the CLI) reports registry totals that reconcile *exactly* with the
/// report fields. The phase histograms time each round's shard, detect, and
/// consolidate stages via RAII spans.
mod metrics {
    crate::counter!(pub DETECT_CALLS, "framework.detect_calls");
    crate::counter!(pub TASKS_REUSED, "framework.tasks_reused");
    crate::counter!(pub HIERARCHIES_WARM_REUSED, "framework.hierarchies_warm_reused");
    crate::counter!(pub ROUNDS, "framework.rounds");
    crate::counter!(pub QUARANTINED, "framework.quarantined");
    crate::histogram!(pub SHARD_NS, "framework.phase.shard_ns");
    crate::histogram!(pub DETECT_NS, "framework.phase.detect_ns");
    crate::histogram!(pub CONSOLIDATE_NS, "framework.phase.consolidate_ns");
}

/// What a round exports to the next round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportPolicy {
    /// Only positive-profit slices propagate upward (the paper's behaviour,
    /// Example 16).
    #[default]
    PositiveOnly,
    /// All detected slices propagate; useful when many small pages only
    /// become profitable once merged at a coarser granularity (ablation).
    ExportAll,
}

/// A slice candidate travelling through the rounds.
#[derive(Debug, Clone)]
struct Candidate {
    slice: DiscoveredSlice,
    /// `|T_W|` of the slice's origin source (for the crawl term of set
    /// profits during consolidation).
    origin_total_facts: usize,
}

/// The projection of a knowledge-base insertion delta onto a corpus: which
/// sources' fact sets intersect the inserted facts (exactly the sources
/// whose `new`-flag profile can have changed), and which subjects the
/// insertions touch (exactly the fact-table rows that can have changed).
/// This is the invalidation key of [`Framework::run_incremental`].
#[derive(Debug, Clone, Default)]
pub struct KbDelta {
    /// URLs of the corpus sources containing at least one inserted fact.
    pub sources: BTreeSet<SourceUrl>,
    /// Subjects of the inserted facts.
    pub subjects: BTreeSet<Symbol>,
}

impl KbDelta {
    /// An empty delta: nothing changed since the previous run.
    pub fn new() -> Self {
        KbDelta::default()
    }

    /// Whether no insertions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty() && self.subjects.is_empty()
    }

    /// Records facts newly inserted into the knowledge base, marking every
    /// corpus source whose fact set contains one of them as dirty.
    /// `inserted` must hold only facts whose `KnowledgeBase::insert`
    /// returned `true`: a fact the KB already knew flips no `new` flag and
    /// must not dirty anything.
    pub fn record(&mut self, corpus: &[SourceFacts], inserted: &[Fact]) {
        if inserted.is_empty() {
            return;
        }
        for f in inserted {
            self.subjects.insert(f.subject);
        }
        for src in corpus {
            if self.sources.contains(&src.url) {
                continue;
            }
            // `SourceFacts` keeps its facts sorted and deduplicated.
            if inserted.iter().any(|f| src.facts.binary_search(f).is_ok()) {
                self.sources.insert(src.url.clone());
            }
        }
    }
}

/// One memoised task outcome: what the task contributed to the round state,
/// replayed verbatim when its subtree is clean.
#[derive(Debug, Clone)]
struct CachedTask {
    /// Candidates the task exported at its URL (for a faulted merge shard:
    /// the recovered children candidates).
    kept: Vec<Candidate>,
    /// The quarantine entry the task produced, if it faulted.
    fault: Option<SourceFault>,
}

/// The result-affecting configuration a [`RoundCache`] was built under.
/// Replaying cached outcomes is only sound against the exact same corpus,
/// detector, cost model, export policy, and deterministic budget caps; any
/// mismatch restarts the cache cold. (The wall-clock `deadline` budget is
/// deliberately excluded — it is non-deterministic to begin with.)
#[derive(Debug, PartialEq)]
struct CacheSig {
    detector: &'static str,
    leaves: Vec<(SourceUrl, usize)>,
    cost_bits: [u64; 4],
    policy: ExportPolicy,
    max_facts: Option<usize>,
    max_nodes: Option<usize>,
}

/// Cross-round memo for [`Framework::run_incremental`]: per-task outcomes
/// keyed by task URL, plus the round-0 leaf fact tables, from the most
/// recent run. Opaque to callers — create one with [`RoundCache::new`] and
/// hand the same instance back on every call of the loop.
#[derive(Debug, Default)]
pub struct RoundCache {
    sig: Option<CacheSig>,
    leaves: BTreeMap<SourceUrl, CachedTask>,
    shards: BTreeMap<SourceUrl, CachedTask>,
    tables: BTreeMap<SourceUrl, FactTable>,
    /// Round-0 leaf hierarchies retained by the warm-hierarchy engine
    /// (DESIGN.md §15): next round, a dirty leaf's hierarchy is patched in
    /// place ([`SliceHierarchy::warm_patch`]) instead of rebuilt.
    hierarchies: BTreeMap<SourceUrl, SliceHierarchy>,
}

impl RoundCache {
    /// Creates an empty (cold) cache.
    pub fn new() -> Self {
        RoundCache::default()
    }

    /// Number of memoised task outcomes (round-0 leaves + merge shards).
    pub fn len(&self) -> usize {
        self.leaves.len() + self.shards.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of leaf hierarchies currently retained for warm patching.
    pub fn warm_hierarchies(&self) -> usize {
        self.hierarchies.len()
    }

    /// Drops all cached state; the next incremental run starts cold. The
    /// retained hierarchies' arenas are recycled into the scratch pools
    /// rather than freed, so a cold restart still reuses their capacity.
    pub fn clear(&mut self) {
        let old = std::mem::take(self);
        for (_, h) in old.hierarchies {
            h.recycle();
        }
        for (_, t) in old.tables {
            t.recycle();
        }
    }

    fn reset(&mut self, sig: CacheSig) {
        self.clear();
        self.sig = Some(sig);
    }
}

/// Result of a framework run.
#[derive(Debug)]
pub struct FrameworkReport {
    /// All surviving slices, sorted by profit, descending.
    pub slices: Vec<DiscoveredSlice>,
    /// Number of depth rounds executed (excluding the initial per-source
    /// detection round).
    pub rounds: usize,
    /// Number of detector invocations actually executed (cache replays are
    /// counted in [`FrameworkReport::reused`], not here).
    pub detect_calls: usize,
    /// Number of task outcomes replayed from the incremental cache (always
    /// zero for [`Framework::run`]).
    pub reused: usize,
    /// Number of round-0 leaves whose slice hierarchy was warm-patched in
    /// place from the previous round instead of rebuilt (always zero for
    /// [`Framework::run`] and when `MIDAS_NO_WARM_HIERARCHY` is set).
    pub hierarchies_reused: usize,
    /// Sources dropped from the run (panics, budget breaches), in
    /// deterministic source order per round.
    pub quarantine: Quarantine,
}

/// Warm-hierarchy state threaded into one round-0 pass: whether dirty
/// leaves may patch last round's hierarchy in place, and — per dirty leaf —
/// the entity ids whose `new`-fact counts moved (the patch's dirtiness
/// bound, see [`SliceHierarchy::warm_patch`]).
#[derive(Default)]
struct WarmRound {
    enabled: bool,
    changed_by_url: BTreeMap<SourceUrl, Vec<EntityId>>,
}

/// A source travelling through the rounds: round-0 leaves of an incremental
/// run borrow the caller's corpus (no deep clone per `suggest()`), while
/// moved-in inputs and merged parents are owned.
enum RoundSource<'a> {
    Leaf(&'a SourceFacts),
    Owned(SourceFacts),
}

impl RoundSource<'_> {
    fn as_facts(&self) -> &SourceFacts {
        match self {
            RoundSource::Leaf(s) => s,
            RoundSource::Owned(s) => s,
        }
    }

    fn into_owned(self) -> SourceFacts {
        match self {
            RoundSource::Leaf(s) => s.clone(),
            RoundSource::Owned(s) => s,
        }
    }
}

/// Inserts a leaf into the normalised URL map, merging on URL collision.
fn insert_leaf<'a>(by_url: &mut BTreeMap<SourceUrl, RoundSource<'a>>, s: RoundSource<'a>) {
    let url = s.as_facts().url.clone();
    match by_url.remove(&url) {
        Some(existing) => {
            let merged = SourceFacts::merge(url.clone(), [existing.into_owned(), s.into_owned()]);
            by_url.insert(url, RoundSource::Owned(merged));
        }
        None => {
            by_url.insert(url, s);
        }
    }
}

/// The shard → detect → consolidate driver.
pub struct Framework<'a, D: SliceDetector> {
    detector: &'a D,
    cost: CostModel,
    policy: ExportPolicy,
    threads: usize,
    budget: SourceBudget,
    stream_window: Option<usize>,
}

impl<'a, D: SliceDetector> Framework<'a, D> {
    /// Creates a sequential framework around `detector`.
    pub fn new(detector: &'a D, cost: CostModel) -> Self {
        Framework {
            detector,
            cost,
            policy: ExportPolicy::PositiveOnly,
            threads: 1,
            budget: SourceBudget::unlimited(),
            stream_window: None,
        }
    }

    /// Sets the export policy.
    pub fn with_policy(mut self, policy: ExportPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the number of worker threads per round (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the per-source execution budget (applies to every detection
    /// unit: each leaf in round 0 and each parent shard in merge rounds).
    pub fn with_budget(mut self, budget: SourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Bounds the number of shards admitted to a round's pool at once
    /// (`None` = unbounded: the whole round in flight, the pre-streaming
    /// behaviour). Smaller windows cap peak resident memory — a completed
    /// shard's fact table, extents, and scratch buffers are released before
    /// later shards are admitted — at the cost of pipeline slack when shard
    /// sizes are very uneven. Reports are bit-identical at every window.
    pub fn with_stream_window(mut self, window: Option<usize>) -> Self {
        self.stream_window = window.map(|w| w.max(1));
        self
    }

    /// Effective admission window for a round of `n` tasks.
    fn window_for(&self, n: usize) -> usize {
        self.stream_window.map_or_else(|| n.max(1), |w| w.max(1))
    }

    /// The per-task guard: fault injection hooks, then the up-front
    /// fact-count cap. Unwinds (into the isolated pool) on breach.
    fn guard_task(&self, url: &str, index: usize, total_facts: usize) {
        faultinject::maybe_panic_worker(url, index);
        faultinject::maybe_exhaust_budget(url, index);
        if let Some(cap) = self.budget.max_facts {
            if total_facts > cap {
                budget::breach(BudgetBreach {
                    kind: BreachKind::Facts,
                    limit: cap as u64,
                    observed: total_facts as u64,
                });
            }
        }
    }

    /// Runs the framework over a corpus of per-source fact sets.
    pub fn run(&self, sources: Vec<SourceFacts>, kb: &KnowledgeBase) -> FrameworkReport {
        // Normalise: merge inputs sharing a URL.
        let mut by_url: BTreeMap<SourceUrl, RoundSource<'_>> = BTreeMap::new();
        for s in sources {
            insert_leaf(&mut by_url, RoundSource::Owned(s));
        }
        self.drive(by_url, kb, None, None, WarmRound::default())
    }

    /// Like [`Framework::run`], but round-0 detection reuses the prebuilt
    /// fact tables in `tables` (keyed by source URL) instead of rebuilding
    /// them from the raw facts — the warm path for corpora loaded from a
    /// snapshot. Sources without an entry build their table as usual. The
    /// report is bit-identical to `run` on the same corpus; only round-0
    /// table construction is skipped.
    pub fn run_with_tables(
        &self,
        sources: Vec<SourceFacts>,
        kb: &KnowledgeBase,
        tables: &BTreeMap<SourceUrl, FactTable>,
    ) -> FrameworkReport {
        let mut by_url: BTreeMap<SourceUrl, RoundSource<'_>> = BTreeMap::new();
        for s in sources {
            insert_leaf(&mut by_url, RoundSource::Owned(s));
        }
        self.drive(by_url, kb, None, Some(tables), WarmRound::default())
    }

    /// Incremental counterpart of [`Framework::run`] for the augmentation
    /// loop: reuses task outcomes memoised in `cache` by a previous run over
    /// the same corpus, re-executing only the subtrees `delta` dirties.
    ///
    /// **Contract.** Between two calls sharing a `cache`, the knowledge base
    /// may change only by insertions, and `delta` must be the
    /// [`KbDelta::record`] projection of exactly those insertions onto
    /// `sources`. The corpus and the result-affecting framework
    /// configuration must be unchanged (detected via an internal signature;
    /// a mismatch silently restarts the cache cold, which is always
    /// correct). Any active fault-injection plan must also stay fixed:
    /// plans are deterministic per task coordinate, so cached fault
    /// outcomes are replayed rather than re-fired.
    ///
    /// Under that contract the report is bit-identical to
    /// `run(sources.to_vec(), kb)` — including slice order, profits, and
    /// quarantine — except for the execution counters: `detect_calls`
    /// counts only tasks actually run and `reused` counts replays.
    pub fn run_incremental(
        &self,
        sources: &[SourceFacts],
        kb: &KnowledgeBase,
        cache: &mut RoundCache,
        delta: &KbDelta,
    ) -> FrameworkReport {
        let mut by_url: BTreeMap<SourceUrl, RoundSource<'_>> = BTreeMap::new();
        for s in sources {
            insert_leaf(&mut by_url, RoundSource::Leaf(s));
        }
        // A cache is only valid for the corpus and configuration it was
        // built under; on any mismatch, start cold.
        let sig = self.cache_sig(&by_url);
        if cache.sig.as_ref() != Some(&sig) {
            cache.reset(sig);
        }
        // Invalidate what the delta touches: the dirty leaves themselves and
        // every merge shard whose subtree contains one. Outcomes that are
        // dropped here re-execute in `drive` and re-memoise; outcomes whose
        // shard does not even re-form (a dirty leaf stopped exporting) must
        // not linger, or a later clean round would replay phantoms.
        let dirty: Vec<&SourceUrl> = delta
            .sources
            .iter()
            .filter(|u| by_url.contains_key(*u))
            .collect();
        for url in &dirty {
            cache.leaves.remove(*url);
        }
        cache
            .shards
            .retain(|parent, _| dirty.iter().all(|leaf| !parent.contains(leaf)));
        // The warm-hierarchy escape hatch: with `MIDAS_NO_WARM_HIERARCHY`
        // set, retained hierarchies are recycled and dirty leaves fall back
        // to the PR 4 rebuild-over-cached-table path. Read per call so a
        // process can toggle it between runs (the bench does).
        let warm_enabled = std::env::var_os("MIDAS_NO_WARM_HIERARCHY").is_none();
        if !warm_enabled && !cache.hierarchies.is_empty() {
            for (_, h) in std::mem::take(&mut cache.hierarchies) {
                h.recycle();
            }
        }
        // Dirty leaves keep their cached fact table: structure is unchanged,
        // only the `new` flags of rows keyed by the delta's subjects are
        // stale — refresh those in place instead of rebuilding. Afterwards
        // the density divisor is re-checked against the table's (possibly
        // grown) universe/length distribution; representation only, so
        // slice output is unchanged whether or not anything re-seals. The
        // refreshed row ids come back per leaf: they bound the warm
        // hierarchy patch to the nodes whose extents the delta touched.
        let mut changed_by_url: BTreeMap<SourceUrl, Vec<EntityId>> = BTreeMap::new();
        for url in &dirty {
            if let Some(table) = cache.tables.get_mut(*url) {
                let changed = table.refresh_new_counts(kb, delta.subjects.iter().copied());
                table.recalibrate_divisor();
                changed_by_url.insert((*url).clone(), changed);
            }
        }
        self.drive(
            by_url,
            kb,
            Some(cache),
            None,
            WarmRound {
                enabled: warm_enabled,
                changed_by_url,
            },
        )
    }

    fn cache_sig(&self, by_url: &BTreeMap<SourceUrl, RoundSource<'_>>) -> CacheSig {
        CacheSig {
            detector: self.detector.name(),
            leaves: by_url
                .values()
                .map(|s| {
                    let s = s.as_facts();
                    (s.url.clone(), s.len())
                })
                .collect(),
            cost_bits: [
                self.cost.fp.to_bits(),
                self.cost.fc.to_bits(),
                self.cost.fd.to_bits(),
                self.cost.fv.to_bits(),
            ],
            policy: self.policy,
            max_facts: self.budget.max_facts,
            max_nodes: self.budget.max_nodes,
        }
    }

    /// The round driver shared by [`Framework::run`] (`incr = None`: every
    /// task executes) and [`Framework::run_incremental`] (`incr = Some`:
    /// tasks with a surviving cache entry are replayed, the rest execute and
    /// re-memoise).
    fn drive(
        &self,
        mut by_url: BTreeMap<SourceUrl, RoundSource<'_>>,
        kb: &KnowledgeBase,
        mut incr: Option<&mut RoundCache>,
        prebuilt: Option<&BTreeMap<SourceUrl, FactTable>>,
        mut warm: WarmRound,
    ) -> FrameworkReport {
        let incremental = incr.is_some();
        let mut detect_calls = 0usize;
        let mut reused_total = 0usize;
        let mut hierarchies_reused = 0usize;
        let mut quarantine = Quarantine::new();

        // Round 0: per-source detection, entity-based initial slices. Each
        // leaf runs isolated under the per-source budget; `index` is the
        // leaf's position in the deterministic sorted source order (the
        // coordinate fault-injection plans target). Leaves stream through a
        // bounded window: each result is folded into the candidate map in
        // source order as soon as its turn completes, so only `window`
        // detections' worth of state is ever in flight. In incremental runs
        // a leaf with a surviving cache entry becomes a no-op task whose
        // outcome the sink replays at the leaf's slot in that same order.
        let leaf_meta: Vec<(SourceUrl, usize)> = by_url
            .values()
            .map(|s| {
                let s = s.as_facts();
                (s.url.clone(), s.len())
            })
            .collect();
        let leaf_sources: Vec<(usize, &SourceFacts)> = by_url
            .values()
            .map(RoundSource::as_facts)
            .enumerate()
            .collect();
        let window = self.window_for(leaf_sources.len());

        let mut plan: Vec<Option<CachedTask>> = match incr.as_deref() {
            Some(cache) => leaf_meta
                .iter()
                .map(|(url, _)| cache.leaves.get(url).cloned())
                .collect(),
            None => leaf_meta.iter().map(|_| None).collect(),
        };
        let reuse_mask: Vec<bool> = plan.iter().map(Option::is_some).collect();
        // Hand the retained hierarchy of every leaf that will actually
        // execute to its worker through a per-leaf slot (workers take
        // ownership; the slot of a leaf that faults before taking it is
        // drained after the round). Clean leaves replay their cached outcome
        // and keep their hierarchy cached untouched.
        type WarmSlot = Mutex<Option<(SliceHierarchy, Vec<EntityId>)>>;
        let mut warm_slots: Vec<WarmSlot> =
            (0..leaf_meta.len()).map(|_| Mutex::new(None)).collect();
        if warm.enabled {
            if let Some(cache) = incr.as_deref_mut() {
                for (index, (url, _)) in leaf_meta.iter().enumerate() {
                    if reuse_mask[index] {
                        continue;
                    }
                    if let Some(h) = cache.hierarchies.remove(url) {
                        let changed = warm.changed_by_url.remove(url).unwrap_or_default();
                        warm_slots[index] = Mutex::new(Some((h, changed)));
                    }
                }
            }
        }
        // Shared ref for the worker tasks; new entries collect into locals
        // and land in the cache after the round (the sink cannot hold the
        // cache mutably while tasks read the tables).
        let tables = incr.as_deref().map(|cache| &cache.tables).or(prebuilt);
        let mut new_leaves: Vec<(SourceUrl, CachedTask)> = Vec::new();
        let mut new_tables: Vec<(SourceUrl, FactTable)> = Vec::new();
        let mut new_hierarchies: Vec<(SourceUrl, SliceHierarchy)> = Vec::new();

        let mut candidates: BTreeMap<SourceUrl, Vec<Candidate>> = BTreeMap::new();
        let mut faulted: Vec<SourceUrl> = Vec::new();
        let mut executed = 0usize;
        let mut reused = 0usize;
        type LeafOutcome = (
            Vec<DiscoveredSlice>,
            Option<FactTable>,
            Option<SliceHierarchy>,
            bool,
        );
        let detect_span = telemetry::span("framework.detect", &metrics::DETECT_NS);
        par_map_streamed(
            self.threads,
            window,
            leaf_sources,
            |(index, src)| -> Option<LeafOutcome> {
                if reuse_mask[index] {
                    return None;
                }
                self.guard_task(src.url.as_str(), index, src.len());
                let _scope = BudgetScope::enter(&self.budget);
                let input = DetectInput {
                    source: src,
                    kb,
                    seeds: &[],
                };
                Some(match tables.and_then(|t| t.get(&src.url)) {
                    // Incremental fast path: the cached (possibly refreshed)
                    // table replaces the per-round rebuild, and — when the
                    // warm-hierarchy engine is on — last round's hierarchy is
                    // patched in place instead of rebuilt.
                    Some(table) if warm.enabled => {
                        let slot = warm_slots[index].lock().ok().and_then(|mut s| s.take());
                        let (hier, changed) = match slot {
                            Some((h, changed)) => (Some(h), changed),
                            None => (None, Vec::new()),
                        };
                        let (slices, hierarchy, warmed) =
                            self.detector.detect_warm(table, input, hier, &changed);
                        (slices, None, hierarchy, warmed)
                    }
                    Some(table) => (
                        self.detector.detect_on_table(table, input),
                        None,
                        None,
                        false,
                    ),
                    None if incremental && warm.enabled => {
                        let (slices, table, hierarchy) =
                            self.detector.detect_retaining_state(input);
                        (slices, table, hierarchy, false)
                    }
                    None if incremental => {
                        let (slices, table) = self.detector.detect_retaining_table(input);
                        (slices, table, None, false)
                    }
                    None => (self.detector.detect(input), None, None, false),
                })
            },
            |index, result| {
                let (url, facts_seen) = &leaf_meta[index];
                match result {
                    Ok(None) => {
                        let cached = plan[index].take().expect("reuse-marked leaf has an entry");
                        reused += 1;
                        if let Some(fault) = &cached.fault {
                            quarantine.push(fault.clone());
                            faulted.push(url.clone());
                        }
                        if !cached.kept.is_empty() {
                            candidates
                                .entry(url.clone())
                                .or_default()
                                .extend(cached.kept);
                        }
                    }
                    Ok(Some((mut slices, table, hierarchy, warmed))) => {
                        executed += 1;
                        if warmed {
                            hierarchies_reused += 1;
                            metrics::HIERARCHIES_WARM_REUSED.add_always(1);
                        }
                        if let Some(h) = hierarchy {
                            if incremental && warm.enabled {
                                new_hierarchies.push((url.clone(), h));
                            } else {
                                h.recycle();
                            }
                        }
                        enforce_sorted_entities(&mut slices);
                        let kept: Vec<Candidate> = slices
                            .into_iter()
                            .filter(|s| self.exportable(s))
                            .map(|slice| Candidate {
                                slice,
                                origin_total_facts: *facts_seen,
                            })
                            .collect();
                        if incremental {
                            new_leaves.push((
                                url.clone(),
                                CachedTask {
                                    kept: kept.clone(),
                                    fault: None,
                                },
                            ));
                            if let Some(t) = table {
                                new_tables.push((url.clone(), t));
                            }
                        }
                        if !kept.is_empty() {
                            candidates.entry(url.clone()).or_default().extend(kept);
                        }
                    }
                    Err(fault) => {
                        executed += 1;
                        let sf = SourceFault {
                            source: url.as_str().to_string(),
                            stage: Stage::Detect,
                            cause: fault.cause,
                            facts_seen: *facts_seen,
                        };
                        if incremental {
                            new_leaves.push((
                                url.clone(),
                                CachedTask {
                                    kept: Vec::new(),
                                    fault: Some(sf.clone()),
                                },
                            ));
                        }
                        quarantine.push(sf);
                        faulted.push(url.clone());
                    }
                }
            },
        );
        drop(detect_span);
        detect_calls += executed;
        reused_total += reused;
        metrics::DETECT_CALLS.add_always(executed as u64);
        metrics::TASKS_REUSED.add_always(reused as u64);
        // A leaf that faulted before its worker took the warm slot leaves
        // the hierarchy behind — recycle it here, so a quarantined source
        // always restarts cold if it ever recovers.
        for slot in warm_slots {
            if let Ok(Some((h, _))) = slot.into_inner() {
                h.recycle();
            }
        }
        if let Some(cache) = incr.as_deref_mut() {
            for (url, entry) in new_leaves {
                cache.leaves.insert(url, entry);
            }
            for (url, table) in new_tables {
                if let Some(old) = cache.tables.insert(url, table) {
                    old.recycle();
                }
            }
            for (url, h) in new_hierarchies {
                if let Some(old) = cache.hierarchies.insert(url, h) {
                    old.recycle();
                }
            }
        }
        // Discard quarantined leaves *before* the merge loop: their facts
        // never reach a parent, so the run over the surviving N−k sources is
        // identical to a clean run that was never given the faulted k.
        for url in &faulted {
            by_url.remove(url);
        }

        // Depth rounds, finest to coarsest.
        let max_depth = by_url.keys().map(SourceUrl::depth).max().unwrap_or(0);
        let mut rounds = 0usize;
        for d in (1..=max_depth).rev() {
            rounds += 1;
            let shard_span = telemetry::span("framework.shard", &metrics::SHARD_NS);
            // Merge sources at depth d into their parents: group each
            // parent's children first, then merge every group in one pass
            // (one sort + dedup per parent instead of one per child).
            let deep_urls: Vec<SourceUrl> =
                by_url.keys().filter(|u| u.depth() == d).cloned().collect();
            let mut regrouped: BTreeMap<SourceUrl, Vec<SourceFacts>> = BTreeMap::new();
            for url in deep_urls {
                let child = by_url.remove(&url).expect("url present");
                let parent = url.parent().expect("depth ≥ 1 has a parent");
                regrouped
                    .entry(parent)
                    .or_default()
                    .push(child.into_owned());
            }
            for (parent, mut children) in regrouped {
                if let Some(own) = by_url.remove(&parent) {
                    children.push(own.into_owned());
                }
                let merged = SourceFacts::merge(parent.clone(), children);
                by_url.insert(parent, RoundSource::Owned(merged));
            }

            // Shard candidates at depth d by parent.
            let deep_positions: Vec<SourceUrl> = candidates
                .keys()
                .filter(|u| u.depth() == d)
                .cloned()
                .collect();
            let mut shards: BTreeMap<SourceUrl, Vec<Candidate>> = BTreeMap::new();
            for pos in deep_positions {
                let cands = candidates.remove(&pos).expect("position present");
                let parent = pos.parent().expect("depth ≥ 1 has a parent");
                shards.entry(parent).or_default().extend(cands);
            }

            // Fold the parents' own pre-existing candidates into their shard
            // so they compete during consolidation.
            for (parent, shard) in &mut shards {
                if let Some(own) = candidates.remove(parent) {
                    shard.extend(own);
                }
            }
            drop(shard_span);

            // Detect + consolidate per parent shard, streamed through the
            // bounded window. Tasks borrow the work list so that a faulting
            // parent's child candidates can be recovered in the sink (the
            // clone happens only on that rare fault path).
            let work: Vec<(SourceUrl, Vec<Candidate>)> = shards.into_iter().collect();
            let mut shard_plan: Vec<Option<CachedTask>> = match incr.as_deref() {
                Some(cache) => work
                    .iter()
                    .map(|(parent, _)| cache.shards.get(parent).cloned())
                    .collect(),
                None => work.iter().map(|_| None).collect(),
            };
            let shard_reuse: Vec<bool> = shard_plan.iter().map(Option::is_some).collect();
            let indices: Vec<usize> = (0..work.len()).collect();
            let window = self.window_for(work.len());
            let mut executed = 0usize;
            let mut reused = 0usize;
            let consolidate_span =
                telemetry::span("framework.consolidate", &metrics::CONSOLIDATE_NS);
            par_map_streamed(
                self.threads,
                window,
                indices,
                |wi| -> Option<Vec<Candidate>> {
                    if shard_reuse[wi] {
                        return None;
                    }
                    let (parent, inputs) = &work[wi];
                    // Merge-round tasks are only addressable by URL substring
                    // (index coordinates name round-0 leaves).
                    self.guard_task(parent.as_str(), usize::MAX, by_url[parent].as_facts().len());
                    let _scope = BudgetScope::enter(&self.budget);
                    let parent_src = by_url[parent].as_facts();
                    let seeds = seed_sets(inputs);
                    let detected = self.detector.detect(DetectInput {
                        source: parent_src,
                        kb,
                        seeds: &seeds,
                    });
                    Some(self.consolidate(detected, inputs.clone(), parent_src.len()))
                },
                |wi, result| {
                    let (parent, inputs) = &work[wi];
                    match result {
                        Ok(None) => {
                            let cached = shard_plan[wi]
                                .take()
                                .expect("reuse-marked shard has an entry");
                            reused += 1;
                            if let Some(fault) = &cached.fault {
                                quarantine.push(fault.clone());
                            }
                            if !cached.kept.is_empty() {
                                candidates
                                    .entry(parent.clone())
                                    .or_default()
                                    .extend(cached.kept);
                            }
                        }
                        Ok(Some(survivors)) => {
                            executed += 1;
                            let kept: Vec<Candidate> = survivors
                                .into_iter()
                                .filter(|c| self.exportable(&c.slice))
                                .collect();
                            if let Some(cache) = incr.as_deref_mut() {
                                cache.shards.insert(
                                    parent.clone(),
                                    CachedTask {
                                        kept: kept.clone(),
                                        fault: None,
                                    },
                                );
                            }
                            if !kept.is_empty() {
                                candidates.entry(parent.clone()).or_default().extend(kept);
                            }
                        }
                        Err(fault) => {
                            executed += 1;
                            let sf = SourceFault {
                                source: parent.as_str().to_string(),
                                stage: Stage::Consolidate,
                                cause: fault.cause,
                                facts_seen: by_url.get(parent).map_or(0, |s| s.as_facts().len()),
                            };
                            // The parent's own detection is lost, but the
                            // children's candidates keep competing upward.
                            if let Some(cache) = incr.as_deref_mut() {
                                cache.shards.insert(
                                    parent.clone(),
                                    CachedTask {
                                        kept: inputs.clone(),
                                        fault: Some(sf.clone()),
                                    },
                                );
                            }
                            quarantine.push(sf);
                            if !inputs.is_empty() {
                                candidates
                                    .entry(parent.clone())
                                    .or_default()
                                    .extend(inputs.iter().cloned());
                            }
                        }
                    }
                },
            );
            drop(consolidate_span);
            detect_calls += executed;
            reused_total += reused;
            metrics::DETECT_CALLS.add_always(executed as u64);
            metrics::TASKS_REUSED.add_always(reused as u64);
        }

        let mut slices: Vec<DiscoveredSlice> = candidates
            .into_values()
            .flatten()
            .map(|c| c.slice)
            .collect();
        slices.sort_by(|a, b| b.profit.partial_cmp(&a.profit).expect("finite profits"));
        metrics::ROUNDS.add_always(rounds as u64);
        metrics::QUARANTINED.add_always(quarantine.len() as u64);
        FrameworkReport {
            slices,
            rounds,
            detect_calls,
            reused: reused_total,
            hierarchies_reused,
            quarantine,
        }
    }

    fn exportable(&self, s: &DiscoveredSlice) -> bool {
        match self.policy {
            ExportPolicy::PositiveOnly => s.profit > 0.0,
            ExportPolicy::ExportAll => true,
        }
    }

    /// The consolidation phase: parent slices vs the children slices whose
    /// extents they contain.
    fn consolidate(
        &self,
        mut detected: Vec<DiscoveredSlice>,
        inputs: Vec<Candidate>,
        parent_total_facts: usize,
    ) -> Vec<Candidate> {
        // The subset tests below (and every downstream consumer, e.g.
        // `Augmenter::accept`) rely on sorted extents; detector output is
        // the trust boundary where the invariant is enforced.
        enforce_sorted_entities(&mut detected);
        debug_assert!(
            inputs.iter().all(|c| c.slice.entities_sorted()),
            "candidate entities must stay sorted between rounds"
        );
        detected.sort_by(|a, b| b.profit.partial_cmp(&a.profit).expect("finite profits"));
        let mut assigned = vec![false; inputs.len()];
        let mut kept: Vec<Candidate> = Vec::new();
        for parent_slice in detected {
            let contained: Vec<usize> = (0..inputs.len())
                .filter(|&i| {
                    !assigned[i]
                        && is_entity_subset(&inputs[i].slice.entities, &parent_slice.entities)
                })
                .collect();
            if contained.is_empty() {
                kept.push(Candidate {
                    slice: parent_slice,
                    origin_total_facts: parent_total_facts,
                });
                continue;
            }
            let f_children = self.children_set_profit(&inputs, &contained);
            // Ties go to the children: at equal profit the finer-grained
            // sources are the more precise extraction target.
            if f_children >= parent_slice.profit {
                for &i in &contained {
                    assigned[i] = true;
                    kept.push(inputs[i].clone());
                }
            } else {
                for &i in &contained {
                    assigned[i] = true;
                }
                kept.push(Candidate {
                    slice: parent_slice,
                    origin_total_facts: parent_total_facts,
                });
            }
        }
        for (i, c) in inputs.into_iter().enumerate() {
            if !assigned[i] {
                kept.push(c);
            }
        }
        kept
    }

    /// Profit of a set of child candidates (Definition 9 with the crawl term
    /// charged once per distinct origin source).
    fn children_set_profit(&self, inputs: &[Candidate], idxs: &[usize]) -> f64 {
        let mut gain_terms = 0.0;
        let mut crawl_sources: Vec<(&SourceUrl, usize)> = Vec::new();
        for &i in idxs {
            let c = &inputs[i];
            gain_terms += (1.0 - self.cost.fv) * c.slice.num_new_facts as f64
                - self.cost.fd * c.slice.num_facts as f64;
            if !crawl_sources.iter().any(|(u, _)| *u == &c.slice.source) {
                crawl_sources.push((&c.slice.source, c.origin_total_facts));
            }
        }
        let crawl: f64 = crawl_sources
            .iter()
            .map(|&(_, tw)| self.cost.fc * tw as f64)
            .sum();
        gain_terms - self.cost.fp * idxs.len() as f64 - crawl
    }
}

/// Restores the sorted-entities invariant on detector output. Well-behaved
/// detectors already emit sorted extents, so the common case is a linear
/// scan; enforcement still lives here because subset/membership tests
/// silently miss entities on unsorted input.
fn enforce_sorted_entities(slices: &mut [DiscoveredSlice]) {
    for s in slices {
        if !s.entities_sorted() {
            s.entities.sort_unstable();
        }
    }
}

/// Deduplicated property sets of the input candidates, used to seed the
/// parent's slice hierarchy.
fn seed_sets(inputs: &[Candidate]) -> Vec<Vec<(Symbol, Symbol)>> {
    let mut seeds: Vec<Vec<(Symbol, Symbol)>> = Vec::new();
    for c in inputs {
        if c.slice.properties.is_empty() {
            continue;
        }
        if !seeds.contains(&c.slice.properties) {
            seeds.push(c.slice.properties.clone());
        }
    }
    seeds
}

/// Whether sorted symbol list `sub` is a subset of sorted list `sup`.
fn is_entity_subset(sub: &[Symbol], sup: &[Symbol]) -> bool {
    let mut j = 0;
    for &x in sub {
        while j < sup.len() && sup[j] < x {
            j += 1;
        }
        if j >= sup.len() || sup[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::fixtures::skyrocket_pages;
    use crate::single_source::MidasAlg;
    use midas_kb::Interner;

    fn run_running_example(threads: usize) -> (Interner, FrameworkReport) {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost).with_threads(threads);
        let report = fw.run(pages, &kb);
        (t, report)
    }

    /// Example 16 end to end: the framework reports exactly the sub-domain
    /// slice S5 ("rocket families sponsored by NASA" at /doc_lau_fam).
    #[test]
    fn example_16_end_to_end() {
        let (t, report) = run_running_example(1);
        assert_eq!(report.slices.len(), 1, "only S5 survives");
        let s5 = &report.slices[0];
        assert_eq!(
            s5.source.as_str(),
            "http://space.skyrocket.de/doc_lau_fam",
            "S5 is reported at the sub-domain granularity"
        );
        assert_eq!(s5.entities.len(), 2);
        assert_eq!(s5.num_new_facts, 6);
        let desc = s5.describe(&t);
        assert!(desc.contains("rocket_family"));
        assert!(report.rounds >= 2, "pages → sub-domain → domain");
        assert!(
            report.quarantine.is_empty(),
            "clean run quarantines nothing"
        );
        assert_eq!(report.reused, 0, "full runs never replay");
    }

    #[test]
    fn fact_cap_quarantines_every_leaf() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let n = pages.len();
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost)
            .with_budget(SourceBudget::unlimited().with_max_facts(0));
        let report = fw.run(pages, &kb);
        assert!(report.slices.is_empty());
        assert_eq!(report.rounds, 0, "no surviving leaves, no merge rounds");
        assert_eq!(report.quarantine.len(), n);
        assert!(report.quarantine.iter().all(|f| matches!(
            f.cause,
            crate::quarantine::FaultCause::Budget(BudgetBreach {
                kind: BreachKind::Facts,
                ..
            })
        )));
    }

    #[test]
    fn budget_quarantined_leaf_matches_clean_run_without_it() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let largest = pages.iter().map(SourceFacts::len).max().unwrap();
        let survivors: Vec<SourceFacts> = pages
            .iter()
            .filter(|p| p.len() < largest)
            .cloned()
            .collect();
        let dropped = pages.len() - survivors.len();
        assert!(dropped > 0 && !survivors.is_empty());

        let alg = MidasAlg::new(MidasConfig::running_example());
        for threads in [1, 4] {
            let budgeted = Framework::new(&alg, alg.config.cost)
                .with_threads(threads)
                .with_budget(SourceBudget::unlimited().with_max_facts(largest - 1))
                .run(pages.clone(), &kb);
            let clean = Framework::new(&alg, alg.config.cost)
                .with_threads(threads)
                .run(survivors.clone(), &kb);
            assert_eq!(budgeted.quarantine.len(), dropped);
            assert!(clean.quarantine.is_empty());
            assert_eq!(budgeted.slices.len(), clean.slices.len());
            for (a, b) in budgeted.slices.iter().zip(&clean.slices) {
                assert_eq!(a.source, b.source);
                assert_eq!(a.entities, b.entities);
                assert_eq!(a.profit.to_bits(), b.profit.to_bits());
            }
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let (_, seq) = run_running_example(1);
        let (_, par) = run_running_example(4);
        assert_eq!(seq.slices.len(), par.slices.len());
        for (a, b) in seq.slices.iter().zip(&par.slices) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.entities, b.entities);
            assert!((a.profit - b.profit).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_window_never_changes_the_report() {
        let (_, unbounded) = run_running_example(4);
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        for window in [1usize, 2, 3] {
            for threads in [1usize, 4] {
                let fw = Framework::new(&alg, alg.config.cost)
                    .with_threads(threads)
                    .with_stream_window(Some(window));
                let report = fw.run(pages.clone(), &kb);
                assert_eq!(report.slices.len(), unbounded.slices.len());
                for (a, b) in report.slices.iter().zip(&unbounded.slices) {
                    assert_eq!(a.source, b.source);
                    assert_eq!(a.entities, b.entities);
                    assert_eq!(a.profit.to_bits(), b.profit.to_bits());
                }
                assert_eq!(report.detect_calls, unbounded.detect_calls);
            }
        }
    }

    #[test]
    fn export_all_keeps_negative_candidates() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost).with_policy(ExportPolicy::ExportAll);
        let report = fw.run(pages, &kb);
        // With export-all, at least the S5 consolidation result must still
        // be present and profitable.
        assert!(report.slices.iter().any(|s| s.profit > 4.0));
    }

    #[test]
    fn empty_corpus_is_fine() {
        let alg = MidasAlg::default();
        let fw = Framework::new(&alg, alg.config.cost);
        let report = fw.run(vec![], &KnowledgeBase::new());
        assert!(report.slices.is_empty());
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn duplicate_source_urls_are_merged() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        // Split the atlas page into two SourceFacts with the same URL.
        let mut doubled = Vec::new();
        for p in pages {
            if p.url.as_str().contains("atlas") {
                let half = p.facts.len() / 2;
                doubled.push(SourceFacts::new(p.url.clone(), p.facts[..half].to_vec()));
                doubled.push(SourceFacts::new(p.url.clone(), p.facts[half..].to_vec()));
            } else {
                doubled.push(p);
            }
        }
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost);
        let report = fw.run(doubled, &kb);
        assert_eq!(report.slices.len(), 1);
        assert_eq!(report.slices[0].num_new_facts, 6);
    }

    #[test]
    fn entity_subset_helper() {
        let s = |v: &[u32]| -> Vec<Symbol> {
            v.iter().map(|&i| Symbol::from_index(i as usize)).collect()
        };
        assert!(is_entity_subset(&s(&[1, 3]), &s(&[1, 2, 3])));
        assert!(!is_entity_subset(&s(&[0, 3]), &s(&[1, 2, 3])));
        assert!(is_entity_subset(&s(&[]), &s(&[1])));
    }

    #[test]
    fn incremental_cold_cache_matches_full_run() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let fw = Framework::new(&alg, alg.config.cost);
        let full = fw.run(pages.clone(), &kb);
        let mut cache = RoundCache::new();
        let cold = fw.run_incremental(&pages, &kb, &mut cache, &KbDelta::new());
        assert_eq!(cold.reused, 0, "cold cache executes everything");
        assert_eq!(cold.detect_calls, full.detect_calls);
        assert_eq!(cold.slices.len(), full.slices.len());
        for (a, b) in cold.slices.iter().zip(&full.slices) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.entities, b.entities);
            assert_eq!(a.profit.to_bits(), b.profit.to_bits());
        }
        assert!(!cache.is_empty());
        // Re-run with an empty delta: everything replays, nothing executes.
        let warm = fw.run_incremental(&pages, &kb, &mut cache, &KbDelta::new());
        assert_eq!(warm.detect_calls, 0, "clean re-run replays every task");
        assert!(warm.reused > 0);
        for (a, b) in warm.slices.iter().zip(&full.slices) {
            assert_eq!(a.profit.to_bits(), b.profit.to_bits());
        }
    }

    #[test]
    fn cache_restarts_cold_when_configuration_changes() {
        let mut t = Interner::new();
        let (pages, kb) = skyrocket_pages(&mut t);
        let alg = MidasAlg::new(MidasConfig::running_example());
        let mut cache = RoundCache::new();
        let fw = Framework::new(&alg, alg.config.cost);
        let _ = fw.run_incremental(&pages, &kb, &mut cache, &KbDelta::new());
        assert!(!cache.is_empty());
        // Same cache, different export policy: the signature mismatch must
        // force a cold start instead of replaying stale outcomes.
        let fw2 = Framework::new(&alg, alg.config.cost).with_policy(ExportPolicy::ExportAll);
        let report = fw2.run_incremental(&pages, &kb, &mut cache, &KbDelta::new());
        assert_eq!(report.reused, 0);
        assert!(report.detect_calls > 0);
    }
}
