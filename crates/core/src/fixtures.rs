//! The paper's running example as a reusable fixture.
//!
//! Figure 2 of the paper lists 13 facts (t1–t13) correctly extracted from
//! five pages under `http://space.skyrocket.de`; facts t6–t8 and t11–t13
//! (the "Atlas" and "Castor-4" rocket families) are absent from Freebase.
//! This module rebuilds that corpus exactly, so that unit tests, examples,
//! and documentation can all assert the paper's published numbers.

use crate::source::SourceFacts;
use midas_kb::{Fact, Interner, KnowledgeBase};
use midas_weburl::SourceUrl;

/// One row of Figure 2.
struct Row {
    subject: &'static str,
    predicate: &'static str,
    object: &'static str,
    /// The "new?" column: `true` when the fact is absent from Freebase.
    is_new: bool,
    page: &'static str,
}

const ROWS: &[Row] = &[
    Row {
        subject: "Project Mercury",
        predicate: "category",
        object: "space_program",
        is_new: false,
        page: "http://space.skyrocket.de/doc_sat/mercury-history.htm",
    },
    Row {
        subject: "Project Mercury",
        predicate: "started",
        object: "1959",
        is_new: false,
        page: "http://space.skyrocket.de/doc_sat/mercury-history.htm",
    },
    Row {
        subject: "Project Mercury",
        predicate: "sponsor",
        object: "NASA",
        is_new: false,
        page: "http://space.skyrocket.de/doc_sat/mercury-history.htm",
    },
    Row {
        subject: "Project Gemini",
        predicate: "category",
        object: "space_program",
        is_new: false,
        page: "http://space.skyrocket.de/doc_sat/gemini-history.htm",
    },
    Row {
        subject: "Project Gemini",
        predicate: "sponsor",
        object: "NASA",
        is_new: false,
        page: "http://space.skyrocket.de/doc_sat/gemini-history.htm",
    },
    Row {
        subject: "Atlas",
        predicate: "category",
        object: "rocket_family",
        is_new: true,
        page: "http://space.skyrocket.de/doc_lau_fam/atlas.htm",
    },
    Row {
        subject: "Atlas",
        predicate: "sponsor",
        object: "NASA",
        is_new: true,
        page: "http://space.skyrocket.de/doc_lau_fam/atlas.htm",
    },
    Row {
        subject: "Atlas",
        predicate: "started",
        object: "1957",
        is_new: true,
        page: "http://space.skyrocket.de/doc_lau_fam/atlas.htm",
    },
    Row {
        subject: "Apollo program",
        predicate: "category",
        object: "space_program",
        is_new: false,
        page: "http://space.skyrocket.de/doc_sat/apollo-history.htm",
    },
    Row {
        subject: "Apollo program",
        predicate: "sponsor",
        object: "NASA",
        is_new: false,
        page: "http://space.skyrocket.de/doc_sat/apollo-history.htm",
    },
    Row {
        subject: "Castor-4",
        predicate: "category",
        object: "rocket_family",
        is_new: true,
        page: "http://space.skyrocket.de/doc_lau_fam/castor-4.htm",
    },
    Row {
        subject: "Castor-4",
        predicate: "started",
        object: "1971",
        is_new: true,
        page: "http://space.skyrocket.de/doc_lau_fam/castor-4.htm",
    },
    Row {
        subject: "Castor-4",
        predicate: "sponsor",
        object: "NASA",
        is_new: true,
        page: "http://space.skyrocket.de/doc_lau_fam/castor-4.htm",
    },
];

/// The whole running example collapsed into one source
/// (`http://space.skyrocket.de`), plus the Freebase-like knowledge base
/// containing the seven not-new facts.
pub fn skyrocket(terms: &mut Interner) -> (SourceFacts, KnowledgeBase) {
    let mut facts = Vec::with_capacity(ROWS.len());
    let mut kb = KnowledgeBase::new();
    for row in ROWS {
        let f = Fact::intern(terms, row.subject, row.predicate, row.object);
        facts.push(f);
        if !row.is_new {
            kb.insert(f);
        }
    }
    let url = SourceUrl::parse("http://space.skyrocket.de").expect("static URL parses");
    (SourceFacts::new(url, facts), kb)
}

/// The running example split by page, as the §III-B framework consumes it:
/// one [`SourceFacts`] per web page of Figure 2.
pub fn skyrocket_pages(terms: &mut Interner) -> (Vec<SourceFacts>, KnowledgeBase) {
    let mut kb = KnowledgeBase::new();
    let mut by_page: Vec<(&str, Vec<Fact>)> = Vec::new();
    for row in ROWS {
        let f = Fact::intern(terms, row.subject, row.predicate, row.object);
        if !row.is_new {
            kb.insert(f);
        }
        match by_page.iter_mut().find(|(p, _)| *p == row.page) {
            Some((_, v)) => v.push(f),
            None => by_page.push((row.page, vec![f])),
        }
    }
    let sources = by_page
        .into_iter()
        .map(|(page, facts)| {
            SourceFacts::new(SourceUrl::parse(page).expect("static URL parses"), facts)
        })
        .collect();
    (sources, kb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapsed_fixture_has_13_facts_6_new() {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        assert_eq!(src.len(), 13);
        assert_eq!(kb.len(), 7);
        assert_eq!(kb.count_new(src.facts.iter()), 6);
    }

    #[test]
    fn paged_fixture_matches_figure_2_layout() {
        let mut t = Interner::new();
        let (pages, _) = skyrocket_pages(&mut t);
        assert_eq!(pages.len(), 5);
        let total: usize = pages.iter().map(SourceFacts::len).sum();
        assert_eq!(total, 13);
        let fam_pages = pages
            .iter()
            .filter(|p| p.url.as_str().contains("doc_lau_fam"))
            .count();
        assert_eq!(fam_pages, 2);
    }
}
