//! Generalised properties — the extension the paper sketches in §II-A.
//!
//! *"Our method can be easily extended to more general properties, e.g.,
//! `year > 2000`; however, we decided against this generalization, as it
//! increases the complexity of the algorithms significantly."* This module
//! implements the extension as an opt-in preprocessing pass: numeric object
//! values are bucketed into ranges and emitted as *derived facts* under a
//! derived predicate (`started` → `started:range`, value `1950..1960`). The
//! unmodified MIDASalg then discovers range slices like *"rocket families
//! started in the 1950s"* for free — at the cost the paper predicted: a
//! larger fact table (the derived facts also inflate `|T_W|`, i.e. the
//! crawl term), which the `ablations` bench quantifies.

use crate::source::SourceFacts;
use midas_kb::{Fact, Interner};

/// Suffix appended to predicates of derived range facts.
pub const RANGE_SUFFIX: &str = ":range";

/// Configuration of the numeric-bucketing pass.
#[derive(Debug, Clone, Copy)]
pub struct RangeEnrichment {
    /// Bucket width (e.g. 10 turns years into decades).
    pub bucket_size: i64,
    /// Only bucket values in this range (guards against ids / timestamps).
    pub min_value: i64,
    /// See [`min_value`](Self::min_value).
    pub max_value: i64,
}

impl Default for RangeEnrichment {
    /// Decade buckets over plausible year values.
    fn default() -> Self {
        RangeEnrichment {
            bucket_size: 10,
            min_value: 1000,
            max_value: 2100,
        }
    }
}

impl RangeEnrichment {
    /// The bucket label for a numeric value, e.g. `1950..1960`.
    pub fn bucket_label(&self, value: i64) -> String {
        let lo = value.div_euclid(self.bucket_size) * self.bucket_size;
        format!("{}..{}", lo, lo + self.bucket_size)
    }

    /// Returns a new source with derived range facts appended.
    ///
    /// For every fact `(s, p, v)` whose object parses as an integer within
    /// `[min_value, max_value]`, a derived fact
    /// `(s, p:range, bucket_label(v))` is added. Original facts are kept
    /// unchanged.
    pub fn enrich(&self, source: &SourceFacts, terms: &mut Interner) -> SourceFacts {
        let mut facts = source.facts.to_vec();
        let mut derived = Vec::new();
        for f in &source.facts {
            let raw = terms.resolve(f.object).to_owned();
            let Ok(v) = raw.trim().parse::<i64>() else {
                continue;
            };
            if v < self.min_value || v > self.max_value {
                continue;
            }
            let pred_name = format!("{}{}", terms.resolve(f.predicate), RANGE_SUFFIX);
            let pred = terms.intern(&pred_name);
            let label = terms.intern(&self.bucket_label(v));
            derived.push(Fact::new(f.subject, pred, label));
        }
        facts.extend(derived);
        SourceFacts::new(source.url.clone(), facts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::single_source::MidasAlg;
    use midas_kb::KnowledgeBase;
    use midas_weburl::SourceUrl;

    fn rockets(terms: &mut Interner) -> SourceFacts {
        let mut facts = Vec::new();
        // Five 1950s rockets and five 1970s rockets — no exact year shared,
        // so plain MIDAS finds no "started" slice, but the decades align.
        for i in 0..5 {
            let name = format!("fifties_{i}");
            facts.push(Fact::intern(terms, &name, "kind", "rocket"));
            facts.push(Fact::intern(terms, &name, "started", &format!("195{i}")));
        }
        for i in 0..5 {
            let name = format!("seventies_{i}");
            facts.push(Fact::intern(terms, &name, "kind", "rocket"));
            facts.push(Fact::intern(terms, &name, "started", &format!("197{i}")));
        }
        SourceFacts::new(SourceUrl::parse("http://r.example/list").unwrap(), facts)
    }

    #[test]
    fn enrich_adds_decade_facts() {
        let mut terms = Interner::new();
        let src = rockets(&mut terms);
        let enriched = RangeEnrichment::default().enrich(&src, &mut terms);
        assert_eq!(
            enriched.len(),
            src.len() + 10,
            "one derived fact per year fact"
        );
        let pred = terms.get("started:range").expect("derived predicate");
        let decades: Vec<&str> = enriched
            .facts
            .iter()
            .filter(|f| f.predicate == pred)
            .map(|f| terms.resolve(f.object))
            .collect();
        assert!(decades.contains(&"1950..1960"));
        assert!(decades.contains(&"1970..1980"));
    }

    #[test]
    fn range_slices_become_discoverable() {
        let mut terms = Interner::new();
        let src = rockets(&mut terms);
        let enriched_src = RangeEnrichment::default().enrich(&src, &mut terms);
        // Half the corpus (the 1950s rockets) is already known — including
        // their derived range facts, as a KB built with enrichment would be.
        let mut kb = KnowledgeBase::new();
        for f in &enriched_src.facts {
            if terms.resolve(f.subject).starts_with("fifties") {
                kb.insert(*f);
            }
        }
        let alg = MidasAlg::new(MidasConfig::running_example());

        // Plain run: the best it can do is the generic "kind = rocket".
        let plain = alg.run(&src, &kb);
        assert!(plain
            .iter()
            .all(|s| !s.describe(&terms).contains("started")));

        // Enriched run: the 1970s decade slice is discoverable and beats
        // the generic slice (it excludes the known fifties entities).
        let enriched = alg.run(&enriched_src, &kb);
        assert!(
            enriched
                .iter()
                .any(|s| s.describe(&terms).contains("started:range = 1970..1980")),
            "range slice found: {:?}",
            enriched
                .iter()
                .map(|s| s.describe(&terms))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn non_numeric_and_out_of_range_values_are_ignored() {
        let mut terms = Interner::new();
        let facts = vec![
            Fact::intern(&mut terms, "e", "name", "Atlas"),
            Fact::intern(&mut terms, "e", "mass", "999999"),
            Fact::intern(&mut terms, "e", "year", "1957"),
        ];
        let src = SourceFacts::new(SourceUrl::parse("http://x.example/p").unwrap(), facts);
        let enriched = RangeEnrichment::default().enrich(&src, &mut terms);
        assert_eq!(enriched.len(), 4, "only the year gets a bucket");
        assert!(terms.get("name:range").is_none());
        assert!(terms.get("mass:range").is_none());
    }

    #[test]
    fn bucket_labels_handle_boundaries() {
        let r = RangeEnrichment::default();
        assert_eq!(r.bucket_label(1950), "1950..1960");
        assert_eq!(r.bucket_label(1959), "1950..1960");
        assert_eq!(r.bucket_label(1960), "1960..1970");
        let centuries = RangeEnrichment {
            bucket_size: 100,
            ..RangeEnrichment::default()
        };
        assert_eq!(centuries.bucket_label(1957), "1900..2000");
    }
}
