//! Deterministic fault-injection harness.
//!
//! Testing graceful degradation needs faults that fire at *chosen, repeatable*
//! points — a parse error in source 3, a worker panic in the source whose URL
//! contains `"flaky"`, budget exhaustion in source 11 — independent of thread
//! interleaving. This module provides a process-global [`FaultPlan`] with
//! injection hooks compiled into the ingestion and detection paths:
//!
//! * [`should_fail_parse`] — consulted by lenient readers per source;
//! * [`maybe_panic_worker`] — called at the top of each detection task;
//! * [`maybe_exhaust_budget`] — ditto, unwinding with a typed
//!   [`BudgetBreach`] of kind [`BreachKind::Injected`].
//!
//! Targets are matched by **source index** (`#N`, the position in the
//! framework's deterministic sorted source order) or by **URL substring**,
//! so a plan names its victims without reference to timing. Plans are
//! installed programmatically ([`install`]) or parsed from a spec string
//! ([`FaultPlan::parse`], e.g. `parse@#3,panic@flaky,budget@#11`) — the CLI
//! reads the spec from the `MIDAS_FAULTINJECT` environment variable.
//!
//! The hooks are compiled unconditionally but guarded by a relaxed atomic
//! fast path: with no plan installed (the only production state) each hook
//! is a single atomic load.

use crate::budget::{breach, BreachKind, BudgetBreach};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How a fault target names its victim source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// The source at this index in the run's deterministic sorted order.
    Index(usize),
    /// Any source whose URL contains this substring.
    UrlContains(String),
}

impl Target {
    fn matches(&self, url: &str, index: usize) -> bool {
        match self {
            Target::Index(i) => *i == index,
            Target::UrlContains(s) => url.contains(s.as_str()),
        }
    }

    fn parse(spec: &str) -> Result<Target, String> {
        if let Some(idx) = spec.strip_prefix('#') {
            idx.parse::<usize>()
                .map(Target::Index)
                .map_err(|_| format!("invalid index target '{spec}' (expected #N)"))
        } else if spec.is_empty() {
            Err("empty fault target".to_string())
        } else {
            Ok(Target::UrlContains(spec.to_string()))
        }
    }
}

/// A deterministic set of faults to inject into a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Sources whose ingestion reports a (synthetic) parse error.
    pub parse_failures: Vec<Target>,
    /// Sources whose detection task panics.
    pub worker_panics: Vec<Target>,
    /// Sources whose detection task reports budget exhaustion.
    pub budget_exhaustions: Vec<Target>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Parses a comma-separated spec of `kind@target` entries, where `kind`
    /// is `parse`, `panic`, or `budget` and `target` is `#N` (source index)
    /// or a URL substring. Example: `parse@#3,panic@flaky,budget@#11`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, target) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry '{entry}' missing '@' (kind@target)"))?;
            let target = Target::parse(target.trim())?;
            match kind.trim() {
                "parse" => plan.parse_failures.push(target),
                "panic" => plan.worker_panics.push(target),
                "budget" => plan.budget_exhaustions.push(target),
                other => return Err(format!("unknown fault kind '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.parse_failures.is_empty()
            && self.worker_panics.is_empty()
            && self.budget_exhaustions.is_empty()
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Installs `plan` process-wide, replacing any previous plan. Installing an
/// empty plan is equivalent to [`clear`].
pub fn install(plan: FaultPlan) {
    let armed = !plan.is_empty();
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = if armed { Some(plan) } else { None };
    ARMED.store(armed, Ordering::Release);
}

/// Removes the installed plan; all hooks return to their no-op fast path.
pub fn clear() {
    install(FaultPlan::new());
}

/// Whether a non-empty plan is currently installed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

fn plan_matches(url: &str, index: usize, pick: impl Fn(&FaultPlan) -> &[Target]) -> bool {
    if !armed() {
        return false;
    }
    PLAN.lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .is_some_and(|plan| pick(plan).iter().any(|t| t.matches(url, index)))
}

/// Whether the installed plan injects a parse failure for this source.
/// Readers consult this per source and emit a synthetic parse fault.
pub fn should_fail_parse(url: &str, index: usize) -> bool {
    plan_matches(url, index, |p| &p.parse_failures)
}

/// Panics (with a recognisable message) if the installed plan targets this
/// source with a worker panic. Call at the top of a detection task.
pub fn maybe_panic_worker(url: &str, index: usize) {
    if plan_matches(url, index, |p| &p.worker_panics) {
        panic!("injected worker panic for source {url} (index {index})");
    }
}

/// Unwinds with an [`BreachKind::Injected`] budget breach if the installed
/// plan targets this source with budget exhaustion.
pub fn maybe_exhaust_budget(url: &str, index: usize) {
    if plan_matches(url, index, |p| &p.budget_exhaustions) {
        breach(BudgetBreach {
            kind: BreachKind::Injected,
            limit: 0,
            observed: index as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_all_kinds() {
        let plan = FaultPlan::parse("parse@#3, panic@flaky ,budget@#11").unwrap();
        assert_eq!(plan.parse_failures, vec![Target::Index(3)]);
        assert_eq!(
            plan.worker_panics,
            vec![Target::UrlContains("flaky".into())]
        );
        assert_eq!(plan.budget_exhaustions, vec![Target::Index(11)]);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("parse#3").is_err());
        assert!(FaultPlan::parse("explode@#1").is_err());
        assert!(FaultPlan::parse("parse@#x").is_err());
        assert!(FaultPlan::parse("parse@").is_err());
    }

    #[test]
    fn target_matching() {
        assert!(Target::Index(4).matches("http://x", 4));
        assert!(!Target::Index(4).matches("http://x", 5));
        assert!(Target::UrlContains("flaky".into()).matches("http://flaky.org/a", 0));
        assert!(!Target::UrlContains("flaky".into()).matches("http://solid.org/a", 0));
    }
}
