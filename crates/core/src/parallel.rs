//! Shared worker-pool utilities.
//!
//! One idiom serves every parallel site in the crate: an **order-preserving
//! parallel map** over an owned work list, built on scoped crossbeam threads
//! and channels. Callers fan the *pure* part of their work out through
//! [`par_map`] and then apply the results sequentially in a deterministic
//! order, so parallel and sequential runs produce identical structures.
//!
//! The pool is **panic-safe**: every task body runs under `catch_unwind`, so
//! one misbehaving task cannot unwind the scope and take the other tasks'
//! results with it. [`par_map_isolated`] surfaces per-item faults as
//! `Result<R, TaskFault>` in the original item order; [`par_map`] keeps its
//! infallible signature (a faulting task re-raises after all surviving
//! results are collected) so existing callers see byte-identical behaviour.
//!
//! When the calling thread holds an active [`crate::budget::BudgetScope`]
//! with a wall-clock deadline, the collection loop switches from blocking
//! `recv` to `recv_timeout` against that deadline: a pool whose workers are
//! stuck in a pathological task is abandoned at the deadline instead of
//! hanging the run (workers observe a cancel flag and drain the remaining
//! queue without executing it).

use crate::budget;
use crate::quarantine::FaultCause;
use crossbeam::channel::{self, RecvTimeoutError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A fault raised by one task of a parallel map: which item faulted and why.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFault {
    /// Index of the faulting item in the input `items` vector.
    pub index: usize,
    /// The converted panic payload (typed budget breaches are preserved).
    pub cause: FaultCause,
}

thread_local! {
    /// Set while a `run_isolated` body executes, so the process-wide panic
    /// hook stays silent for panics we intend to catch and report.
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` under `catch_unwind`, converting a panic into a structured
/// [`FaultCause`] and suppressing the default panic-hook stderr noise for
/// the duration. The body is treated as logically unwind-safe: a faulting
/// task's partial state is discarded wholesale, never observed.
pub fn run_isolated<R>(f: impl FnOnce() -> R) -> Result<R, FaultCause> {
    install_quiet_hook();
    struct QuietGuard(bool);
    impl Drop for QuietGuard {
        fn drop(&mut self) {
            QUIET_PANICS.with(|q| q.set(self.0));
        }
    }
    let _guard = QuietGuard(QUIET_PANICS.with(|q| q.replace(true)));
    catch_unwind(AssertUnwindSafe(f)).map_err(FaultCause::from_panic_payload)
}

/// Order-preserving parallel map over `items` with `threads` workers,
/// surfacing per-item faults.
///
/// Every task runs isolated: a panic (or budget breach) in one task becomes
/// `Err(TaskFault)` at that item's position while every other task runs to
/// completion. Output order always matches input order, whatever the thread
/// count — fault positions never perturb the order or values of surviving
/// results.
///
/// With `threads <= 1` (or fewer than two items) this degrades to a plain
/// sequential loop with no thread or channel overhead.
pub fn par_map_isolated<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<Result<R, TaskFault>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let deadline = budget::active_deadline();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(index, item)| {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(TaskFault {
                            index,
                            cause: run_isolated(|| budget::breach_deadline())
                                .expect_err("breach always unwinds"),
                        });
                    }
                }
                run_isolated(|| f(item)).map_err(|cause| TaskFault { index, cause })
            })
            .collect();
    }

    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, Option<Result<R, FaultCause>>)>();
    for (i, item) in items.into_iter().enumerate() {
        task_tx.send((i, item)).expect("open channel");
    }
    drop(task_tx);
    let cancelled = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            let cancelled = &cancelled;
            scope.spawn(move |_| {
                while let Ok((i, item)) = task_rx.recv() {
                    // After cancellation we still drain the queue so the
                    // collector sees exactly n markers, but skip the work.
                    let out = if cancelled.load(Ordering::Acquire) {
                        None
                    } else {
                        Some(run_isolated(|| f(item)))
                    };
                    res_tx.send((i, out)).expect("open channel");
                }
            });
        }
        drop(res_tx);
        let mut results: Vec<Option<Result<R, FaultCause>>> = (0..n).map(|_| None).collect();
        let mut received = 0usize;
        let mut skipped = false;
        while received < n {
            let msg = match deadline {
                Some(d) if !cancelled.load(Ordering::Acquire) => {
                    let now = Instant::now();
                    if now >= d {
                        cancelled.store(true, Ordering::Release);
                        continue;
                    }
                    match res_rx.recv_timeout(d - now) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => {
                            cancelled.store(true, Ordering::Release);
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => None,
                    }
                }
                // No deadline (or already cancelled — only drain remains,
                // which cannot block indefinitely): plain blocking recv.
                _ => res_rx.recv().ok(),
            };
            let Some((i, out)) = msg else { break };
            received += 1;
            match out {
                Some(r) => results[i] = Some(r),
                None => skipped = true,
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(index, slot)| match slot {
                Some(Ok(r)) => Ok(r),
                Some(Err(cause)) => Err(TaskFault { index, cause }),
                // Slot skipped after cancellation: the pool's deadline
                // elapsed before this task ran.
                None => {
                    debug_assert!(skipped || received < n);
                    Err(TaskFault {
                        index,
                        cause: run_isolated(|| budget::breach_deadline())
                            .expect_err("breach always unwinds"),
                    })
                }
            })
            .collect()
    })
    .expect("isolated workers do not panic")
}

/// Order-preserving parallel map over `items` with `threads` workers.
///
/// Infallible wrapper over [`par_map_isolated`]: behaviour is byte-identical
/// to the pre-isolation pool for non-panicking tasks, and a task that *does*
/// panic re-raises on the calling thread — but only after every other task
/// has run to completion, so sibling work is never torn down mid-flight.
///
/// With `threads <= 1` (or fewer than two items) this degrades to a plain
/// sequential map with no thread or channel overhead, so callers can pass
/// a configured thread count straight through.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_isolated(threads, items, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(fault) => match fault.cause {
                FaultCause::Budget(breach) => budget::breach(breach),
                cause => panic!("par_map task {} panicked: {cause}", fault.index),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BreachKind, BudgetBreach, BudgetScope, SourceBudget};
    use std::time::Duration;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(4, items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_sequential_fallback() {
        assert_eq!(par_map(1, vec![3, 1, 2], |x| x + 1), vec![4, 2, 3]);
        assert_eq!(par_map(8, vec![7], |x| x - 1), vec![6]);
        assert_eq!(par_map(8, Vec::<u8>::new(), |x| x), Vec::<u8>::new());
    }

    #[test]
    fn isolated_surfaces_faults_in_place() {
        for threads in [1, 4] {
            let out = par_map_isolated(threads, (0u32..20).collect(), |x| {
                if x % 7 == 3 {
                    panic!("fault at {x}");
                }
                x * 10
            });
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let fault = r.as_ref().unwrap_err();
                    assert_eq!(fault.index, i);
                    match &fault.cause {
                        FaultCause::Panic { message } => {
                            assert_eq!(message, &format!("fault at {i}"));
                        }
                        other => panic!("unexpected cause {other:?}"),
                    }
                } else {
                    assert_eq!(*r.as_ref().unwrap(), (i as u32) * 10);
                }
            }
        }
    }

    #[test]
    fn isolated_all_tasks_fault() {
        let out = par_map_isolated(4, vec![(); 16], |()| -> u8 { panic!("nothing survives") });
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(|r| r.is_err()));
        assert!((0..16).all(|i| out[i].as_ref().unwrap_err().index == i));
    }

    #[test]
    fn isolated_preserves_typed_budget_breach() {
        let breach = BudgetBreach {
            kind: BreachKind::Facts,
            limit: 3,
            observed: 8,
        };
        let out = par_map_isolated(2, vec![0, 1], |x| {
            if x == 1 {
                crate::budget::breach(BudgetBreach {
                    kind: BreachKind::Facts,
                    limit: 3,
                    observed: 8,
                });
            }
            x
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(
            out[1].as_ref().unwrap_err().cause,
            FaultCause::Budget(breach)
        );
    }

    #[test]
    fn deadline_abandons_stuck_pool() {
        // 16 tasks x 20ms on 2 workers ≈ 160ms of work against a 40ms
        // deadline: completion within the deadline is impossible, so some
        // tail of the task list must come back as Deadline faults while
        // every completed prefix value is correct.
        let budget = SourceBudget::unlimited().with_deadline(Duration::from_millis(40));
        let _scope = BudgetScope::enter(&budget);
        let out = par_map_isolated(2, (0u32..16).collect(), |x| {
            std::thread::sleep(Duration::from_millis(20));
            x + 1
        });
        let deadline_faults = out
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Err(TaskFault {
                        cause: FaultCause::Budget(BudgetBreach {
                            kind: BreachKind::Deadline,
                            ..
                        }),
                        ..
                    })
                )
            })
            .count();
        assert!(deadline_faults > 0, "deadline never fired: {out:?}");
        for (i, r) in out.iter().enumerate() {
            if let Ok(v) = r {
                assert_eq!(*v, i as u32 + 1);
            }
        }
    }

    #[test]
    fn sequential_path_respects_deadline() {
        let budget = SourceBudget::unlimited().with_deadline(Duration::from_millis(10));
        let _scope = BudgetScope::enter(&budget);
        let out = par_map_isolated(1, (0u32..8).collect(), |x| {
            std::thread::sleep(Duration::from_millis(15));
            x
        });
        assert!(out[0].is_ok(), "first task started before the deadline");
        assert!(
            out.iter().any(|r| r.is_err()),
            "later tasks must observe the elapsed deadline"
        );
    }

    #[test]
    #[should_panic(expected = "par_map task 2 panicked")]
    fn infallible_wrapper_reraises() {
        par_map(4, vec![0, 1, 2, 3], |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
