//! Shared worker-pool utilities.
//!
//! One idiom serves every parallel site in the crate: an **order-preserving
//! parallel map** over an owned work list, built on scoped crossbeam threads
//! and channels. Callers fan the *pure* part of their work out through
//! [`par_map`] and then apply the results sequentially in a deterministic
//! order, so parallel and sequential runs produce identical structures.
//!
//! The engine underneath is [`par_map_streamed`]: a **bounded-window
//! streaming map**. At most `window` items are admitted at once — counting
//! both tasks in flight and results buffered for in-order delivery — and
//! each result is handed to a sink callback in input order as soon as its
//! turn completes, so the caller can release a shard's state eagerly instead
//! of holding all `n` results until the round ends. [`par_map_isolated`] is
//! the window = `n` special case that collects into a vector.
//!
//! The pool is **panic-safe**: every task body runs under `catch_unwind`, so
//! one misbehaving task cannot unwind the scope and take the other tasks'
//! results with it. [`par_map_isolated`] surfaces per-item faults as
//! `Result<R, TaskFault>` in the original item order; [`par_map`] keeps its
//! infallible signature (a faulting task re-raises after all surviving
//! results are collected) so existing callers see byte-identical behaviour.
//!
//! When the calling thread holds an active [`crate::budget::BudgetScope`]
//! with a wall-clock deadline, the collection loop switches from blocking
//! `recv` to `recv_timeout` against that deadline: a pool whose workers are
//! stuck in a pathological task is abandoned at the deadline instead of
//! hanging the run (workers observe a cancel flag and drain the remaining
//! queue without executing it).

use crate::budget;
use crate::quarantine::FaultCause;
use crate::telemetry;
use crossbeam::channel::{self, RecvTimeoutError};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Worker-pool instrumentation. `pool.tasks` (exact, counted once per map
/// call) and the per-kind fault counters are precise; the wait/exec/
/// occupancy histograms are *statistical samples* — every
/// [`SPAN_SAMPLE_EVERY`]-th task per thread, starting with the first —
/// because two clock reads plus three histogram records per task would
/// dominate the sub-microsecond tasks this pool is fed (millions per
/// run). Sampling keeps the shape of the distributions at ~1/64 the cost.
mod metrics {
    use crate::budget::BreachKind;
    use crate::quarantine::FaultCause;

    crate::counter!(pub TASKS, "pool.tasks");
    crate::counter!(pub FAULTS_PARSE, "pool.faults.parse");
    crate::counter!(pub FAULTS_PANIC, "pool.faults.panic");
    crate::counter!(pub FAULTS_BUDGET, "pool.faults.budget");
    crate::counter!(pub FAULTS_DEADLINE, "pool.faults.deadline");
    crate::histogram!(pub TASK_WAIT_NS, "pool.task.wait_ns");
    crate::histogram!(pub TASK_EXEC_NS, "pool.task.exec_ns");
    crate::histogram!(pub WINDOW_OCCUPANCY, "pool.window.occupancy");

    /// Counts one fault under the counter matching its cause. Deadline
    /// breaches get their own bucket (they mean the *pool* was abandoned,
    /// not that the task itself exhausted a budget).
    pub fn record_fault(cause: &FaultCause) {
        match cause {
            FaultCause::Parse { .. } => FAULTS_PARSE.inc(),
            FaultCause::Panic { .. } => FAULTS_PANIC.inc(),
            FaultCause::Budget(breach) if breach.kind == BreachKind::Deadline => {
                FAULTS_DEADLINE.inc()
            }
            FaultCause::Budget(_) => FAULTS_BUDGET.inc(),
        }
    }
}

/// One task in this many (per thread) records its timing histograms.
const SPAN_SAMPLE_EVERY: u32 = 64;

thread_local! {
    /// Per-thread sample pacer for the pool's timing histograms.
    static SPAN_PACER: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Whether this thread's next pool event falls on the sample grid. The
/// first event on every thread samples, so short runs still populate the
/// histograms.
#[inline]
fn sample_span() -> bool {
    SPAN_PACER.with(|c| {
        let v = c.get();
        c.set(v.wrapping_add(1));
        v % SPAN_SAMPLE_EVERY == 0
    })
}

/// A fault raised by one task of a parallel map: which item faulted and why.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFault {
    /// Index of the faulting item in the input `items` vector.
    pub index: usize,
    /// The converted panic payload (typed budget breaches are preserved).
    pub cause: FaultCause,
}

thread_local! {
    /// Set while a `run_isolated` body executes, so the process-wide panic
    /// hook stays silent for panics we intend to catch and report.
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` under `catch_unwind`, converting a panic into a structured
/// [`FaultCause`] and suppressing the default panic-hook stderr noise for
/// the duration. The body is treated as logically unwind-safe: a faulting
/// task's partial state is discarded wholesale, never observed.
pub fn run_isolated<R>(f: impl FnOnce() -> R) -> Result<R, FaultCause> {
    install_quiet_hook();
    struct QuietGuard(bool);
    impl Drop for QuietGuard {
        fn drop(&mut self) {
            QUIET_PANICS.with(|q| q.set(self.0));
        }
    }
    let _guard = QuietGuard(QUIET_PANICS.with(|q| q.replace(true)));
    catch_unwind(AssertUnwindSafe(f)).map_err(FaultCause::from_panic_payload)
}

/// The `FaultCause` of a task abandoned at the pool's deadline.
fn deadline_cause() -> FaultCause {
    run_isolated(|| budget::breach_deadline()).expect_err("breach always unwinds")
}

/// Converts a delivered slot into the sink's `Result` form.
fn finish_slot<R>(index: usize, out: Option<Result<R, FaultCause>>) -> Result<R, TaskFault> {
    match out {
        Some(Ok(r)) => Ok(r),
        Some(Err(cause)) => {
            metrics::record_fault(&cause);
            Err(TaskFault { index, cause })
        }
        // Slot skipped after cancellation (or lost to an abandoned pool):
        // the deadline elapsed before this task ran.
        None => {
            metrics::FAULTS_DEADLINE.inc();
            Err(TaskFault {
                index,
                cause: deadline_cause(),
            })
        }
    }
}

/// Streaming order-preserving parallel map with a bounded admission window.
///
/// At most `window` items are admitted at once — in flight on a worker or
/// buffered awaiting in-order delivery — so the caller's peak resident state
/// is proportional to the window, not to `items.len()`. Each result is
/// handed to `sink(index, result)` in input order the moment its turn
/// completes; `sink` runs on the calling thread and is called exactly once
/// per item, faulted or not.
///
/// Every task runs isolated (see [`par_map_isolated`]); deadline handling,
/// fault conversion, and the sequential fallback for `threads <= 1` are
/// identical, so a streamed run produces bit-identical sink invocations at
/// every `(window, threads)` combination.
pub fn par_map_streamed<T, R, F, S>(threads: usize, window: usize, items: Vec<T>, f: F, mut sink: S)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    S: FnMut(usize, Result<R, TaskFault>),
{
    let n = items.len();
    // Counted once per map call, not per task: the total stays exact by
    // the time the call returns (every admitted item reaches the sink)
    // without an atomic bump on each sub-microsecond task.
    metrics::TASKS.add(n as u64);
    let deadline = budget::active_deadline();
    if threads <= 1 || n <= 1 {
        for (index, item) in items.into_iter().enumerate() {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    sink(index, finish_slot(index, None));
                    continue;
                }
            }
            if telemetry::enabled() && sample_span() {
                let start_ns = telemetry::clock_ns();
                let out = run_isolated(|| f(item));
                metrics::TASK_WAIT_NS.record(0);
                metrics::TASK_EXEC_NS.record(telemetry::clock_ns().saturating_sub(start_ns));
                sink(index, finish_slot(index, Some(out)));
            } else {
                let out = run_isolated(|| f(item));
                sink(index, finish_slot(index, Some(out)));
            }
        }
        return;
    }

    let window = window.max(1);
    let (task_tx, task_rx) = channel::unbounded::<(usize, T, u64)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, Option<Result<R, FaultCause>>)>();
    let cancelled = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n).min(window) {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            let cancelled = &cancelled;
            scope.spawn(move |_| {
                while let Ok((i, item, enqueued_ns)) = task_rx.recv() {
                    // After cancellation we still drain the queue so the
                    // collector sees exactly one marker per admitted item,
                    // but skip the work. `enqueued_ns == u64::MAX` marks an
                    // unsampled task (see the admission site).
                    let out = if cancelled.load(Ordering::Acquire) {
                        None
                    } else if enqueued_ns != u64::MAX {
                        let start_ns = telemetry::clock_ns();
                        metrics::TASK_WAIT_NS.record(start_ns.saturating_sub(enqueued_ns));
                        let out = run_isolated(|| f(item));
                        metrics::TASK_EXEC_NS
                            .record(telemetry::clock_ns().saturating_sub(start_ns));
                        Some(out)
                    } else {
                        Some(run_isolated(|| f(item)))
                    };
                    res_tx.send((i, out)).expect("open channel");
                }
            });
        }
        drop(res_tx);
        let mut feed = items.into_iter().enumerate();
        // Results that completed out of order, keyed by input index. Entries
        // here still count against the window, so buffered memory is bounded
        // by `window` items too.
        let mut pending: BTreeMap<usize, Option<Result<R, FaultCause>>> = BTreeMap::new();
        let mut in_flight = 0usize;
        let mut next = 0usize;
        while next < n {
            while in_flight < window {
                match feed.next() {
                    Some((i, item)) => {
                        // The admission decides whether this task samples
                        // its timing histograms; `u64::MAX` marks the
                        // unsampled majority so workers skip both clock
                        // reads entirely.
                        let enqueued_ns = if telemetry::enabled() && sample_span() {
                            metrics::WINDOW_OCCUPANCY.record(in_flight as u64 + 1);
                            telemetry::clock_ns()
                        } else {
                            u64::MAX
                        };
                        task_tx.send((i, item, enqueued_ns)).expect("open channel");
                        in_flight += 1;
                    }
                    None => break,
                }
            }
            if in_flight == 0 {
                // Feeder exhausted with nothing outstanding — only reachable
                // when results were lost to a dead pool; the drain below
                // fills the remaining slots.
                break;
            }
            let msg = match deadline {
                Some(d) if !cancelled.load(Ordering::Acquire) => {
                    let now = Instant::now();
                    if now >= d {
                        cancelled.store(true, Ordering::Release);
                        continue;
                    }
                    match res_rx.recv_timeout(d - now) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => {
                            cancelled.store(true, Ordering::Release);
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => None,
                    }
                }
                // No deadline (or already cancelled — only drain remains,
                // which cannot block indefinitely): plain blocking recv.
                _ => res_rx.recv().ok(),
            };
            let Some((i, out)) = msg else { break };
            pending.insert(i, out);
            // Deliver every in-order result that is now ready; each delivery
            // frees one window slot for the feeder.
            while let Some(out) = pending.remove(&next) {
                let index = next;
                next += 1;
                in_flight -= 1;
                sink(index, finish_slot(index, out));
            }
        }
        // Close the task channel so workers exit and the scope can join.
        drop(task_tx);
        // Abandoned-pool drain: deliver any remaining slots (buffered or
        // never completed) so the sink always sees exactly n calls in order.
        while next < n {
            let index = next;
            next += 1;
            let out = pending.remove(&index).flatten();
            sink(index, finish_slot(index, out));
        }
    })
    .expect("isolated workers do not panic");
}

/// Order-preserving parallel map over `items` with `threads` workers,
/// surfacing per-item faults.
///
/// Every task runs isolated: a panic (or budget breach) in one task becomes
/// `Err(TaskFault)` at that item's position while every other task runs to
/// completion. Output order always matches input order, whatever the thread
/// count — fault positions never perturb the order or values of surviving
/// results.
///
/// With `threads <= 1` (or fewer than two items) this degrades to a plain
/// sequential loop with no thread or channel overhead.
pub fn par_map_isolated<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<Result<R, TaskFault>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let mut out = Vec::with_capacity(n);
    par_map_streamed(threads, n.max(1), items, f, |index, r| {
        debug_assert_eq!(index, out.len(), "sink delivery is in input order");
        out.push(r);
    });
    out
}

/// Order-preserving parallel map over `items` with `threads` workers.
///
/// Infallible wrapper over [`par_map_isolated`]: behaviour is byte-identical
/// to the pre-isolation pool for non-panicking tasks, and a task that *does*
/// panic re-raises on the calling thread — but only after every other task
/// has run to completion, so sibling work is never torn down mid-flight.
///
/// With `threads <= 1` (or fewer than two items) this degrades to a plain
/// sequential map with no thread or channel overhead, so callers can pass
/// a configured thread count straight through.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_isolated(threads, items, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(fault) => match fault.cause {
                FaultCause::Budget(breach) => budget::breach(breach),
                cause => panic!("par_map task {} panicked: {cause}", fault.index),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BreachKind, BudgetBreach, BudgetScope, SourceBudget};
    use std::time::Duration;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(4, items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_sequential_fallback() {
        assert_eq!(par_map(1, vec![3, 1, 2], |x| x + 1), vec![4, 2, 3]);
        assert_eq!(par_map(8, vec![7], |x| x - 1), vec![6]);
        assert_eq!(par_map(8, Vec::<u8>::new(), |x| x), Vec::<u8>::new());
    }

    #[test]
    fn streamed_delivers_in_order_at_every_window() {
        for window in [1usize, 2, 3, 7, 64] {
            for threads in [1usize, 4, 8] {
                let mut seen: Vec<(usize, u32)> = Vec::new();
                par_map_streamed(
                    threads,
                    window,
                    (0u32..50).collect(),
                    |x| x * 2,
                    |i, r| {
                        seen.push((i, r.expect("no faults injected")));
                    },
                );
                let expect: Vec<(usize, u32)> =
                    (0..50).map(|i| (i as usize, i as u32 * 2)).collect();
                assert_eq!(seen, expect, "window {window}, threads {threads}");
            }
        }
    }

    #[test]
    fn streamed_window_bounds_admission() {
        use std::sync::atomic::AtomicUsize;
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let window = 3usize;
        par_map_streamed(
            8,
            window,
            (0u32..40).collect(),
            |x| {
                let cur = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(cur, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                x
            },
            |_, _| {},
        );
        assert!(
            peak.load(Ordering::SeqCst) <= window,
            "no more than `window` tasks may execute concurrently"
        );
    }

    #[test]
    fn streamed_surfaces_faults_in_order() {
        for window in [1usize, 2, 16] {
            let mut seen = Vec::new();
            par_map_streamed(
                4,
                window,
                (0u32..20).collect(),
                |x| {
                    if x % 5 == 0 {
                        panic!("boom {x}");
                    }
                    x
                },
                |i, r| seen.push((i, r)),
            );
            assert_eq!(seen.len(), 20);
            for (pos, (i, r)) in seen.iter().enumerate() {
                assert_eq!(pos, *i, "sink order matches input order");
                if pos % 5 == 0 {
                    let fault = r.as_ref().unwrap_err();
                    assert_eq!(fault.index, pos);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), pos as u32);
                }
            }
        }
    }

    #[test]
    fn isolated_surfaces_faults_in_place() {
        for threads in [1, 4] {
            let out = par_map_isolated(threads, (0u32..20).collect(), |x| {
                if x % 7 == 3 {
                    panic!("fault at {x}");
                }
                x * 10
            });
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let fault = r.as_ref().unwrap_err();
                    assert_eq!(fault.index, i);
                    match &fault.cause {
                        FaultCause::Panic { message } => {
                            assert_eq!(message, &format!("fault at {i}"));
                        }
                        other => panic!("unexpected cause {other:?}"),
                    }
                } else {
                    assert_eq!(*r.as_ref().unwrap(), (i as u32) * 10);
                }
            }
        }
    }

    #[test]
    fn isolated_all_tasks_fault() {
        let out = par_map_isolated(4, vec![(); 16], |()| -> u8 { panic!("nothing survives") });
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(|r| r.is_err()));
        assert!((0..16).all(|i| out[i].as_ref().unwrap_err().index == i));
    }

    #[test]
    fn isolated_preserves_typed_budget_breach() {
        let breach = BudgetBreach {
            kind: BreachKind::Facts,
            limit: 3,
            observed: 8,
        };
        let out = par_map_isolated(2, vec![0, 1], |x| {
            if x == 1 {
                crate::budget::breach(BudgetBreach {
                    kind: BreachKind::Facts,
                    limit: 3,
                    observed: 8,
                });
            }
            x
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(
            out[1].as_ref().unwrap_err().cause,
            FaultCause::Budget(breach)
        );
    }

    #[test]
    fn deadline_abandons_stuck_pool() {
        // 16 tasks x 20ms on 2 workers ≈ 160ms of work against a 40ms
        // deadline: completion within the deadline is impossible, so some
        // tail of the task list must come back as Deadline faults while
        // every completed prefix value is correct.
        let budget = SourceBudget::unlimited().with_deadline(Duration::from_millis(40));
        let _scope = BudgetScope::enter(&budget);
        let out = par_map_isolated(2, (0u32..16).collect(), |x| {
            std::thread::sleep(Duration::from_millis(20));
            x + 1
        });
        let deadline_faults = out
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Err(TaskFault {
                        cause: FaultCause::Budget(BudgetBreach {
                            kind: BreachKind::Deadline,
                            ..
                        }),
                        ..
                    })
                )
            })
            .count();
        assert!(deadline_faults > 0, "deadline never fired: {out:?}");
        for (i, r) in out.iter().enumerate() {
            if let Ok(v) = r {
                assert_eq!(*v, i as u32 + 1);
            }
        }
    }

    #[test]
    fn sequential_path_respects_deadline() {
        let budget = SourceBudget::unlimited().with_deadline(Duration::from_millis(10));
        let _scope = BudgetScope::enter(&budget);
        let out = par_map_isolated(1, (0u32..8).collect(), |x| {
            std::thread::sleep(Duration::from_millis(15));
            x
        });
        assert!(out[0].is_ok(), "first task started before the deadline");
        assert!(
            out.iter().any(|r| r.is_err()),
            "later tasks must observe the elapsed deadline"
        );
    }

    #[test]
    #[should_panic(expected = "par_map task 2 panicked")]
    fn infallible_wrapper_reraises() {
        par_map(4, vec![0, 1, 2, 3], |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
