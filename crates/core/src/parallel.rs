//! Shared worker-pool utilities.
//!
//! One idiom serves every parallel site in the crate: an **order-preserving
//! parallel map** over an owned work list, built on scoped crossbeam threads
//! and channels. Callers fan the *pure* part of their work out through
//! [`par_map`] and then apply the results sequentially in a deterministic
//! order, so parallel and sequential runs produce identical structures.

use crossbeam::channel;

/// Order-preserving parallel map over `items` with `threads` workers.
///
/// With `threads <= 1` (or fewer than two items) this degrades to a plain
/// sequential map with no thread or channel overhead, so callers can pass
/// a configured thread count straight through.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    for (i, item) in items.into_iter().enumerate() {
        task_tx.send((i, item)).expect("open channel");
    }
    drop(task_tx);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move |_| {
                while let Ok((i, item)) = task_rx.recv() {
                    res_tx.send((i, f(item))).expect("open channel");
                }
            });
        }
        drop(res_tx);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((i, r)) = res_rx.recv() {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every task produced a result"))
            .collect()
    })
    .expect("worker threads do not panic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(4, items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_sequential_fallback() {
        assert_eq!(par_map(1, vec![3, 1, 2], |x| x + 1), vec![4, 2, 3]);
        assert_eq!(par_map(8, vec![7], |x| x - 1), vec![6]);
        assert_eq!(par_map(8, Vec::<u8>::new(), |x| x), Vec::<u8>::new());
    }
}
