//! Per-source working sets.

use midas_kb::Fact;
use midas_weburl::SourceUrl;

/// The deduplicated facts `T_W` extracted from one web source `W`.
#[derive(Debug, Clone)]
pub struct SourceFacts {
    /// The source URL (at any granularity).
    pub url: SourceUrl,
    /// Distinct facts extracted from this source.
    pub facts: Vec<Fact>,
}

impl SourceFacts {
    /// Builds a source working set, deduplicating facts.
    pub fn new(url: SourceUrl, mut facts: Vec<Fact>) -> Self {
        facts.sort_unstable();
        facts.dedup();
        SourceFacts { url, facts }
    }

    /// `|T_W|` — the crawling-cost driver of Definition 9.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts were extracted.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Merges several children working sets into their parent's.
    pub fn merge(url: SourceUrl, children: impl IntoIterator<Item = SourceFacts>) -> Self {
        let mut facts = Vec::new();
        for c in children {
            facts.extend(c.facts);
        }
        SourceFacts::new(url, facts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_kb::Interner;

    #[test]
    fn new_deduplicates_and_sorts() {
        let mut t = Interner::new();
        let a = Fact::intern(&mut t, "a", "p", "1");
        let b = Fact::intern(&mut t, "b", "p", "2");
        let src = SourceFacts::new(
            SourceUrl::parse("http://x.com/page").unwrap(),
            vec![b, a, b, a],
        );
        assert_eq!(src.len(), 2);
        assert_eq!(src.facts, vec![a, b]);
    }

    #[test]
    fn merge_unions_children() {
        let mut t = Interner::new();
        let a = Fact::intern(&mut t, "a", "p", "1");
        let b = Fact::intern(&mut t, "b", "p", "2");
        let u = |s: &str| SourceUrl::parse(s).unwrap();
        let c1 = SourceFacts::new(u("http://x.com/d/1"), vec![a]);
        let c2 = SourceFacts::new(u("http://x.com/d/2"), vec![a, b]);
        let parent = SourceFacts::merge(u("http://x.com/d"), [c1, c2]);
        assert_eq!(parent.len(), 2);
        assert!(parent.is_empty() == false);
    }
}
