//! Per-source working sets.

use midas_kb::{Column, Fact};
use midas_weburl::SourceUrl;

/// The deduplicated facts `T_W` extracted from one web source `W`.
///
/// Facts are held in a [`Column`], so a working set loaded from a corpus
/// snapshot borrows its facts directly from the memory-mapped file; cloning
/// such a column only bumps a reference count.
#[derive(Debug, Clone)]
pub struct SourceFacts {
    /// The source URL (at any granularity).
    pub url: SourceUrl,
    /// Distinct facts extracted from this source, sorted by `(s, p, o)`.
    pub facts: Column<Fact>,
}

impl SourceFacts {
    /// Builds a source working set, deduplicating facts.
    pub fn new(url: SourceUrl, mut facts: Vec<Fact>) -> Self {
        facts.sort_unstable();
        facts.dedup();
        SourceFacts {
            url,
            facts: facts.into(),
        }
    }

    /// Wraps an already-sorted, already-deduplicated fact column.
    ///
    /// Used by the snapshot loader, where the invariant was established when
    /// the column was written. Debug builds re-check it.
    pub fn from_sorted_column(url: SourceUrl, facts: Column<Fact>) -> Self {
        debug_assert!(facts.windows(2).all(|w| w[0] < w[1]));
        SourceFacts { url, facts }
    }

    /// `|T_W|` — the crawling-cost driver of Definition 9.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts were extracted.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Merges several children working sets into their parent's.
    ///
    /// The first child's buffer is reused and grown once to the combined
    /// size, so merging `k` children performs at most one reallocation.
    pub fn merge(url: SourceUrl, children: impl IntoIterator<Item = SourceFacts>) -> Self {
        let children: Vec<SourceFacts> = children.into_iter().collect();
        let total: usize = children.iter().map(SourceFacts::len).sum();
        let mut iter = children.into_iter();
        let mut facts = iter.next().map_or_else(Vec::new, |c| c.facts.into_vec());
        facts.reserve(total - facts.len());
        for c in iter {
            facts.extend(c.facts.iter().copied());
        }
        SourceFacts::new(url, facts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_kb::Interner;

    #[test]
    fn new_deduplicates_and_sorts() {
        let mut t = Interner::new();
        let a = Fact::intern(&mut t, "a", "p", "1");
        let b = Fact::intern(&mut t, "b", "p", "2");
        let src = SourceFacts::new(
            SourceUrl::parse("http://x.com/page").unwrap(),
            vec![b, a, b, a],
        );
        assert_eq!(src.len(), 2);
        assert_eq!(&src.facts[..], &[a, b]);
    }

    #[test]
    fn merge_unions_children() {
        let mut t = Interner::new();
        let a = Fact::intern(&mut t, "a", "p", "1");
        let b = Fact::intern(&mut t, "b", "p", "2");
        let u = |s: &str| SourceUrl::parse(s).unwrap();
        let c1 = SourceFacts::new(u("http://x.com/d/1"), vec![a]);
        let c2 = SourceFacts::new(u("http://x.com/d/2"), vec![a, b]);
        let parent = SourceFacts::merge(u("http://x.com/d"), [c1, c2]);
        assert_eq!(parent.len(), 2);
        assert!(!parent.is_empty());
    }

    #[test]
    fn from_sorted_column_round_trips() {
        let mut t = Interner::new();
        let a = Fact::intern(&mut t, "a", "p", "1");
        let b = Fact::intern(&mut t, "b", "p", "2");
        let src = SourceFacts::from_sorted_column(
            SourceUrl::parse("http://x.com/page").unwrap(),
            vec![a, b].into(),
        );
        assert_eq!(src.len(), 2);
    }
}
