//! Quarantine: structured records of sources dropped from a run.
//!
//! The robustness contract of the framework is that a run over N sources
//! always completes, and anything it could not process is reported rather
//! than silently lost or fatally propagated. Each dropped source becomes a
//! [`SourceFault`] — which source, at which pipeline [`Stage`], for what
//! [`FaultCause`], and how much budget it had consumed — collected into a
//! [`Quarantine`] that the eval report and CLI summary render.

use crate::budget::BudgetBreach;
use std::fmt;

/// Fault tallies by stage and by cause, counted once per [`Quarantine::push`]
/// (merges move already-counted faults, so they do not re-count). The CLI's
/// trailing summary is a view over the same records these count, so a
/// metrics snapshot always reconciles with the rendered summary.
mod metrics {
    crate::counter!(pub STAGE_READ, "quarantine.stage.read");
    crate::counter!(pub STAGE_DETECT, "quarantine.stage.detect");
    crate::counter!(pub STAGE_CONSOLIDATE, "quarantine.stage.consolidate");
    crate::counter!(pub CAUSE_PARSE, "quarantine.cause.parse");
    crate::counter!(pub CAUSE_PANIC, "quarantine.cause.panic");
    crate::counter!(pub CAUSE_BUDGET, "quarantine.cause.budget");
}

/// The pipeline stage at which a source was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Ingestion: parsing fact files / generator records.
    Read,
    /// Round-0 per-source slice detection.
    Detect,
    /// A merge round's detect + consolidate task over a parent shard.
    Consolidate,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Read => write!(f, "read"),
            Stage::Detect => write!(f, "detect"),
            Stage::Consolidate => write!(f, "consolidate"),
        }
    }
}

/// Why a source was dropped.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultCause {
    /// Malformed input that could not be parsed. `file` and `line` point at
    /// the offending record in the ingested file (line is 1-based; 0 when
    /// unknown, e.g. for synthesized records).
    Parse {
        /// Source file (or dataset identifier) the record came from.
        file: String,
        /// 1-based line number of the malformed record; 0 if unknown.
        line: u64,
        /// Human-readable description of the malformation.
        message: String,
    },
    /// A worker panicked while processing the source.
    Panic {
        /// The panic payload rendered as text (`&str`/`String` payloads are
        /// preserved verbatim; other payloads become a generic message).
        message: String,
    },
    /// The source exceeded its execution budget.
    Budget(BudgetBreach),
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::Parse {
                file,
                line,
                message,
            } => {
                if *line == 0 {
                    write!(f, "parse error ({file}): {message}")
                } else {
                    write!(f, "parse error ({file}:{line}): {message}")
                }
            }
            FaultCause::Panic { message } => write!(f, "worker panic: {message}"),
            FaultCause::Budget(breach) => write!(f, "budget: {breach}"),
        }
    }
}

impl FaultCause {
    /// Short machine-friendly tag for report columns.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultCause::Parse { .. } => "parse",
            FaultCause::Panic { .. } => "panic",
            FaultCause::Budget(_) => "budget",
        }
    }

    /// Converts a caught panic payload into a cause, recovering a typed
    /// [`BudgetBreach`] when the unwind came from the budget layer.
    pub fn from_panic_payload(payload: Box<dyn std::any::Any + Send>) -> FaultCause {
        let payload = match payload.downcast::<BudgetBreach>() {
            Ok(breach) => return FaultCause::Budget(*breach),
            Err(other) => other,
        };
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_string()
        };
        FaultCause::Panic { message }
    }
}

/// One quarantined source: everything a post-mortem needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFault {
    /// The source URL (or file path for read-stage faults with no URL).
    pub source: String,
    /// Pipeline stage at which the source was dropped.
    pub stage: Stage,
    /// Why it was dropped.
    pub cause: FaultCause,
    /// Facts the source had contributed when it was dropped — the budget it
    /// consumed before quarantine. 0 for read-stage faults.
    pub facts_seen: usize,
}

impl fmt::Display for SourceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {} ({} facts seen)",
            self.stage, self.source, self.cause, self.facts_seen
        )
    }
}

/// The set of sources dropped from a run, in quarantine order (read-stage
/// faults first, then detection rounds in deterministic merge order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Quarantine {
    faults: Vec<SourceFault>,
}

impl Quarantine {
    /// An empty quarantine.
    pub fn new() -> Self {
        Quarantine::default()
    }

    /// Records one dropped source.
    pub fn push(&mut self, fault: SourceFault) {
        match fault.stage {
            Stage::Read => metrics::STAGE_READ.inc(),
            Stage::Detect => metrics::STAGE_DETECT.inc(),
            Stage::Consolidate => metrics::STAGE_CONSOLIDATE.inc(),
        }
        match fault.cause {
            FaultCause::Parse { .. } => metrics::CAUSE_PARSE.inc(),
            FaultCause::Panic { .. } => metrics::CAUSE_PANIC.inc(),
            FaultCause::Budget(_) => metrics::CAUSE_BUDGET.inc(),
        }
        self.faults.push(fault);
    }

    /// Appends all records from `other`, preserving both orders.
    pub fn merge(&mut self, other: Quarantine) {
        self.faults.extend(other.faults);
    }

    /// Number of quarantined sources.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no source was quarantined.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates records in quarantine order.
    pub fn iter(&self) -> impl Iterator<Item = &SourceFault> {
        self.faults.iter()
    }

    /// Whether any record references `source` (exact match).
    pub fn contains_source(&self, source: &str) -> bool {
        self.faults.iter().any(|f| f.source == source)
    }

    /// Renders a human-readable multi-line summary, one line per fault,
    /// prefixed with a header. Empty string when nothing was quarantined.
    pub fn render(&self) -> String {
        if self.faults.is_empty() {
            return String::new();
        }
        let mut out = format!("quarantined {} source(s):\n", self.faults.len());
        for fault in &self.faults {
            out.push_str("  ");
            out.push_str(&fault.to_string());
            out.push('\n');
        }
        out
    }
}

impl IntoIterator for Quarantine {
    type Item = SourceFault;
    type IntoIter = std::vec::IntoIter<SourceFault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BreachKind, BudgetBreach};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn sample_fault() -> SourceFault {
        SourceFault {
            source: "http://a.example.org/data".to_string(),
            stage: Stage::Detect,
            cause: FaultCause::Panic {
                message: "boom".to_string(),
            },
            facts_seen: 42,
        }
    }

    #[test]
    fn render_lists_every_fault() {
        let mut q = Quarantine::new();
        q.push(sample_fault());
        q.push(SourceFault {
            source: "facts.tsv".to_string(),
            stage: Stage::Read,
            cause: FaultCause::Parse {
                file: "facts.tsv".to_string(),
                line: 17,
                message: "expected 4 fields".to_string(),
            },
            facts_seen: 0,
        });
        let rendered = q.render();
        assert!(rendered.contains("quarantined 2 source(s)"));
        assert!(rendered.contains("boom"));
        assert!(rendered.contains("facts.tsv:17"));
        assert!(q.contains_source("facts.tsv"));
        assert!(!q.contains_source("facts"));
    }

    #[test]
    fn empty_quarantine_renders_nothing() {
        assert_eq!(Quarantine::new().render(), "");
        assert!(Quarantine::new().is_empty());
    }

    #[test]
    fn merge_preserves_order() {
        let mut a = Quarantine::new();
        a.push(sample_fault());
        let mut b = Quarantine::new();
        let mut second = sample_fault();
        second.source = "http://b.example.org/data".to_string();
        b.push(second);
        a.merge(b);
        let sources: Vec<&str> = a.iter().map(|f| f.source.as_str()).collect();
        assert_eq!(
            sources,
            ["http://a.example.org/data", "http://b.example.org/data"]
        );
    }

    #[test]
    fn panic_payload_conversion_recovers_breach_and_strings() {
        let breach = BudgetBreach {
            kind: BreachKind::Facts,
            limit: 5,
            observed: 9,
        };
        let payload =
            catch_unwind(AssertUnwindSafe(|| crate::budget::breach(breach.clone()))).unwrap_err();
        assert_eq!(
            FaultCause::from_panic_payload(payload),
            FaultCause::Budget(breach)
        );

        let payload = catch_unwind(|| panic!("plain message")).unwrap_err();
        match FaultCause::from_panic_payload(payload) {
            FaultCause::Panic { message } => assert!(message.contains("plain message")),
            other => panic!("unexpected cause {other:?}"),
        }
    }
}
