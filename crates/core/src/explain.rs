//! Profit explanations: the Definition 9 components of a slice's profit.
//!
//! A bare profit number ("4.327") doesn't tell an operator *why* a slice is
//! worth extracting. [`ProfitBreakdown`] decomposes it into the gain and the
//! three cost components, so reports can show e.g.
//!
//! ```text
//! gain 5.400 (6 new facts) − training 1.000 − crawl 0.013 − dedup 0.060
//!   − validation 0.600 = 4.327
//! ```

use crate::extent::ExtentSet;
use crate::profit::ProfitCtx;
use std::fmt;

/// The Definition 9 components of `f({S})` for one slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfitBreakdown {
    /// `G = |Π* \ E|` — new facts.
    pub new_facts: u64,
    /// `|Π*|` — all facts of the slice.
    pub total_facts: u64,
    /// Raw gain `G` (before validation cost).
    pub gain: f64,
    /// Per-slice training cost `f_p`.
    pub training: f64,
    /// Fixed crawling term `f_c·|T_W|`.
    pub crawl: f64,
    /// De-duplication cost `f_d·|Π*|`.
    pub dedup: f64,
    /// Validation cost `f_v·G`.
    pub validation: f64,
}

impl ProfitBreakdown {
    /// The resulting profit: `gain − training − crawl − dedup − validation`.
    pub fn profit(&self) -> f64 {
        self.gain - self.training - self.crawl - self.dedup - self.validation
    }

    /// Total cost.
    pub fn cost(&self) -> f64 {
        self.training + self.crawl + self.dedup + self.validation
    }

    /// The dominant cost component, as a label.
    pub fn dominant_cost(&self) -> &'static str {
        let components = [
            (self.training, "training"),
            (self.crawl, "crawl"),
            (self.dedup, "dedup"),
            (self.validation, "validation"),
        ];
        components
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|&(_, name)| name)
            .expect("non-empty component list")
    }
}

impl fmt::Display for ProfitBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gain {:.3} ({} new of {} facts) − training {:.3} − crawl {:.3} − dedup {:.3} − validation {:.3} = {:.3}",
            self.gain,
            self.new_facts,
            self.total_facts,
            self.training,
            self.crawl,
            self.dedup,
            self.validation,
            self.profit()
        )
    }
}

impl<'a> ProfitCtx<'a> {
    /// Decomposes `f({S})` for a slice with the given entity extent.
    pub fn breakdown(&self, entities: &ExtentSet) -> ProfitBreakdown {
        let new_facts = self.table().new_sum(entities);
        let total_facts = self.table().facts_sum(entities);
        let cost = self.cost();
        ProfitBreakdown {
            new_facts,
            total_facts,
            gain: new_facts as f64,
            training: cost.fp,
            crawl: self.crawl_fixed(),
            dedup: cost.fd * total_facts as f64,
            validation: cost.fv * new_facts as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MidasConfig;
    use crate::fact_table::FactTable;
    use crate::fixtures::skyrocket;
    use midas_kb::Interner;

    fn s5_breakdown() -> ProfitBreakdown {
        let mut t = Interner::new();
        let (src, kb) = skyrocket(&mut t);
        let table = FactTable::build(&src, &kb);
        let cfg = MidasConfig::running_example();
        let ctx = ProfitCtx::new(&table, cfg.cost);
        let c2 = table
            .catalog()
            .get(t.get("category").unwrap(), t.get("rocket_family").unwrap())
            .unwrap();
        let c6 = table
            .catalog()
            .get(t.get("sponsor").unwrap(), t.get("NASA").unwrap())
            .unwrap();
        ctx.breakdown(&table.extent_of(&[c2, c6]))
    }

    #[test]
    fn breakdown_reconstructs_figure_5_profit() {
        let b = s5_breakdown();
        assert_eq!(b.new_facts, 6);
        assert_eq!(b.total_facts, 6);
        assert!((b.profit() - 4.327).abs() < 1e-9);
        assert!((b.gain - 6.0).abs() < 1e-12);
        assert!((b.validation - 0.6).abs() < 1e-12);
        assert!((b.dedup - 0.06).abs() < 1e-12);
        assert!((b.crawl - 0.013).abs() < 1e-12);
        assert!((b.training - 1.0).abs() < 1e-12);
    }

    #[test]
    fn components_sum_to_cost() {
        let b = s5_breakdown();
        assert!((b.cost() - (b.gain - b.profit())).abs() < 1e-12);
    }

    #[test]
    fn dominant_cost_is_training_for_small_slices() {
        let b = s5_breakdown();
        assert_eq!(b.dominant_cost(), "training");
    }

    #[test]
    fn display_is_readable() {
        let b = s5_breakdown();
        let s = b.to_string();
        assert!(s.contains("6 new of 6 facts"));
        assert!(s.contains("= 4.327"));
    }
}
