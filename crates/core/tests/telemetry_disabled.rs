//! Disabled-path smoke for the telemetry layer, in its own test binary so
//! nothing else in the process flips the global enablement state.
//!
//! With recording off, concurrent counter adds, histogram records, span
//! guards, and snapshot folds must all be safe no-ops: no panics, no
//! recorded values, and well-formed (empty) snapshots. This is the
//! contract the near-zero-overhead claim rests on — the disabled hot path
//! is one relaxed load and nothing else observable.

use midas_core::telemetry;

midas_core::counter!(SMOKE_EVENTS, "smoke.events");
midas_core::histogram!(SMOKE_NS, "smoke.ns");

#[test]
fn disabled_recording_is_a_concurrent_no_op() {
    // The lanes in scripts/check.sh run some suites with MIDAS_TELEMETRY /
    // MIDAS_TRACE exported; the disabled-path contract is untestable then.
    if telemetry::enabled() {
        eprintln!("skipped: telemetry forced on via the environment");
        return;
    }
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for i in 0..20_000u64 {
                    SMOKE_EVENTS.add(i % 3);
                    SMOKE_EVENTS.inc();
                    SMOKE_NS.record(i);
                    let _guard = telemetry::span("smoke.span", &SMOKE_NS);
                    if i % 4096 == 0 {
                        let _ = telemetry::snapshot();
                    }
                }
            });
        }
    });
    assert!(!telemetry::enabled(), "nothing here may enable recording");
    assert_eq!(SMOKE_EVENTS.value(), 0, "disabled adds must not record");
    assert_eq!(SMOKE_NS.count(), 0, "disabled records must not count");
    assert_eq!(SMOKE_NS.sum(), 0);
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("smoke.events"), 0);
    if let Some(h) = snap.histogram("smoke.ns") {
        assert_eq!(h.count, 0, "disabled histogram must stay empty");
    }
}
