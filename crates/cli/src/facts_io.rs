//! Reading and writing the CLI's TSV file formats.
//!
//! * facts / gold: `url \t subject \t predicate \t object`
//! * kb: `subject \t predicate \t object` (delegates to `midas_kb::io`)
//!
//! Two ingestion modes: [`read_facts`] fails fast on the first malformed
//! record (the historical behaviour), [`read_facts_lenient`] quarantines
//! malformed records as structured [`SourceFault`]s and keeps going.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::args::CliError;
use midas_core::{faultinject, FaultCause, SourceFacts, SourceFault, Stage};
use midas_extract::GoldSlice;
use midas_kb::{Fact, Interner, KnowledgeBase, Symbol};
use midas_weburl::SourceUrl;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Reads a 4-column facts file into per-source fact sets.
pub fn read_facts<R: BufRead>(r: R, terms: &mut Interner) -> Result<Vec<SourceFacts>, CliError> {
    let mut by_url: BTreeMap<SourceUrl, Vec<Fact>> = BTreeMap::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let trimmed = line.trim_end_matches('\r');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let (url, s, p, o) = match (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) {
            (Some(u), Some(s), Some(p), Some(o), None) => (u, s, p, o),
            _ => {
                return Err(CliError::Data(format!(
                "line {lineno}: expected 4 tab-separated fields (url, subject, predicate, object)"
            )))
            }
        };
        let url =
            SourceUrl::parse(url).map_err(|e| CliError::Data(format!("line {lineno}: {e}")))?;
        by_url
            .entry(url)
            .or_default()
            .push(Fact::intern(terms, s, p, o));
    }
    Ok(by_url
        .into_iter()
        .map(|(url, facts)| SourceFacts::new(url, facts))
        .collect())
}

/// Reads a 4-column facts file, quarantining malformed records instead of
/// aborting. I/O errors still fail the call — an unreadable file is an
/// operator problem, not a data problem.
///
/// A malformed line drops only that line (the rest of its source survives);
/// the returned [`SourceFault`] carries `file`/line context pointing at the
/// offending record. After reading, the installed fault-injection plan (if
/// any) is consulted once per source in sorted order: a targeted source is
/// dropped whole as an injected parse fault whose `file:line` context points
/// at the source's first record in the input — so when several sources fault
/// in one round, each summary line still names where *that* source came
/// from, rather than collapsing to a shared context-free entry.
pub fn read_facts_lenient<R: BufRead>(
    r: R,
    terms: &mut Interner,
    file: &str,
) -> Result<(Vec<SourceFacts>, Vec<SourceFault>), CliError> {
    // Per source: the 1-based line it first appeared on, plus its facts.
    let mut by_url: BTreeMap<SourceUrl, (u64, Vec<Fact>)> = BTreeMap::new();
    let mut faults = Vec::new();
    let mut parse_fault = |source: String, lineno: u64, message: String, facts_seen: usize| {
        faults.push(SourceFault {
            source,
            stage: Stage::Read,
            cause: FaultCause::Parse {
                file: file.to_owned(),
                line: lineno,
                message,
            },
            facts_seen,
        });
    };
    for (i, line) in r.lines().enumerate() {
        let lineno = (i + 1) as u64;
        let line = line?;
        let trimmed = line.trim_end_matches('\r');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let (url, s, p, o) = match (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) {
            (Some(u), Some(s), Some(p), Some(o), None) => (u, s, p, o),
            _ => {
                parse_fault(
                    file.to_owned(),
                    lineno,
                    "expected 4 tab-separated fields (url, subject, predicate, object)".to_owned(),
                    0,
                );
                continue;
            }
        };
        match SourceUrl::parse(url) {
            Ok(url) => by_url
                .entry(url)
                .or_insert_with(|| (lineno, Vec::new()))
                .1
                .push(Fact::intern(terms, s, p, o)),
            Err(e) => parse_fault(url.to_owned(), lineno, e.to_string(), 0),
        }
    }
    let mut sources = Vec::with_capacity(by_url.len());
    for (index, (url, (first_line, facts))) in by_url.into_iter().enumerate() {
        if faultinject::should_fail_parse(url.as_str(), index) {
            parse_fault(
                url.as_str().to_owned(),
                first_line,
                "injected parse failure".to_owned(),
                facts.len(),
            );
            continue;
        }
        sources.push(SourceFacts::new(url, facts));
    }
    Ok((sources, faults))
}

/// Writes per-source facts as a 4-column TSV.
pub fn write_facts<W: Write>(
    mut w: W,
    terms: &Interner,
    sources: &[SourceFacts],
) -> Result<(), CliError> {
    for src in sources {
        for f in &src.facts {
            writeln!(
                w,
                "{}\t{}\t{}\t{}",
                src.url,
                terms.resolve(f.subject),
                terms.resolve(f.predicate),
                terms.resolve(f.object)
            )?;
        }
    }
    Ok(())
}

/// Reads a 3-column knowledge-base TSV.
pub fn read_kb<R: BufRead>(r: R, terms: &mut Interner) -> Result<KnowledgeBase, CliError> {
    let facts = midas_kb::io::read_tsv(r, terms).map_err(|e| CliError::Data(e.to_string()))?;
    Ok(facts.into_iter().collect())
}

/// Writes a knowledge base as 3-column TSV.
pub fn write_kb<W: Write>(w: W, terms: &Interner, kb: &KnowledgeBase) -> Result<(), CliError> {
    midas_kb::io::write_tsv(w, terms, kb.iter()).map_err(|e| CliError::Data(e.to_string()))
}

/// Reads a 3-column gold file (`url \t slice_id \t entity`): each distinct
/// `(url, slice_id)` pair forms one gold slice whose entity extent is the
/// set of entities listed under it. Several slices may share a URL.
pub fn read_gold<R: BufRead>(r: R, terms: &mut Interner) -> Result<Vec<GoldSlice>, CliError> {
    let mut groups: BTreeMap<(SourceUrl, String), Vec<Symbol>> = BTreeMap::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let trimmed = line.trim_end_matches('\r');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let (url, slice_id, entity) =
            match (fields.next(), fields.next(), fields.next(), fields.next()) {
                (Some(u), Some(s), Some(e), None) => (u, s, e),
                _ => {
                    return Err(CliError::Data(format!(
                        "line {lineno}: expected 3 tab-separated fields (url, slice_id, entity)"
                    )))
                }
            };
        let url =
            SourceUrl::parse(url).map_err(|e| CliError::Data(format!("line {lineno}: {e}")))?;
        groups
            .entry((url, slice_id.to_owned()))
            .or_default()
            .push(terms.intern(entity));
    }
    Ok(groups
        .into_iter()
        .map(|((source, slice_id), mut entities)| {
            entities.sort_unstable();
            entities.dedup();
            GoldSlice {
                description: format!("gold slice {slice_id} at {source}"),
                source,
                properties: vec![],
                entities,
            }
        })
        .collect())
}

/// Writes gold slices in the 3-column layout (`url \t slice_id \t entity`).
pub fn write_gold<W: Write>(
    mut w: W,
    terms: &Interner,
    gold: &[GoldSlice],
) -> Result<(), CliError> {
    for (i, g) in gold.iter().enumerate() {
        for &e in &g.entities {
            writeln!(w, "{}\tgold_{i}\t{}", g.source, terms.resolve(e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_round_trip() {
        let input =
            "http://a.com/x\te1\tp\tv1\nhttp://a.com/x\te2\tp\tv2\nhttp://b.com\te3\tq\tv3\n";
        let mut terms = Interner::new();
        let sources = read_facts(input.as_bytes(), &mut terms).unwrap();
        assert_eq!(sources.len(), 2);
        let mut out = Vec::new();
        write_facts(&mut out, &terms, &sources).unwrap();
        let mut terms2 = Interner::new();
        let back = read_facts(&out[..], &mut terms2).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.iter().map(|s| s.len()).sum::<usize>(), 3);
    }

    #[test]
    fn facts_reject_bad_lines() {
        let mut terms = Interner::new();
        assert!(read_facts(&b"only\tthree\tfields\n"[..], &mut terms).is_err());
        assert!(read_facts(&b"not-a-url\ts\tp\to\n"[..], &mut terms).is_err());
    }

    #[test]
    fn lenient_read_quarantines_bad_lines_and_keeps_good_ones() {
        // Line 2 has too few fields, line 4 has a bad URL; lines 1/3/5 are
        // good. Both bad lines would abort the strict reader.
        let input = "http://a.com/x\te1\tp\tv1\n\
                     only\tthree\tfields\n\
                     http://a.com/x\te2\tp\tv2\n\
                     not-a-url\ts\tp\to\n\
                     http://b.com\te3\tq\tv3\n";
        let mut terms = Interner::new();
        assert!(read_facts(input.as_bytes(), &mut terms).is_err());
        let (sources, faults) =
            read_facts_lenient(input.as_bytes(), &mut terms, "facts.tsv").unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources.iter().map(|s| s.len()).sum::<usize>(), 3);
        assert_eq!(faults.len(), 2);
        for fault in &faults {
            assert_eq!(fault.stage, Stage::Read);
            assert_eq!(fault.cause.tag(), "parse");
        }
        match &faults[0].cause {
            FaultCause::Parse { file, line, .. } => {
                assert_eq!(file, "facts.tsv");
                assert_eq!(*line, 2);
            }
            other => panic!("unexpected cause {other:?}"),
        }
        assert_eq!(
            faults[0].source, "facts.tsv",
            "field-count fault has no URL"
        );
        assert_eq!(
            faults[1].source, "not-a-url",
            "URL fault names the raw text"
        );
    }

    #[test]
    fn injected_faults_keep_per_source_line_context() {
        // Two sources injected to fail in the same round must each carry the
        // line their own first record sits on — not a shared context-free
        // entry (the old behavior recorded line 0 for every injected fault).
        let input = "http://a.com/x\te1\tp\tv1\n\
                     http://b.com/y\te2\tp\tv2\n\
                     http://c.com/z\te3\tp\tv3\n";
        let plan = midas_core::FaultPlan::parse("parse@a.com/x,parse@c.com/z").unwrap();
        let mut terms = Interner::new();
        faultinject::install(plan);
        let result = read_facts_lenient(input.as_bytes(), &mut terms, "facts.tsv");
        faultinject::clear();
        let (sources, faults) = result.unwrap();
        assert_eq!(sources.len(), 1);
        assert_eq!(faults.len(), 2);
        let lines: Vec<u64> = faults
            .iter()
            .map(|f| match &f.cause {
                FaultCause::Parse { file, line, .. } => {
                    assert_eq!(file, "facts.tsv");
                    *line
                }
                other => panic!("unexpected cause {other:?}"),
            })
            .collect();
        assert_eq!(lines, [1, 3], "each fault names its own source's line");
    }

    #[test]
    fn lenient_read_of_clean_input_matches_strict() {
        let input = "http://a.com/x\te1\tp\tv1\nhttp://b.com\te2\tq\tv2\n";
        let mut terms = Interner::new();
        let strict = read_facts(input.as_bytes(), &mut terms).unwrap();
        let mut terms2 = Interner::new();
        let (lenient, faults) =
            read_facts_lenient(input.as_bytes(), &mut terms2, "facts.tsv").unwrap();
        assert!(faults.is_empty());
        assert_eq!(strict.len(), lenient.len());
        for (a, b) in strict.iter().zip(&lenient) {
            assert_eq!(a.url, b.url);
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let input = "# comment\n\nhttp://a.com/x\te\tp\tv\n";
        let mut terms = Interner::new();
        let sources = read_facts(input.as_bytes(), &mut terms).unwrap();
        assert_eq!(sources.len(), 1);
    }

    #[test]
    fn gold_groups_by_url_and_slice_id() {
        let input = "http://a.com/x\tg0\te1\nhttp://a.com/x\tg0\te2\nhttp://a.com/x\tg1\te3\nhttp://b.com\tg0\te4\n";
        let mut terms = Interner::new();
        let gold = read_gold(input.as_bytes(), &mut terms).unwrap();
        assert_eq!(gold.len(), 3, "two slices at a.com/x, one at b.com");
        assert_eq!(gold[0].entities.len(), 2);
    }

    #[test]
    fn gold_round_trip() {
        let mut terms = Interner::new();
        let gold = vec![GoldSlice {
            source: SourceUrl::parse("http://a.com/x").unwrap(),
            properties: vec![],
            entities: vec![terms.intern("e1"), terms.intern("e2")],
            description: "g".into(),
        }];
        let mut buf = Vec::new();
        write_gold(&mut buf, &terms, &gold).unwrap();
        let mut terms2 = Interner::new();
        let back = read_gold(&buf[..], &mut terms2).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].entities.len(), 2);
    }

    #[test]
    fn kb_round_trip() {
        let mut terms = Interner::new();
        let kb: KnowledgeBase = vec![
            Fact::intern(&mut terms, "a", "p", "1"),
            Fact::intern(&mut terms, "b", "q", "2"),
        ]
        .into_iter()
        .collect();
        let mut out = Vec::new();
        write_kb(&mut out, &terms, &kb).unwrap();
        let mut terms2 = Interner::new();
        let back = read_kb(&out[..], &mut terms2).unwrap();
        assert_eq!(back.len(), 2);
    }
}
