//! # midas-cli — the `midas` command-line tool
//!
//! Drives slice discovery from the shell over simple TSV files:
//!
//! ```text
//! midas discover --facts facts.tsv [--kb kb.tsv] [--algorithm midas]
//!                [--threads 4] [--top 20] [--fp 10 --fc 0.001 --fd 0.01 --fv 0.1]
//!                [--csv] [--explain] [--snapshot-cache DIR]
//!                [--snapshot-cache-max-bytes N]
//! midas stats    --facts facts.tsv
//! midas generate --dataset synthetic|reverb-slim|nell-slim|kvault
//!                [--scale 0.01] [--seed 42] --out DIR
//! midas eval     --facts facts.tsv --gold gold.tsv [--kb kb.tsv] [--algorithm midas]
//! midas augment  --facts facts.tsv --kb kb.tsv [--rounds N] [--threads 4]
//!                [--snapshot-cache DIR] [--resume]
//! ```
//!
//! The facts file is 4-column TSV: `url \t subject \t predicate \t object`.
//! The KB file is 3-column TSV (`subject \t predicate \t object`). The gold
//! file is 3-column TSV (`url \t slice_id \t entity`); each distinct
//! `(url, slice_id)` pair forms one gold slice.
//!
//! All functionality lives in this library crate so it is unit-testable;
//! `main.rs` is a thin shim.

#![warn(missing_docs)]

pub mod args;
pub mod cache_dir;
pub mod checkpoint;
pub mod commands;
pub mod facts_io;
pub mod snapshot_cache;

pub use args::{CliError, Command, ParsedArgs};

/// Entry point shared by the binary and the tests: parses `argv` (without
/// the program name) and runs the command, writing to `out`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    // Pin the kernel table here, on the main thread: a bad MIDAS_KERNEL
    // value must be a startup error, not a panic inside a fault-isolated
    // detection worker (where it would quarantine every source instead).
    midas_core::extent::kernels::try_active().map_err(CliError::Usage)?;
    let parsed = ParsedArgs::parse(argv)?;
    commands::dispatch(parsed, out)
}
