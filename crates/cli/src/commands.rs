//! Subcommand implementations.

use crate::args::{Algorithm, CliError, Command, ParsedArgs, RunLimits};
use crate::checkpoint;
use crate::facts_io;
use crate::snapshot_cache;
use midas_baselines::{AggCluster, Greedy, Naive};
use midas_core::telemetry;
use midas_core::{
    faultinject, Augmenter, CostModel, DiscoveredSlice, FactTable, FaultPlan, MidasConfig,
    ProfitCtx, Quarantine, SourceBudget, SourceFacts,
};
use midas_eval::runner::{
    continue_augmentation, merge_by_domain, run_augmentation, run_detector_per_source_budgeted,
    run_midas_framework, run_midas_framework_with_tables, AugmentationRound,
};
use midas_eval::{bootstrap_prf, match_to_gold, Table};
use midas_kb::{DatasetStats, Interner, KnowledgeBase};
use midas_weburl::{SourceUrl, UrlPattern};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Runs a parsed command, writing human output to `out`.
///
/// Telemetry is strictly additive: when `--metrics-json`/`--verbose-stats`
/// are absent (and `MIDAS_TRACE` is unset) the command's output bytes are
/// identical to a build without this layer. When present, the metrics table
/// and JSON snapshot are emitted *after* the command's normal output (and
/// after its trailing quarantine/notes blocks), as `#` comments in CSV mode.
pub fn dispatch(parsed: ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    install_fault_plan_from_env()?;
    let telemetry_args = parsed.telemetry;
    if telemetry_args.any() {
        telemetry::enable();
    }
    let csv_mode = matches!(parsed.command, Command::Discover { csv: true, .. });
    run_command(parsed.command, out)?;
    if telemetry_args.verbose_stats {
        let table = telemetry::render_table(&telemetry::snapshot());
        if csv_mode {
            for line in table.lines() {
                writeln!(out, "# {line}")?;
            }
        } else {
            write!(out, "\n{table}")?;
        }
    }
    if let Some(path) = &telemetry_args.metrics_json {
        telemetry::write_json(path).map_err(CliError::Io)?;
    }
    telemetry::flush_trace();
    Ok(())
}

fn run_command(command: Command, out: &mut dyn Write) -> Result<(), CliError> {
    match command {
        Command::Discover {
            facts,
            kb,
            algorithm,
            threads,
            top,
            cost,
            csv,
            explain,
            snapshot_cache,
            snapshot_cache_max_bytes,
            limits,
        } => discover(
            &facts,
            kb.as_deref(),
            algorithm,
            threads,
            top,
            cost,
            csv,
            explain,
            CacheOptions {
                dir: snapshot_cache.as_deref(),
                max_bytes: snapshot_cache_max_bytes,
            },
            limits,
            out,
        ),
        Command::Augment {
            facts,
            kb,
            rounds,
            threads,
            cost,
            snapshot_cache,
            snapshot_cache_max_bytes,
            resume,
            limits,
        } => augment(
            &facts,
            kb.as_deref(),
            rounds,
            threads,
            cost,
            CacheOptions {
                dir: snapshot_cache.as_deref(),
                max_bytes: snapshot_cache_max_bytes,
            },
            resume,
            limits,
            out,
        ),
        Command::Stats { facts } => stats(&facts, out),
        Command::Generate {
            dataset,
            scale,
            seed,
            out: dir,
        } => generate(&dataset, scale, seed, &dir, out),
        Command::Eval {
            facts,
            gold,
            kb,
            algorithm,
            threads,
            snapshot_cache,
            snapshot_cache_max_bytes,
            limits,
        } => eval(
            &facts,
            &gold,
            kb.as_deref(),
            algorithm,
            threads,
            CacheOptions {
                dir: snapshot_cache.as_deref(),
                max_bytes: snapshot_cache_max_bytes,
            },
            limits,
            out,
        ),
    }
}

/// Installs the fault-injection plan named by the `MIDAS_FAULTINJECT`
/// environment variable, if set. Leaves any programmatically installed plan
/// alone when the variable is absent (so in-process tests keep control).
fn install_fault_plan_from_env() -> Result<(), CliError> {
    if let Ok(spec) = std::env::var("MIDAS_FAULTINJECT") {
        let plan = FaultPlan::parse(&spec)
            .map_err(|e| CliError::Usage(format!("MIDAS_FAULTINJECT: {e}")))?;
        faultinject::install(plan);
    }
    Ok(())
}

/// Stable algorithm name for cache keys (matches the `--algorithm` value).
fn algorithm_name(a: Algorithm) -> &'static str {
    match a {
        Algorithm::Midas => "midas",
        Algorithm::Greedy => "greedy",
        Algorithm::AggCluster => "aggcluster",
        Algorithm::Naive => "naive",
    }
}

/// `--snapshot-cache` options bundled for plumbing through the commands.
pub struct CacheOptions<'a> {
    /// Cache directory (`--snapshot-cache`), if caching was requested.
    pub dir: Option<&'a str>,
    /// Total `.snap` size cap (`--snapshot-cache-max-bytes`).
    pub max_bytes: Option<u64>,
}

/// Translates CLI limits into the core per-source budget.
fn budget_from(limits: RunLimits) -> SourceBudget {
    let mut budget = SourceBudget::unlimited();
    if let Some(n) = limits.max_source_facts {
        budget = budget.with_max_facts(n);
    }
    if let Some(n) = limits.max_source_nodes {
        budget = budget.with_max_nodes(n);
    }
    if let Some(ms) = limits.source_deadline_ms {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    budget
}

/// Writes snapshot-cache activity notes: `#`-comment lines in CSV mode,
/// plain trailing lines otherwise. Notes always come after the result
/// tables, so cached and uncached runs differ only in this trailer.
fn write_notes(out: &mut dyn Write, notes: &[String], csv: bool) -> Result<(), CliError> {
    for n in notes {
        if csv {
            writeln!(out, "# {n}")?;
        } else {
            writeln!(out, "{n}")?;
        }
    }
    Ok(())
}

/// Writes the quarantine summary: as a trailing block in human mode, as
/// `#`-comment lines in CSV mode (so the CSV body stays machine-parseable).
fn write_quarantine(
    out: &mut dyn Write,
    quarantine: &Quarantine,
    csv: bool,
) -> Result<(), CliError> {
    if quarantine.is_empty() {
        return Ok(());
    }
    let rendered = quarantine.render();
    if csv {
        for line in rendered.lines() {
            writeln!(out, "# {line}")?;
        }
    } else {
        write!(out, "\n{rendered}")?;
    }
    Ok(())
}

/// Runs the selected algorithm over a corpus, returning ranked slices.
/// Equivalent to [`run_algorithm_budgeted`] with an unlimited budget,
/// discarding the (then necessarily empty, bar panics) quarantine.
pub fn run_algorithm(
    algorithm: Algorithm,
    cost: CostModel,
    sources: &[SourceFacts],
    kb: &KnowledgeBase,
    threads: usize,
) -> Vec<DiscoveredSlice> {
    run_algorithm_budgeted(
        algorithm,
        cost,
        sources,
        kb,
        threads,
        SourceBudget::unlimited(),
        None,
        None,
    )
    .0
}

/// Runs the selected algorithm under a per-source budget, returning ranked
/// slices plus the quarantine of sources dropped during the run.
/// `stream_window` bounds how many sources a framework round admits to its
/// pool at once (`None` = unbounded); it only affects peak memory, never the
/// result. `tables` carries prebuilt round-0 fact tables from a snapshot
/// cache; only the MIDAS framework consumes them (the baselines re-merge
/// sources by domain, so per-page tables cannot be reused).
#[allow(clippy::too_many_arguments)]
pub fn run_algorithm_budgeted(
    algorithm: Algorithm,
    cost: CostModel,
    sources: &[SourceFacts],
    kb: &KnowledgeBase,
    threads: usize,
    budget: SourceBudget,
    stream_window: Option<usize>,
    tables: Option<&BTreeMap<SourceUrl, FactTable>>,
) -> (Vec<DiscoveredSlice>, Quarantine) {
    match algorithm {
        Algorithm::Midas => {
            // `--threads` drives both layers: source-level framework rounds
            // and level-wise hierarchy construction inside each detect call.
            let cfg = MidasConfig::default()
                .with_cost(cost)
                .with_threads(threads)
                .with_budget(budget)
                .with_stream_window(stream_window);
            let run = match tables {
                Some(t) => run_midas_framework_with_tables(&cfg, sources.to_vec(), kb, threads, t),
                None => run_midas_framework(&cfg, sources.to_vec(), kb, threads),
            };
            (run.slices, run.quarantine)
        }
        Algorithm::Greedy => {
            let merged = merge_by_domain(sources);
            let run = run_detector_per_source_budgeted(&Greedy::new(cost), &merged, kb, budget);
            (run.slices, run.quarantine)
        }
        Algorithm::AggCluster => {
            let merged = merge_by_domain(sources);
            let run = run_detector_per_source_budgeted(&AggCluster::new(cost), &merged, kb, budget);
            (run.slices, run.quarantine)
        }
        Algorithm::Naive => {
            let merged = merge_by_domain(sources);
            let mut run = run_detector_per_source_budgeted(&Naive::new(cost), &merged, kb, budget);
            run.slices
                .sort_by_key(|s| std::cmp::Reverse(s.num_new_facts));
            (run.slices, run.quarantine)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn discover(
    facts_path: &str,
    kb_path: Option<&str>,
    algorithm: Algorithm,
    threads: usize,
    top: usize,
    (fp, fc, fd, fv): (f64, f64, f64, f64),
    csv: bool,
    explain: bool,
    cache: CacheOptions<'_>,
    limits: RunLimits,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let loaded = snapshot_cache::load_inputs_cached(
        facts_path,
        kb_path,
        limits.lenient,
        cache.dir,
        cache.max_bytes,
    )?;
    let (mut terms, sources, kb, read_faults) =
        (loaded.terms, loaded.sources, loaded.kb, loaded.read_faults);
    let mut notes = loaded.notes;
    let cost = CostModel { fp, fc, fd, fv };

    // The slice report itself is cacheable when nothing can drop a source:
    // budget limits quarantine, and a report saved from a budgeted run would
    // replay those drops into unbudgeted runs (and vice versa).
    let unbudgeted = limits.max_source_facts.is_none()
        && limits.max_source_nodes.is_none()
        && limits.source_deadline_ms.is_none();
    let slice_key = loaded.session.as_ref().filter(|_| unbudgeted).map(|s| {
        (
            snapshot_cache::slices_key(s.corpus_key, algorithm_name(algorithm), &cost),
            s,
        )
    });
    let cached_slices = slice_key.as_ref().and_then(|(key, session)| {
        snapshot_cache::load_cached_slices(session, *key, &mut terms, &mut notes)
    });

    let (slices, run_quarantine) = match cached_slices {
        Some(slices) => (slices, Quarantine::new()),
        None => {
            let (slices, run_quarantine) = run_algorithm_budgeted(
                algorithm,
                cost,
                &sources,
                &kb,
                threads,
                budget_from(limits),
                limits.stream_window,
                loaded.tables.as_ref(),
            );
            if let Some((key, session)) = &slice_key {
                // Only a complete report is worth replaying: a quarantined
                // source means slices are missing that a healthy rerun
                // would find.
                if run_quarantine.is_empty() {
                    snapshot_cache::store_slices(session, *key, &terms, &slices, &mut notes);
                }
            }
            (slices, run_quarantine)
        }
    };
    let mut quarantine = Quarantine::new();
    for fault in read_faults {
        quarantine.push(fault);
    }
    quarantine.merge(run_quarantine);

    let mut table = Table::new(
        "Discovered web source slices",
        &[
            "#",
            "slice",
            "source",
            "pattern",
            "entities",
            "new/total",
            "profit",
        ],
    );
    for (i, s) in slices.iter().take(top).enumerate() {
        let pages: Vec<_> = sources
            .iter()
            .filter(|src| {
                s.source.contains(&src.url)
                    && src
                        .facts
                        .iter()
                        .any(|f| s.entities.binary_search(&f.subject).is_ok())
            })
            .map(|src| src.url.clone())
            .collect();
        let pattern = UrlPattern::summarise(&pages)
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".to_owned());
        let desc = s.describe(&terms);
        let desc = desc.split(" @ ").next().unwrap_or_default().to_owned();
        table.row(&[
            (i + 1).to_string(),
            desc,
            s.source.to_string(),
            pattern,
            s.entities.len().to_string(),
            format!("{}/{}", s.num_new_facts, s.num_facts),
            format!("{:.3}", s.profit),
        ]);
    }
    if csv {
        write!(out, "{}", table.to_csv())?;
    } else {
        write!(out, "{}", table.render())?;
    }

    if explain {
        writeln!(out, "\nProfit breakdowns:")?;
        for (i, s) in slices.iter().take(top).enumerate() {
            // Rebuild the slice's context against its own source scope.
            let scope: Vec<SourceFacts> = sources
                .iter()
                .filter(|src| s.source.contains(&src.url))
                .cloned()
                .collect();
            let merged = SourceFacts::merge(s.source.clone(), scope);
            let table_w = FactTable::build(&merged, &kb);
            let ctx = ProfitCtx::new(&table_w, cost);
            let ids: Vec<u32> = s
                .entities
                .iter()
                .filter_map(|&e| table_w.entity(e))
                .collect();
            let extent = midas_core::ExtentSet::from_unsorted(table_w.num_entities() as u32, ids);
            writeln!(out, "  #{}: {}", i + 1, ctx.breakdown(&extent))?;
        }
    }
    write_quarantine(out, &quarantine, csv)?;
    write_notes(out, &notes, csv)?;
    Ok(())
}

/// Drives the incremental augmentation loop over the corpus and prints one
/// row per round: what was accepted, what it added, and how much of the
/// round's detection work was replayed from the warm cache.
/// Replays a checkpointed round trace into a fresh [`Augmenter`] and
/// continues the loop, checkpointing each newly completed round. Returns
/// the full trace (replayed prefix + new rounds).
///
/// Replay applies the recorded accepts for all but the last replayed round,
/// then re-runs the last round's suggest — a single full recompute that the
/// incremental engine's cold-restart equivalence guarantees matches the
/// original round, and that leaves the round cache in exactly the state the
/// uninterrupted run had. Continuing rounds therefore reuse cached tasks
/// identically, making the resumed report bit-identical (modulo wall-clock
/// timings; see `MIDAS_FIXED_TIMING`). Any divergence between checkpoint
/// and replay fails closed: the checkpoint is quarantined and the run
/// restarts cold.
#[allow(clippy::too_many_arguments)]
fn augment_with_checkpoints(
    session: &snapshot_cache::CacheSession,
    resume: bool,
    config: &MidasConfig,
    sources: Vec<SourceFacts>,
    kb: KnowledgeBase,
    threads: usize,
    rounds: usize,
    terms: &mut Interner,
    notes: &mut Vec<String>,
) -> Result<(Vec<AugmentationRound>, Augmenter), CliError> {
    let key = checkpoint::checkpoint_key(session.corpus_key, &config.cost, &config.budget);
    let name = checkpoint::checkpoint_name(key);
    let path = session.dir.entry_path(&name);

    let mut replayed: Vec<AugmentationRound> = Vec::new();
    if resume {
        let mut failure = None;
        if let Ok(_read) = session.dir.shared() {
            if path.exists() {
                match checkpoint::load_rounds(&path, key, terms) {
                    Ok(trace) => replayed = trace,
                    Err(e) => failure = Some(e.to_string()),
                }
            } else {
                notes.push("resume: no checkpoint found; starting from round 1".to_owned());
            }
        }
        if let Some(reason) = failure {
            let quarantined = session
                .dir
                .exclusive()
                .and_then(|_write| session.dir.quarantine(&name, &reason));
            match quarantined {
                Ok(dest) => notes.push(format!(
                    "resume: quarantined checkpoint {} ({reason}); starting from round 1",
                    dest.display()
                )),
                Err(e) => notes.push(format!(
                    "resume: ignoring checkpoint {name} ({reason}); quarantine failed: {e}"
                )),
            }
        }
        replayed.truncate(rounds);
        // Each round records the per-source deadline it ran under. A resume
        // under a different --source-deadline-ms must not replay: deadline
        // quarantines are wall-clock-dependent, so the recorded rounds only
        // reproduce under the budget that produced them. The checkpoint is
        // not at fault — leave it in place and restart cold (a later resume
        // with the original budget can still use it).
        let current_ms = config.budget.deadline.map(|d| d.as_millis() as u64);
        if replayed.iter().any(|r| r.budget_ms != current_ms) {
            notes.push(
                "resume: checkpoint was recorded under a different --source-deadline-ms; \
                 restarting cold"
                    .to_owned(),
            );
            replayed.clear();
        }
    }

    // Replay, keeping the inputs for a cold restart should the checkpoint
    // turn out not to match this corpus (a divergence is a bug or tampered
    // file — fail closed, never trust its rounds).
    let spare = (!replayed.is_empty()).then(|| (sources.clone(), kb.clone()));
    let mut aug = Augmenter::new(config.clone(), sources, kb).with_threads(threads);
    let mut diverged = None;
    let finished = match replayed.last() {
        None => false,
        Some(last) => {
            replayed.len() >= rounds
                || last.accepted.is_none()
                || matches!(&last.accepted, Some(s) if s.facts_added == 0)
        }
    };
    for (i, r) in replayed.iter().enumerate() {
        let Some(step) = &r.accepted else { break };
        let is_last = i + 1 == replayed.len();
        if is_last && !finished {
            // Re-run the last round's suggest so the round cache ends up in
            // the state the original round left it in (and verify it still
            // picks the recorded slice).
            let report = aug.suggest_report();
            match report.slices.iter().find(|s| s.profit > 0.0) {
                Some(best) if *best == step.slice => {}
                _ => {
                    diverged = Some(format!(
                        "round {}: replayed suggest no longer picks the recorded slice",
                        r.round
                    ));
                    break;
                }
            }
        }
        let applied = aug.accept(&step.slice);
        if applied.facts_added != step.facts_added || applied.kb_size != step.kb_size {
            diverged = Some(format!(
                "round {}: recorded +{} facts (kb {}), replay produced +{} (kb {})",
                r.round, step.facts_added, step.kb_size, applied.facts_added, applied.kb_size
            ));
            break;
        }
    }
    if let Some(reason) = diverged {
        let _ = session
            .dir
            .exclusive()
            .and_then(|_write| session.dir.quarantine(&name, &reason));
        notes.push(format!(
            "resume: checkpoint diverged ({reason}); quarantined, restarting cold"
        ));
        replayed.clear();
        let (sources, kb) = spare.unwrap_or_default();
        aug = Augmenter::new(config.clone(), sources, kb).with_threads(threads);
    }
    if !replayed.is_empty() {
        notes.push(format!(
            "resume: replayed {} checkpointed round(s)",
            replayed.len()
        ));
    }

    let mut trace = replayed;
    if !finished || trace.is_empty() {
        let start_round = trace.len() + 1;
        let mut ckpt_errors: Vec<String> = Vec::new();
        // The replayed prefix is compacted into the log's base once here;
        // each new round appends only its own encoding before the atomic
        // save, so checkpoint writes stay O(1) per round.
        let mut log = checkpoint::RoundLog::from_rounds(terms, &trace);
        let continued = {
            let trace_so_far = &mut trace;
            let errors = &mut ckpt_errors;
            let log = &mut log;
            continue_augmentation(&mut aug, start_round, rounds, |r| {
                trace_so_far.push(r.clone());
                log.append(terms, r);
                let saved = session.dir.exclusive().and_then(|_write| {
                    log.save(&path, key)?;
                    session.dir.touch(&name)
                });
                if let Err(e) = saved {
                    errors.push(format!("checkpoint write failed: {e}"));
                }
            })
        };
        drop(continued); // rounds were accumulated via the callback
        notes.extend(ckpt_errors);
    }
    Ok((trace, aug))
}

#[allow(clippy::too_many_arguments)]
fn augment(
    facts_path: &str,
    kb_path: Option<&str>,
    rounds: usize,
    threads: usize,
    (fp, fc, fd, fv): (f64, f64, f64, f64),
    cache: CacheOptions<'_>,
    resume: bool,
    limits: RunLimits,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    // The augmentation loop memoises its own per-round tables; the snapshot
    // cache still removes the cold-start parse on every warm invocation.
    let loaded = snapshot_cache::load_inputs_cached(
        facts_path,
        kb_path,
        limits.lenient,
        cache.dir,
        cache.max_bytes,
    )?;
    let (mut terms, sources, kb, read_faults) =
        (loaded.terms, loaded.sources, loaded.kb, loaded.read_faults);
    let mut notes = loaded.notes;
    let config = MidasConfig::default()
        .with_cost(CostModel { fp, fc, fd, fv })
        .with_threads(threads)
        .with_budget(budget_from(limits))
        .with_stream_window(limits.stream_window);
    let initial_kb = kb.len();

    // Checkpointing needs a cache session. Deadline-budgeted runs are
    // checkpointed too: each round records the budget it ran under, and a
    // resume replays only when the recorded budget matches the current one
    // (otherwise it restarts cold — see `augment_with_checkpoints`).
    let checkpointing = loaded.session.is_some();
    let (trace, aug) = match (&loaded.session, checkpointing) {
        (Some(session), true) => augment_with_checkpoints(
            session, resume, &config, sources, kb, threads, rounds, &mut terms, &mut notes,
        )?,
        _ => {
            if resume {
                notes.push("resume unavailable: no usable snapshot cache; running cold".to_owned());
            }
            run_augmentation(&config, sources, kb, threads, rounds)
        }
    };
    // Wall-clock columns can never reproduce across runs; MIDAS_FIXED_TIMING
    // pins them so resume-vs-rerun comparisons are pure byte equality.
    let fixed_timing = std::env::var_os("MIDAS_FIXED_TIMING").is_some();

    let mut table = Table::new(
        "Augmentation rounds",
        &[
            "round",
            "accepted slice",
            "source",
            "+facts",
            "kb size",
            "suggest ms",
            "detects",
            "reused",
        ],
    );
    for r in &trace {
        let (desc, source, added) = match &r.accepted {
            Some(step) => {
                let desc = step.slice.describe(&terms);
                let desc = desc.split(" @ ").next().unwrap_or_default().to_owned();
                (
                    desc,
                    step.slice.source.to_string(),
                    step.facts_added.to_string(),
                )
            }
            None => ("(saturated)".to_owned(), "-".to_owned(), "-".to_owned()),
        };
        table.row(&[
            r.round.to_string(),
            desc,
            source,
            added,
            r.kb_size.to_string(),
            if fixed_timing {
                "0.0".to_owned()
            } else {
                format!("{:.1}", r.suggest_time.as_secs_f64() * 1e3)
            },
            r.detect_calls.to_string(),
            r.reused_tasks.to_string(),
        ]);
    }
    write!(out, "{}", table.render())?;
    writeln!(
        out,
        "\naccepted {} slices over {} rounds; knowledge base grew {} -> {} facts",
        aug.history().len(),
        trace.len(),
        initial_kb,
        aug.kb().len()
    )?;

    // Quarantined sources re-fault every round (injection and budgets are
    // deterministic), so the last round's quarantine is the loop's steady
    // state; earlier rounds' entries would only repeat it.
    let mut quarantine = Quarantine::new();
    for fault in read_faults {
        quarantine.push(fault);
    }
    if let Some(last) = trace.last() {
        quarantine.merge(last.quarantine.clone());
    }
    write_quarantine(out, &quarantine, false)?;
    write_notes(out, &notes, false)?;
    Ok(())
}

fn stats(facts_path: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let mut terms = Interner::new();
    let sources = facts_io::read_facts(BufReader::new(File::open(facts_path)?), &mut terms)?;
    let stats = DatasetStats::compute(sources.iter().flat_map(|s| {
        let url = s.url.as_str();
        s.facts.iter().map(move |&f| (f, url))
    }));
    let mut domains: Vec<String> = sources
        .iter()
        .map(|s| s.url.domain().as_str().to_owned())
        .collect();
    domains.sort();
    domains.dedup();
    writeln!(out, "facts:      {}", stats.num_facts)?;
    writeln!(out, "predicates: {}", stats.num_predicates)?;
    writeln!(out, "subjects:   {}", stats.num_subjects)?;
    writeln!(out, "pages:      {}", stats.num_urls)?;
    writeln!(out, "domains:    {}", domains.len())?;
    Ok(())
}

fn generate(
    dataset: &str,
    scale: f64,
    seed: u64,
    dir: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use midas_extract::{kvault, slim, synthetic};
    let ds = match dataset {
        "synthetic" => synthetic::generate(&synthetic::SyntheticConfig {
            seed,
            ..synthetic::SyntheticConfig::default()
        }),
        "reverb-slim" => slim::generate(&slim::SlimConfig::reverb(seed).with_scale(scale)),
        "nell-slim" => slim::generate(&slim::SlimConfig::nell(seed).with_scale(scale)),
        "kvault" => kvault::generate(&kvault::KVaultConfig { scale, seed }),
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset {other:?} (expected synthetic|reverb-slim|nell-slim|kvault)"
            )))
        }
    };
    std::fs::create_dir_all(dir)?;
    let path = |name: &str| Path::new(dir).join(name);
    facts_io::write_facts(
        BufWriter::new(File::create(path("facts.tsv"))?),
        &ds.terms,
        &ds.sources,
    )?;
    facts_io::write_kb(
        BufWriter::new(File::create(path("kb.tsv"))?),
        &ds.terms,
        &ds.kb,
    )?;
    facts_io::write_gold(
        BufWriter::new(File::create(path("gold.tsv"))?),
        &ds.terms,
        &ds.truth.gold,
    )?;
    writeln!(
        out,
        "wrote {} facts across {} sources, {} KB facts, {} gold slices to {dir}",
        ds.total_facts(),
        ds.sources.len(),
        ds.kb.len(),
        ds.truth.gold.len()
    )?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn eval(
    facts_path: &str,
    gold_path: &str,
    kb_path: Option<&str>,
    algorithm: Algorithm,
    threads: usize,
    cache: CacheOptions<'_>,
    limits: RunLimits,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    // Gold labels are interned *after* the corpus: entities present in the
    // facts resolve to their corpus symbols either way, so matching is
    // unaffected, and the snapshot stays a pure function of facts + kb.
    let loaded = snapshot_cache::load_inputs_cached(
        facts_path,
        kb_path,
        limits.lenient,
        cache.dir,
        cache.max_bytes,
    )?;
    let (mut terms, sources, kb, read_faults) =
        (loaded.terms, loaded.sources, loaded.kb, loaded.read_faults);
    let gold = facts_io::read_gold(BufReader::new(File::open(gold_path)?), &mut terms)?;
    let (ranked, run_quarantine) = run_algorithm_budgeted(
        algorithm,
        CostModel::default(),
        &sources,
        &kb,
        threads,
        budget_from(limits),
        limits.stream_window,
        loaded.tables.as_ref(),
    );
    let mut quarantine = Quarantine::new();
    for fault in read_faults {
        quarantine.push(fault);
    }
    quarantine.merge(run_quarantine);
    let slices: Vec<DiscoveredSlice> = ranked
        .into_iter()
        .filter(|s| s.profit > 0.0 || matches!(algorithm, Algorithm::Naive))
        .collect();
    let prf = match_to_gold(&slices, &gold);
    let (p_ci, r_ci, f_ci) = bootstrap_prf(&slices, &gold, 500, 0.95, 42);
    writeln!(out, "returned slices: {}", slices.len())?;
    writeln!(out, "gold slices:     {}", gold.len())?;
    writeln!(out, "quarantined:     {}", quarantine.len())?;
    writeln!(
        out,
        "precision: {:.3}  [{:.3}, {:.3}]",
        prf.precision, p_ci.lower, p_ci.upper
    )?;
    writeln!(
        out,
        "recall:    {:.3}  [{:.3}, {:.3}]",
        prf.recall, r_ci.lower, r_ci.upper
    )?;
    writeln!(
        out,
        "f-measure: {:.3}  [{:.3}, {:.3}]",
        prf.f_measure, f_ci.lower, f_ci.upper
    )?;
    write_quarantine(out, &quarantine, false)?;
    write_notes(out, &loaded.notes, false)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("midas_cli_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_then_discover_then_eval() {
        let dir = tmpdir("full");
        let dir_s = dir.to_str().unwrap();

        let mut out = Vec::new();
        run(
            &argv(&format!(
                "generate --dataset synthetic --seed 5 --out {dir_s}"
            )),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&out).contains("gold slices"));

        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {dir_s}/facts.tsv --kb {dir_s}/kb.tsv --top 5 --explain"
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("Discovered web source slices"));
        assert!(text.contains("Profit breakdowns"));
        assert!(
            text.contains("pred_"),
            "slice descriptions present:\n{text}"
        );

        let mut out = Vec::new();
        run(
            &argv(&format!(
                "eval --facts {dir_s}/facts.tsv --gold {dir_s}/gold.tsv --kb {dir_s}/kb.tsv"
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("precision: 1.000"), "eval output:\n{text}");
        assert!(text.contains("recall:    1.000"), "eval output:\n{text}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_command_counts() {
        let dir = tmpdir("stats");
        let facts = dir.join("facts.tsv");
        std::fs::write(
            &facts,
            "http://a.com/x\te1\tp\tv\nhttp://a.com/y\te2\tq\tw\n",
        )
        .unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!("stats --facts {}", facts.to_str().unwrap())),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("facts:      2"));
        assert!(text.contains("domains:    1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discover_csv_output() {
        let dir = tmpdir("csv");
        let facts = dir.join("facts.tsv");
        let mut content = String::new();
        for i in 0..8 {
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\ttype\tgolf\n"));
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\tholes\th{i}\n"));
        }
        std::fs::write(&facts, content).unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {} --fp 1 --csv",
                facts.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("#,slice,source"), "csv header:\n{text}");
        assert!(text.contains("type = golf"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn augment_runs_to_saturation() {
        let dir = tmpdir("augment");
        let facts = dir.join("facts.tsv");
        let mut content = String::new();
        for i in 0..8 {
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\ttype\tgolf\n"));
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\tholes\th{i}\n"));
        }
        std::fs::write(&facts, content).unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "augment --facts {} --fp 1 --rounds 5 --threads 2",
                facts.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("Augmentation rounds"), "output:\n{text}");
        assert!(text.contains("type = golf"), "round 1 accepts the slice");
        assert!(text.contains("(saturated)"), "loop reaches saturation");
        assert!(
            text.contains("accepted 1 slices over 2 rounds"),
            "output:\n{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn augment_resume_accepts_matching_deadline_budget() {
        let dir = tmpdir("augment_resume_deadline");
        let cache = dir.join("cache");
        let facts = dir.join("facts.tsv");
        let mut content = String::new();
        for i in 0..8 {
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\ttype\tgolf\n"));
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\tholes\th{i}\n"));
        }
        std::fs::write(&facts, content).unwrap();
        let base = format!(
            "augment --facts {} --fp 1 --rounds 5 --snapshot-cache {}",
            facts.to_str().unwrap(),
            cache.to_str().unwrap()
        );

        // A generous deadline quarantines nothing; the run must checkpoint.
        let mut out = Vec::new();
        run(
            &argv(&format!("{base} --source-deadline-ms 60000")),
            &mut out,
        )
        .unwrap();

        // Resuming under the same deadline replays the recorded rounds.
        let mut out = Vec::new();
        run(
            &argv(&format!("{base} --source-deadline-ms 60000 --resume")),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(
            text.contains("resume: replayed"),
            "matching budget must replay:\n{text}"
        );

        // Resuming under a different deadline restarts cold instead.
        let mut out = Vec::new();
        run(
            &argv(&format!("{base} --source-deadline-ms 120000 --resume")),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(
            text.contains("different --source-deadline-ms"),
            "budget mismatch must restart cold:\n{text}"
        );
        assert!(!text.contains("resume: replayed"), "output:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut out = Vec::new();
        let err = run(&argv("stats --facts /nonexistent/file.tsv"), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn lenient_discover_quarantines_bad_lines() {
        let dir = tmpdir("lenient");
        let facts = dir.join("facts.tsv");
        std::fs::write(
            &facts,
            "http://a.com/x\te1\tp\tv\nbroken line without tabs\nhttp://a.com/y\te2\tq\tw\n",
        )
        .unwrap();
        let facts_s = facts.to_str().unwrap();

        // Strict mode aborts on the malformed line.
        let mut out = Vec::new();
        let err = run(&argv(&format!("discover --facts {facts_s}")), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Data(_)), "strict mode fails: {err}");

        // Lenient mode completes and reports the quarantined record.
        let mut out = Vec::new();
        run(
            &argv(&format!("discover --facts {facts_s} --lenient")),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("Discovered web source slices"));
        assert!(text.contains("quarantined 1 source(s)"), "output:\n{text}");
        assert!(text.contains("parse error"), "output:\n{text}");
        assert!(text.contains(":2"), "fault points at line 2:\n{text}");

        // CSV mode turns the summary into comment lines.
        let mut out = Vec::new();
        run(
            &argv(&format!("discover --facts {facts_s} --lenient --csv")),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(
            text.lines()
                .any(|l| l.starts_with("# quarantined 1 source(s)")),
            "csv output:\n{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_flag_quarantines_oversized_sources() {
        let dir = tmpdir("budget");
        let facts = dir.join("facts.tsv");
        let mut content = String::from("http://small.com/x\te0\tp\tv\n");
        for i in 0..6 {
            content.push_str(&format!("http://big.com/page\tent{i}\ttype\tthing\n"));
        }
        std::fs::write(&facts, content).unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {} --max-source-facts 3",
                facts.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("quarantined"), "output:\n{text}");
        assert!(
            text.contains("big.com"),
            "the 6-fact source breaches the cap:\n{text}"
        );
        assert!(
            !text.contains("small.com/x —"),
            "the small source survives:\n{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_reports_quarantine_count() {
        let dir = tmpdir("evalq");
        let facts = dir.join("facts.tsv");
        let gold = dir.join("gold.tsv");
        std::fs::write(&facts, "http://a.com/x\te1\tp\tv\nnot a valid line\n").unwrap();
        std::fs::write(&gold, "http://a.com/x\tg0\te1\n").unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "eval --facts {} --gold {} --lenient",
                facts.to_str().unwrap(),
                gold.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("quarantined:     1"), "output:\n{text}");
        assert!(text.contains("quarantined 1 source(s)"), "output:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_cached_discover_matches_uncached_bit_for_bit() {
        let dir = tmpdir("snapcache");
        let dir_s = dir.to_str().unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "generate --dataset synthetic --seed 11 --out {dir_s}"
            )),
            &mut out,
        )
        .unwrap();

        let discover =
            format!("discover --facts {dir_s}/facts.tsv --kb {dir_s}/kb.tsv --top 10 --explain");
        // Everything before the snapshot-cache trailer must be identical
        // across uncached, cache-miss, and cache-hit runs.
        let body = |bytes: &[u8]| -> String {
            String::from_utf8(bytes.to_vec())
                .unwrap()
                .lines()
                .filter(|l| !l.starts_with("snapshot cache") && !l.starts_with("slice cache"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let mut uncached = Vec::new();
        run(&argv(&discover), &mut uncached).unwrap();

        let mut miss = Vec::new();
        run(
            &argv(&format!("{discover} --snapshot-cache {dir_s}/cache")),
            &mut miss,
        )
        .unwrap();
        let miss_text = String::from_utf8_lossy(&miss).to_string();
        assert!(miss_text.contains("snapshot cache write"), "{miss_text}");
        assert!(miss_text.contains("slice cache write"), "{miss_text}");

        let mut hit = Vec::new();
        run(
            &argv(&format!("{discover} --snapshot-cache {dir_s}/cache")),
            &mut hit,
        )
        .unwrap();
        let hit_text = String::from_utf8_lossy(&hit).to_string();
        assert!(hit_text.contains("snapshot cache hit"), "{hit_text}");
        assert!(
            hit_text.contains("slice cache hit"),
            "second run should skip detection entirely: {hit_text}"
        );

        assert_eq!(body(&uncached), body(&miss), "cache miss changes results");
        assert_eq!(body(&uncached), body(&hit), "cache hit changes results");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_json_and_verbose_stats_are_opt_in_trailers() {
        let dir = tmpdir("telemetry");
        let facts = dir.join("facts.tsv");
        let mut content = String::new();
        for i in 0..8 {
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\ttype\tgolf\n"));
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\tholes\th{i}\n"));
        }
        std::fs::write(&facts, content).unwrap();
        let facts_s = facts.to_str().unwrap();
        let metrics = dir.join("metrics.json");
        let metrics_s = metrics.to_str().unwrap();

        // Baseline run without telemetry flags.
        let mut plain = Vec::new();
        run(
            &argv(&format!("discover --facts {facts_s} --fp 1")),
            &mut plain,
        )
        .unwrap();
        let plain_text = String::from_utf8_lossy(&plain).to_string();
        assert!(!plain_text.contains("framework."), "no stats uninvited");

        // --verbose-stats appends the table after the unchanged output.
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {facts_s} --fp 1 --verbose-stats --metrics-json {metrics_s}"
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        assert!(
            text.starts_with(&plain_text),
            "normal output is a prefix; telemetry is purely additive:\n{text}"
        );
        assert!(text.contains("framework.detect_calls"), "{text}");
        assert!(text.contains("pool.task.exec_ns"), "{text}");

        // The JSON snapshot parses and reconciles with the run just done.
        let json = std::fs::read_to_string(&metrics).unwrap();
        let snap = telemetry::Snapshot::from_json(&json).unwrap();
        assert!(snap.counter("framework.rounds") >= 1);
        assert!(snap.counter("framework.detect_calls") >= 1);

        // CSV mode: every telemetry line is a `#` comment.
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {facts_s} --fp 1 --csv --verbose-stats"
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        let stats_line = text
            .lines()
            .find(|l| l.contains("framework.detect_calls"))
            .expect("stats table present in csv mode");
        assert!(stats_line.starts_with("# "), "{stats_line}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn naive_algorithm_runs() {
        let dir = tmpdir("naive");
        let facts = dir.join("facts.tsv");
        std::fs::write(&facts, "http://a.com/x\te\tp\tv\n").unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {} --algorithm naive",
                facts.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&out).contains("(entire source)"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
