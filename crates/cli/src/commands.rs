//! Subcommand implementations.

use crate::args::{Algorithm, CliError, Command, ParsedArgs};
use crate::facts_io;
use midas_baselines::{AggCluster, Greedy, Naive};
use midas_core::{CostModel, DiscoveredSlice, FactTable, MidasConfig, ProfitCtx, SourceFacts};
use midas_eval::runner::{merge_by_domain, run_detector_per_source, run_midas_framework};
use midas_eval::{bootstrap_prf, match_to_gold, Table};
use midas_kb::{DatasetStats, Interner, KnowledgeBase};
use midas_weburl::UrlPattern;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Runs a parsed command, writing human output to `out`.
pub fn dispatch(parsed: ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    match parsed.command {
        Command::Discover {
            facts,
            kb,
            algorithm,
            threads,
            top,
            cost,
            csv,
            explain,
        } => discover(&facts, kb.as_deref(), algorithm, threads, top, cost, csv, explain, out),
        Command::Stats { facts } => stats(&facts, out),
        Command::Generate {
            dataset,
            scale,
            seed,
            out: dir,
        } => generate(&dataset, scale, seed, &dir, out),
        Command::Eval {
            facts,
            gold,
            kb,
            algorithm,
            threads,
        } => eval(&facts, &gold, kb.as_deref(), algorithm, threads, out),
    }
}

fn load_inputs(
    facts_path: &str,
    kb_path: Option<&str>,
) -> Result<(Interner, Vec<SourceFacts>, KnowledgeBase), CliError> {
    let mut terms = Interner::new();
    let sources = facts_io::read_facts(BufReader::new(File::open(facts_path)?), &mut terms)?;
    let kb = match kb_path {
        Some(p) => facts_io::read_kb(BufReader::new(File::open(p)?), &mut terms)?,
        None => KnowledgeBase::new(),
    };
    Ok((terms, sources, kb))
}

/// Runs the selected algorithm over a corpus, returning ranked slices.
pub fn run_algorithm(
    algorithm: Algorithm,
    cost: CostModel,
    sources: &[SourceFacts],
    kb: &KnowledgeBase,
    threads: usize,
) -> Vec<DiscoveredSlice> {
    match algorithm {
        Algorithm::Midas => {
            // `--threads` drives both layers: source-level framework rounds
            // and level-wise hierarchy construction inside each detect call.
            let cfg = MidasConfig::default().with_cost(cost).with_threads(threads);
            run_midas_framework(&cfg, sources.to_vec(), kb, threads).slices
        }
        Algorithm::Greedy => {
            let merged = merge_by_domain(sources);
            run_detector_per_source(&Greedy::new(cost), &merged, kb).slices
        }
        Algorithm::AggCluster => {
            let merged = merge_by_domain(sources);
            run_detector_per_source(&AggCluster::new(cost), &merged, kb).slices
        }
        Algorithm::Naive => {
            let merged = merge_by_domain(sources);
            let mut run = run_detector_per_source(&Naive::new(cost), &merged, kb);
            run.slices.sort_by(|a, b| b.num_new_facts.cmp(&a.num_new_facts));
            run.slices
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn discover(
    facts_path: &str,
    kb_path: Option<&str>,
    algorithm: Algorithm,
    threads: usize,
    top: usize,
    (fp, fc, fd, fv): (f64, f64, f64, f64),
    csv: bool,
    explain: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let (terms, sources, kb) = load_inputs(facts_path, kb_path)?;
    let cost = CostModel { fp, fc, fd, fv };
    let slices = run_algorithm(algorithm, cost, &sources, &kb, threads);

    let mut table = Table::new(
        "Discovered web source slices",
        &["#", "slice", "source", "pattern", "entities", "new/total", "profit"],
    );
    for (i, s) in slices.iter().take(top).enumerate() {
        let pages: Vec<_> = sources
            .iter()
            .filter(|src| {
                s.source.contains(&src.url)
                    && src.facts.iter().any(|f| s.entities.binary_search(&f.subject).is_ok())
            })
            .map(|src| src.url.clone())
            .collect();
        let pattern = UrlPattern::summarise(&pages)
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".to_owned());
        let desc = s.describe(&terms);
        let desc = desc.split(" @ ").next().unwrap_or_default().to_owned();
        table.row(&[
            (i + 1).to_string(),
            desc,
            s.source.to_string(),
            pattern,
            s.entities.len().to_string(),
            format!("{}/{}", s.num_new_facts, s.num_facts),
            format!("{:.3}", s.profit),
        ]);
    }
    if csv {
        write!(out, "{}", table.to_csv())?;
    } else {
        write!(out, "{}", table.render())?;
    }

    if explain {
        writeln!(out, "\nProfit breakdowns:")?;
        for (i, s) in slices.iter().take(top).enumerate() {
            // Rebuild the slice's context against its own source scope.
            let scope: Vec<SourceFacts> = sources
                .iter()
                .filter(|src| s.source.contains(&src.url))
                .cloned()
                .collect();
            let merged = SourceFacts::merge(s.source.clone(), scope);
            let table_w = FactTable::build(&merged, &kb);
            let ctx = ProfitCtx::new(&table_w, cost);
            let ids: Vec<u32> = s
                .entities
                .iter()
                .filter_map(|&e| table_w.entity(e))
                .collect();
            let extent =
                midas_core::ExtentSet::from_unsorted(table_w.num_entities() as u32, ids);
            writeln!(out, "  #{}: {}", i + 1, ctx.breakdown(&extent))?;
        }
    }
    Ok(())
}

fn stats(facts_path: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let mut terms = Interner::new();
    let sources = facts_io::read_facts(BufReader::new(File::open(facts_path)?), &mut terms)?;
    let stats = DatasetStats::compute(sources.iter().flat_map(|s| {
        let url = s.url.as_str();
        s.facts.iter().map(move |&f| (f, url))
    }));
    let mut domains: Vec<String> = sources
        .iter()
        .map(|s| s.url.domain().as_str().to_owned())
        .collect();
    domains.sort();
    domains.dedup();
    writeln!(out, "facts:      {}", stats.num_facts)?;
    writeln!(out, "predicates: {}", stats.num_predicates)?;
    writeln!(out, "subjects:   {}", stats.num_subjects)?;
    writeln!(out, "pages:      {}", stats.num_urls)?;
    writeln!(out, "domains:    {}", domains.len())?;
    Ok(())
}

fn generate(
    dataset: &str,
    scale: f64,
    seed: u64,
    dir: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use midas_extract::{kvault, slim, synthetic};
    let ds = match dataset {
        "synthetic" => synthetic::generate(&synthetic::SyntheticConfig {
            seed,
            ..synthetic::SyntheticConfig::default()
        }),
        "reverb-slim" => slim::generate(&slim::SlimConfig::reverb(seed).with_scale(scale)),
        "nell-slim" => slim::generate(&slim::SlimConfig::nell(seed).with_scale(scale)),
        "kvault" => kvault::generate(&kvault::KVaultConfig { scale, seed }),
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset {other:?} (expected synthetic|reverb-slim|nell-slim|kvault)"
            )))
        }
    };
    std::fs::create_dir_all(dir)?;
    let path = |name: &str| Path::new(dir).join(name);
    facts_io::write_facts(
        BufWriter::new(File::create(path("facts.tsv"))?),
        &ds.terms,
        &ds.sources,
    )?;
    facts_io::write_kb(
        BufWriter::new(File::create(path("kb.tsv"))?),
        &ds.terms,
        &ds.kb,
    )?;
    facts_io::write_gold(
        BufWriter::new(File::create(path("gold.tsv"))?),
        &ds.terms,
        &ds.truth.gold,
    )?;
    writeln!(
        out,
        "wrote {} facts across {} sources, {} KB facts, {} gold slices to {dir}",
        ds.total_facts(),
        ds.sources.len(),
        ds.kb.len(),
        ds.truth.gold.len()
    )?;
    Ok(())
}

fn eval(
    facts_path: &str,
    gold_path: &str,
    kb_path: Option<&str>,
    algorithm: Algorithm,
    threads: usize,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut terms = Interner::new();
    let sources = facts_io::read_facts(BufReader::new(File::open(facts_path)?), &mut terms)?;
    let gold = facts_io::read_gold(BufReader::new(File::open(gold_path)?), &mut terms)?;
    let kb = match kb_path {
        Some(p) => facts_io::read_kb(BufReader::new(File::open(p)?), &mut terms)?,
        None => KnowledgeBase::new(),
    };
    let slices: Vec<DiscoveredSlice> =
        run_algorithm(algorithm, CostModel::default(), &sources, &kb, threads)
            .into_iter()
            .filter(|s| s.profit > 0.0 || matches!(algorithm, Algorithm::Naive))
            .collect();
    let prf = match_to_gold(&slices, &gold);
    let (p_ci, r_ci, f_ci) = bootstrap_prf(&slices, &gold, 500, 0.95, 42);
    writeln!(out, "returned slices: {}", slices.len())?;
    writeln!(out, "gold slices:     {}", gold.len())?;
    writeln!(
        out,
        "precision: {:.3}  [{:.3}, {:.3}]",
        prf.precision, p_ci.lower, p_ci.upper
    )?;
    writeln!(
        out,
        "recall:    {:.3}  [{:.3}, {:.3}]",
        prf.recall, r_ci.lower, r_ci.upper
    )?;
    writeln!(
        out,
        "f-measure: {:.3}  [{:.3}, {:.3}]",
        prf.f_measure, f_ci.lower, f_ci.upper
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("midas_cli_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_then_discover_then_eval() {
        let dir = tmpdir("full");
        let dir_s = dir.to_str().unwrap();

        let mut out = Vec::new();
        run(
            &argv(&format!(
                "generate --dataset synthetic --seed 5 --out {dir_s}"
            )),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&out).contains("gold slices"));

        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {dir_s}/facts.tsv --kb {dir_s}/kb.tsv --top 5 --explain"
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("Discovered web source slices"));
        assert!(text.contains("Profit breakdowns"));
        assert!(text.contains("pred_"), "slice descriptions present:\n{text}");

        let mut out = Vec::new();
        run(
            &argv(&format!(
                "eval --facts {dir_s}/facts.tsv --gold {dir_s}/gold.tsv --kb {dir_s}/kb.tsv"
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("precision: 1.000"), "eval output:\n{text}");
        assert!(text.contains("recall:    1.000"), "eval output:\n{text}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_command_counts() {
        let dir = tmpdir("stats");
        let facts = dir.join("facts.tsv");
        std::fs::write(
            &facts,
            "http://a.com/x\te1\tp\tv\nhttp://a.com/y\te2\tq\tw\n",
        )
        .unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!("stats --facts {}", facts.to_str().unwrap())),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("facts:      2"));
        assert!(text.contains("domains:    1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discover_csv_output() {
        let dir = tmpdir("csv");
        let facts = dir.join("facts.tsv");
        let mut content = String::new();
        for i in 0..8 {
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\ttype\tgolf\n"));
            content.push_str(&format!("http://a.com/d/p{i}\tent{i}\tholes\th{i}\n"));
        }
        std::fs::write(&facts, content).unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {} --fp 1 --csv",
                facts.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("#,slice,source"), "csv header:\n{text}");
        assert!(text.contains("type = golf"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut out = Vec::new();
        let err = run(&argv("stats --facts /nonexistent/file.tsv"), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn naive_algorithm_runs() {
        let dir = tmpdir("naive");
        let facts = dir.join("facts.tsv");
        std::fs::write(&facts, "http://a.com/x\te\tp\tv\n").unwrap();
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {} --algorithm naive",
                facts.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&out).contains("(entire source)"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
