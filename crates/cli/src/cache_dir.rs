//! Shared snapshot-cache directory: locking, manifest, eviction, quarantine.
//!
//! A `--snapshot-cache` directory may be shared by several concurrent
//! `midas` processes. This module makes that safe and bounded:
//!
//! * **Advisory locking** — one `.lock` file per directory, taken shared
//!   (`flock LOCK_SH`) by readers and exclusive (`LOCK_EX`) by anything
//!   that writes, evicts, or quarantines. `flock` locks die with their
//!   process, so a `kill -9` mid-write never wedges the directory.
//! * **Manifest** — `MANIFEST.tsv` records `name \t bytes \t last_used_ms`
//!   per cache entry and is itself rewritten atomically
//!   ([`midas_kb::write_bytes_atomic`], crash site `manifest.*`). It is
//!   advisory bookkeeping for LRU eviction: damage or loss degrades to
//!   file-mtime ordering, never to a wrong answer.
//! * **Eviction** — `--snapshot-cache-max-bytes` caps the total size of
//!   `.snap` entries; least-recently-used entries go first. Checkpoints
//!   (`.ckpt`) are deliberately exempt: evicting one silently downgrades
//!   `augment --resume` to a cold rerun.
//! * **Quarantine** — a corrupt or stale-keyed entry is renamed into
//!   `quarantine/` next to a `<name>.reason` file instead of being
//!   clobbered, preserving the evidence for post-mortems.
//! * **Orphan sweep** — `*.tmp.<pid>` files whose writing process is gone
//!   (crashed before its rename) are deleted opportunistically.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};

/// Clock reading for `last_used_ms` stamps: milliseconds since the Unix
/// epoch. Monotonicity across processes is best-effort — LRU only needs a
/// rough recency order.
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(unix)]
mod sys {
    pub const LOCK_SH: i32 = 1;
    pub const LOCK_EX: i32 = 2;
    pub const LOCK_UN: i32 = 8;

    extern "C" {
        pub fn flock(fd: i32, operation: i32) -> i32;
    }
}

/// An acquired advisory lock on the cache directory; released on drop (and
/// by the kernel if the process dies first).
pub struct LockGuard {
    file: File,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid descriptor owned by `self.file`;
            // LOCK_UN cannot fail in a way we could act on here.
            unsafe { sys::flock(self.file.as_raw_fd(), sys::LOCK_UN) };
        }
        let _ = &self.file;
    }
}

/// One manifest row: a cache entry's name, size, and last-use stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name within the cache directory (no path separators).
    pub name: String,
    /// Size in bytes at last record time.
    pub bytes: u64,
    /// Last-use stamp, milliseconds since the Unix epoch.
    pub last_used_ms: u64,
}

/// A snapshot-cache directory handle. Creating one ensures the directory
/// and its `.lock` file exist; all mutation goes through methods that hold
/// the appropriate lock.
pub struct CacheDir {
    root: PathBuf,
}

/// Crash-site prefix for manifest rewrites.
pub const MANIFEST_SITE: &str = "manifest";
const MANIFEST_NAME: &str = "MANIFEST.tsv";
const LOCK_NAME: &str = ".lock";
/// Subdirectory receiving corrupt entries.
pub const QUARANTINE_DIR: &str = "quarantine";

impl CacheDir {
    /// Opens (creating if needed) the cache directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<CacheDir> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        // Ensure the lock file exists so lock acquisition never races
        // directory creation.
        File::options()
            .create(true)
            .append(true)
            .open(root.join(LOCK_NAME))?;
        Ok(CacheDir { root })
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path of a named entry.
    pub fn entry_path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn lock(&self, op: i32) -> io::Result<LockGuard> {
        let file = File::options()
            .create(true)
            .append(true)
            .open(self.root.join(LOCK_NAME))?;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid descriptor for the just-opened lock
            // file; flock blocks until the lock is granted.
            let rc = unsafe { sys::flock(file.as_raw_fd(), op) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
        }
        #[cfg(not(unix))]
        let _ = op;
        Ok(LockGuard { file })
    }

    /// Takes the shared (reader) lock: snapshots may be opened and mapped,
    /// nothing may be renamed away underneath us.
    pub fn shared(&self) -> io::Result<LockGuard> {
        #[cfg(unix)]
        return self.lock(sys::LOCK_SH);
        #[cfg(not(unix))]
        return self.lock(0);
    }

    /// Takes the exclusive (writer) lock: required for writes, eviction,
    /// quarantine, and manifest updates.
    pub fn exclusive(&self) -> io::Result<LockGuard> {
        #[cfg(unix)]
        return self.lock(sys::LOCK_EX);
        #[cfg(not(unix))]
        return self.lock(0);
    }

    /// Reads the manifest, tolerating absence and per-line damage (damaged
    /// lines are dropped; eviction then falls back to file mtimes for any
    /// untracked entries).
    pub fn read_manifest(&self) -> Vec<ManifestEntry> {
        let Ok(text) = fs::read_to_string(self.root.join(MANIFEST_NAME)) else {
            return Vec::new();
        };
        let mut entries = Vec::new();
        for line in text.lines() {
            let mut cols = line.split('\t');
            let (Some(name), Some(bytes), Some(last)) = (cols.next(), cols.next(), cols.next())
            else {
                continue;
            };
            let (Ok(bytes), Ok(last_used_ms)) = (bytes.parse(), last.parse()) else {
                continue;
            };
            if name.is_empty() || name.contains('/') || cols.next().is_some() {
                continue;
            }
            entries.push(ManifestEntry {
                name: name.to_string(),
                bytes,
                last_used_ms,
            });
        }
        entries
    }

    /// Atomically rewrites the manifest. Caller holds the exclusive lock.
    fn write_manifest(&self, entries: &[ManifestEntry]) -> io::Result<()> {
        let mut text = String::new();
        for e in entries {
            text.push_str(&format!("{}\t{}\t{}\n", e.name, e.bytes, e.last_used_ms));
        }
        midas_kb::write_bytes_atomic(
            &self.root.join(MANIFEST_NAME),
            text.as_bytes(),
            MANIFEST_SITE,
        )
    }

    /// Records (or refreshes) `name` in the manifest with its current size
    /// and a fresh last-used stamp. Caller holds the exclusive lock.
    ///
    /// The stamp is clamped to never move backwards relative to the newest
    /// stamp already in the manifest: a wall-clock step (NTP correction,
    /// manual reset) would otherwise stamp the entry being used *right now*
    /// older than idle ones, making it the next eviction victim.
    pub fn touch(&self, name: &str) -> io::Result<()> {
        let bytes = fs::metadata(self.entry_path(name))
            .map(|m| m.len())
            .unwrap_or(0);
        let mut entries = self.read_manifest();
        let floor = entries.iter().map(|e| e.last_used_ms).max().unwrap_or(0);
        entries.retain(|e| e.name != name);
        entries.push(ManifestEntry {
            name: name.to_string(),
            bytes,
            last_used_ms: now_ms().max(floor),
        });
        // Drop rows whose files vanished (evicted by another process, or
        // removed by hand) so the manifest cannot grow without bound.
        entries.retain(|e| self.entry_path(&e.name).exists());
        self.write_manifest(&entries)
    }

    /// Evicts least-recently-used `.snap` entries until the total size of
    /// `.snap` files is within `max_bytes`. `keep` (the entry the current
    /// run needs) is never evicted. Checkpoints and other non-`.snap` files
    /// are not eviction candidates. Returns the evicted names. Caller holds
    /// the exclusive lock.
    pub fn evict(&self, max_bytes: u64, keep: &str) -> io::Result<Vec<String>> {
        let manifest = self.read_manifest();
        let stamp_of = |name: &str| {
            manifest
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.last_used_ms)
        };

        // Candidates: every on-disk `.snap`, stamped from the manifest or —
        // for untracked files — from mtime, so damage to the manifest only
        // coarsens recency, never hides an entry from the size accounting.
        let mut candidates: Vec<(String, u64, u64)> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(".snap") || !entry.file_type()?.is_file() {
                continue;
            }
            let meta = entry.metadata()?;
            let stamp = stamp_of(name).unwrap_or_else(|| {
                meta.modified()
                    .ok()
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0)
            });
            candidates.push((name.to_string(), meta.len(), stamp));
        }

        let mut total: u64 = candidates.iter().map(|c| c.1).sum();
        if total <= max_bytes {
            return Ok(Vec::new());
        }
        // Oldest first. Stamp ties are real under the monotonic clamp in
        // `touch` (entries stamped while the wall clock lags the manifest
        // floor all land on the floor): prefer evicting the largest of the
        // tied entries — fewest evictions to get under the cap — with the
        // name as the final deterministic tie-break.
        candidates.sort_by(|a, b| {
            a.2.cmp(&b.2)
                .then_with(|| b.1.cmp(&a.1))
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut evicted = Vec::new();
        for (name, bytes, _) in candidates {
            if total <= max_bytes {
                break;
            }
            if name == keep {
                continue;
            }
            fs::remove_file(self.entry_path(&name))?;
            total = total.saturating_sub(bytes);
            evicted.push(name);
        }
        if !evicted.is_empty() {
            let mut entries = self.read_manifest();
            entries.retain(|e| !evicted.contains(&e.name));
            self.write_manifest(&entries)?;
        }
        Ok(evicted)
    }

    /// Moves a damaged entry into `quarantine/` and writes `<name>.reason`
    /// beside it, preserving the evidence instead of clobbering it. Caller
    /// holds the exclusive lock.
    pub fn quarantine(&self, name: &str, reason: &str) -> io::Result<PathBuf> {
        let qdir = self.root.join(QUARANTINE_DIR);
        fs::create_dir_all(&qdir)?;
        let dest = qdir.join(name);
        // A second corruption of the same key overwrites the first capture;
        // the newest evidence wins.
        fs::rename(self.entry_path(name), &dest)?;
        fs::write(qdir.join(format!("{name}.reason")), format!("{reason}\n"))?;
        let mut entries = self.read_manifest();
        entries.retain(|e| e.name != name);
        self.write_manifest(&entries)?;
        Ok(dest)
    }

    /// Deletes `*.tmp.<pid>` orphans left by writers that died before their
    /// rename. Only files whose recorded pid is provably dead are removed
    /// (`/proc/<pid>` absent on Linux); a live writer's temp file is left
    /// alone. Caller holds the exclusive lock.
    pub fn sweep_orphans(&self) -> io::Result<Vec<String>> {
        let mut swept = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(pid) = name
                .rsplit_once(".tmp.")
                .and_then(|(_, pid)| pid.parse::<u32>().ok())
            else {
                continue;
            };
            if pid == std::process::id() || !entry.file_type()?.is_file() {
                continue;
            }
            if pid_is_dead(pid) {
                fs::remove_file(entry.path())?;
                swept.push(name.to_string());
            }
        }
        Ok(swept)
    }
}

/// Whether `pid` provably no longer exists. Conservative: when liveness
/// cannot be determined, the pid is treated as alive and its temp files
/// survive the sweep.
fn pid_is_dead(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        !Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("midas_cachedir_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_round_trips_and_tolerates_damage() {
        let dir = tmpdir("manifest");
        let cache = CacheDir::open(&dir).unwrap();
        fs::write(cache.entry_path("a.snap"), vec![0u8; 10]).unwrap();
        fs::write(cache.entry_path("b.snap"), vec![0u8; 20]).unwrap();
        let _g = cache.exclusive().unwrap();
        cache.touch("a.snap").unwrap();
        cache.touch("b.snap").unwrap();
        let entries = cache.read_manifest();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a.snap");
        assert_eq!(entries[0].bytes, 10);

        // Damaged lines are dropped, intact ones survive.
        let manifest = dir.join(MANIFEST_NAME);
        let mut text = fs::read_to_string(&manifest).unwrap();
        text.push_str("not a row\nc.snap\tNaN\t0\n");
        fs::write(&manifest, text).unwrap();
        assert_eq!(cache.read_manifest().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_lru_and_spares_keep_and_checkpoints() {
        let dir = tmpdir("evict");
        let cache = CacheDir::open(&dir).unwrap();
        let _g = cache.exclusive().unwrap();
        for (name, len) in [("old.snap", 40), ("mid.snap", 40), ("new.snap", 40)] {
            fs::write(cache.entry_path(name), vec![0u8; len]).unwrap();
            cache.touch(name).unwrap();
            // Stamps must strictly order; now_ms ties are possible within
            // one test, so space them out explicitly.
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        fs::write(cache.entry_path("run.ckpt"), vec![0u8; 1000]).unwrap();

        // 120 bytes of .snap, cap 100: exactly the LRU entry goes, and the
        // huge checkpoint is never a candidate.
        let evicted = cache.evict(100, "new.snap").unwrap();
        assert_eq!(evicted, vec!["old.snap".to_string()]);
        assert!(cache.entry_path("run.ckpt").exists());
        assert!(!cache.entry_path("old.snap").exists());
        assert!(cache.read_manifest().iter().all(|e| e.name != "old.snap"));

        // Cap 0 with keep: everything but the kept entry goes.
        let evicted = cache.evict(0, "new.snap").unwrap();
        assert_eq!(evicted, vec!["mid.snap".to_string()]);
        assert!(cache.entry_path("new.snap").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clock_rewind_does_not_evict_the_hottest_entry() {
        let dir = tmpdir("rewind");
        let cache = CacheDir::open(&dir).unwrap();
        let _g = cache.exclusive().unwrap();
        for name in ["cold.snap", "warm.snap", "hot.snap"] {
            fs::write(cache.entry_path(name), vec![0u8; 40]).unwrap();
            cache.touch(name).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        // Simulate a backwards clock step: rewrite every stamp far into the
        // future, so the next `touch` sees now_ms() far below the manifest
        // floor. Without the monotonic clamp the re-touched entry would
        // become the oldest stamp in the directory.
        let future = now_ms() + 86_400_000;
        let entries: Vec<ManifestEntry> = cache
            .read_manifest()
            .into_iter()
            .enumerate()
            .map(|(i, mut e)| {
                e.last_used_ms = future + i as u64;
                e
            })
            .collect();
        cache.write_manifest(&entries).unwrap();

        cache.touch("hot.snap").unwrap();
        let stamped = cache.read_manifest();
        let hot = stamped.iter().find(|e| e.name == "hot.snap").unwrap();
        assert!(
            hot.last_used_ms >= future + 2,
            "re-touched stamp must clamp to the manifest floor, got {} < {}",
            hot.last_used_ms,
            future + 2
        );
        // 120 bytes, cap 100: the entry used right after the rewind must
        // survive; one of the genuinely idle ones goes.
        let evicted = cache.evict(100, "other.snap").unwrap();
        assert_eq!(evicted.len(), 1);
        assert_ne!(evicted[0], "hot.snap");
        assert!(cache.entry_path("hot.snap").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stamp_ties_evict_the_largest_entry_first() {
        let dir = tmpdir("tiebreak");
        let cache = CacheDir::open(&dir).unwrap();
        let _g = cache.exclusive().unwrap();
        for (name, len) in [("small.snap", 10), ("big.snap", 90)] {
            fs::write(cache.entry_path(name), vec![0u8; len]).unwrap();
        }
        // Identical stamps, written directly: only size breaks the tie.
        let stamp = now_ms();
        let entries: Vec<ManifestEntry> = [("small.snap", 10u64), ("big.snap", 90u64)]
            .iter()
            .map(|&(name, bytes)| ManifestEntry {
                name: name.to_string(),
                bytes,
                last_used_ms: stamp,
            })
            .collect();
        cache.write_manifest(&entries).unwrap();
        // 100 bytes, cap 50: evicting `big` alone suffices; the old
        // name-only tie-break would have taken `big` AND `small`.
        let evicted = cache.evict(50, "other.snap").unwrap();
        assert_eq!(evicted, vec!["big.snap".to_string()]);
        assert!(cache.entry_path("small.snap").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn untracked_snapshots_still_count_toward_the_cap() {
        let dir = tmpdir("untracked");
        let cache = CacheDir::open(&dir).unwrap();
        let _g = cache.exclusive().unwrap();
        // Never touched: no manifest row, mtime is the stamp.
        fs::write(cache.entry_path("ghost.snap"), vec![0u8; 64]).unwrap();
        let evicted = cache.evict(32, "other.snap").unwrap();
        assert_eq!(evicted, vec!["ghost.snap".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_preserves_bytes_and_reason() {
        let dir = tmpdir("quarantine");
        let cache = CacheDir::open(&dir).unwrap();
        fs::write(cache.entry_path("bad.snap"), b"torn bytes").unwrap();
        let _g = cache.exclusive().unwrap();
        cache.touch("bad.snap").unwrap();
        let dest = cache.quarantine("bad.snap", "checksum mismatch").unwrap();
        assert!(!cache.entry_path("bad.snap").exists());
        assert_eq!(fs::read(dest).unwrap(), b"torn bytes");
        let reason =
            fs::read_to_string(cache.root().join(QUARANTINE_DIR).join("bad.snap.reason")).unwrap();
        assert!(reason.contains("checksum mismatch"));
        assert!(cache.read_manifest().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_sweep_removes_dead_writers_only() {
        let dir = tmpdir("orphans");
        let cache = CacheDir::open(&dir).unwrap();
        let _g = cache.exclusive().unwrap();
        let own = format!("x.snap.tmp.{}", std::process::id());
        fs::write(cache.entry_path(&own), b"mine").unwrap();
        // Pid u32::MAX - 1 cannot exist (beyond pid_max on any Linux).
        fs::write(cache.entry_path("y.snap.tmp.4294967294"), b"dead").unwrap();
        fs::write(cache.entry_path("normal.snap"), b"keep").unwrap();
        let swept = cache.sweep_orphans().unwrap();
        if cfg!(target_os = "linux") {
            assert_eq!(swept, vec!["y.snap.tmp.4294967294".to_string()]);
        }
        assert!(cache.entry_path(&own).exists(), "live writer's tmp kept");
        assert!(cache.entry_path("normal.snap").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_locks_coexist() {
        let dir = tmpdir("locks");
        let cache = CacheDir::open(&dir).unwrap();
        let a = cache.shared().unwrap();
        let b = cache.shared().unwrap();
        drop((a, b));
        let _x = cache.exclusive().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
