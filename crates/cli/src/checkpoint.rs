//! Durable augmentation checkpoints for `augment --resume`.
//!
//! After every completed round, the full round trace so far is serialised
//! into one `MSNP` container (the same crash-consistent format as corpus
//! snapshots; crash site `ckpt.*`) keyed by everything that determines the
//! run's results: the corpus cache key, the cost model, and the
//! deterministic budget caps. `augment --resume` loads the trace, replays
//! the accepted slices into a fresh [`midas_core::Augmenter`] — each accept
//! is verified against the recorded fact delta — and continues from the
//! next round. The incremental engine's cold-restart path then recomputes
//! suggestions from the combined delta, which the equivalence suite proves
//! bit-identical to the uninterrupted incremental run.
//!
//! The on-disk format is a flat trace (count + per-round records), but the
//! writer does not re-encode the whole trace every round: a [`RoundLog`]
//! keeps the already-committed rounds as pre-encoded bytes (the *compacted
//! base*) and each save appends only the newest round's encoding before one
//! atomic rename — O(1) encoding work per round instead of O(rounds). On
//! resume, the replayed prefix is folded into the base once
//! ([`RoundLog::from_rounds`]) and never re-encoded again. The bytes
//! written are identical to a full re-encode ([`save_rounds`], kept as the
//! one-shot path), so readers and crash-recovery are unchanged.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use midas_core::{
    AugmentationStep, BreachKind, BudgetBreach, CostModel, DiscoveredSlice, FaultCause, Quarantine,
    SourceBudget, SourceFault, Stage,
};
use midas_eval::runner::AugmentationRound;
use midas_extract::CacheKey;
use midas_kb::{Interner, SectionWriter, Snapshot, SnapshotBuilder, SnapshotError};
use midas_weburl::SourceUrl;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Checkpoint traffic counters. `rounds_saved` counts rounds folded into
/// the compacted base (each is encoded exactly once); `bytes_appended` is
/// the encoded size of those rounds, i.e. the per-round O(1) write cost the
/// append-only design promises.
mod metrics {
    midas_core::counter!(pub ROUNDS_SAVED, "checkpoint.rounds_saved");
    midas_core::counter!(pub ROUNDS_REPLAYED, "checkpoint.rounds_replayed");
    midas_core::counter!(pub BYTES_APPENDED, "checkpoint.bytes_appended");
}

/// Round-trace section of a checkpoint container.
pub const TAG_CKPT: u32 = u32::from_le_bytes(*b"CKPT");
/// Crash-site prefix for checkpoint writes.
pub const CKPT_SITE: &str = "ckpt";

/// Derives the checkpoint key: the corpus key plus every knob that changes
/// what the augmentation loop computes. Thread count, stream window, and
/// `--rounds` are deliberately excluded — they affect schedule and stopping
/// point, not per-round results — so a resume may change them.
pub fn checkpoint_key(corpus_key: u64, cost: &CostModel, budget: &SourceBudget) -> u64 {
    let mut k = CacheKey::new()
        .part("corpus", &corpus_key.to_le_bytes())
        .part("fp", &cost.fp.to_bits().to_le_bytes())
        .part("fc", &cost.fc.to_bits().to_le_bytes())
        .part("fd", &cost.fd.to_bits().to_le_bytes())
        .part("fv", &cost.fv.to_bits().to_le_bytes());
    let cap_bytes = |cap: Option<usize>| -> [u8; 9] {
        let mut b = [0u8; 9];
        if let Some(v) = cap {
            b[0] = 1;
            b[1..].copy_from_slice(&(v as u64).to_le_bytes());
        }
        b
    };
    k = k.part("max_facts", &cap_bytes(budget.max_facts));
    k = k.part("max_nodes", &cap_bytes(budget.max_nodes));
    k.part("kind", b"augment").finish()
}

/// The checkpoint file addressing `key` inside the cache directory.
pub fn checkpoint_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(checkpoint_name(key))
}

/// The checkpoint file name for `key` (no directory).
pub fn checkpoint_name(key: u64) -> String {
    format!("midas-{key:016x}.ckpt")
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Serialises the round trace and writes it atomically (crash site
/// `ckpt.*`). Strings are resolved through `terms` so the checkpoint is
/// self-contained — symbols are not stable across processes.
///
/// One-shot convenience over [`RoundLog`]: re-encodes every round. The
/// augmentation loop keeps a live `RoundLog` instead so committed rounds
/// are encoded exactly once.
pub fn save_rounds(
    path: &Path,
    key: u64,
    terms: &Interner,
    rounds: &[AugmentationRound],
) -> io::Result<()> {
    RoundLog::from_rounds(terms, rounds).save(path, key)
}

/// An append-only writer for the checkpoint round trace.
///
/// Committed rounds live as pre-encoded bytes (`base`), so each
/// [`append`] + [`save`] cycle encodes only the new round and streams the
/// base through [`SectionWriter::put_bytes`] — the file written is
/// byte-identical to a full re-encode of the same rounds.
///
/// [`append`]: RoundLog::append
/// [`save`]: RoundLog::save
pub struct RoundLog {
    /// Number of rounds folded into `base`.
    compacted: u32,
    /// Concatenated per-round encodings of the compacted rounds (the
    /// section payload minus its leading round count).
    base: Vec<u8>,
}

impl Default for RoundLog {
    fn default() -> Self {
        RoundLog::new()
    }
}

impl RoundLog {
    /// An empty log (fresh run, nothing replayed).
    pub fn new() -> RoundLog {
        RoundLog {
            compacted: 0,
            base: Vec::new(),
        }
    }

    /// Compacts an already-known trace (e.g. the replayed prefix on
    /// `--resume`) into the base in one pass.
    pub fn from_rounds(terms: &Interner, rounds: &[AugmentationRound]) -> RoundLog {
        let mut log = RoundLog::new();
        for r in rounds {
            log.append(terms, r);
        }
        log
    }

    /// Number of rounds in the log.
    pub fn len(&self) -> usize {
        self.compacted as usize
    }

    /// Whether the log holds no rounds.
    pub fn is_empty(&self) -> bool {
        self.compacted == 0
    }

    /// Encodes one completed round onto the base.
    pub fn append(&mut self, terms: &Interner, r: &AugmentationRound) {
        let before = self.base.len();
        let mut w = SectionWriter::over(&mut self.base);
        encode_round(&mut w, terms, r);
        self.compacted += 1;
        metrics::ROUNDS_SAVED.inc();
        metrics::BYTES_APPENDED.add((self.base.len() - before) as u64);
    }

    /// Writes the current trace atomically (crash site `ckpt.*`): one
    /// `MSNP` container whose `CKPT` section is the round count followed by
    /// the compacted base bytes.
    pub fn save(&self, path: &Path, key: u64) -> io::Result<()> {
        let mut b = SnapshotBuilder::new(key);
        let mut w = b.section(TAG_CKPT);
        w.put_u32(self.compacted);
        w.put_bytes(&self.base);
        b.write_atomic_labeled(path, CKPT_SITE)
    }
}

/// Encodes one round record; the exact inverse of the per-round block in
/// [`load_rounds`].
fn encode_round(w: &mut SectionWriter<'_>, terms: &Interner, r: &AugmentationRound) {
    w.put_u32(r.round as u32);
    match &r.accepted {
        None => w.put_u32(0),
        Some(step) => {
            w.put_u32(1);
            let s = &step.slice;
            w.put_str(s.source.as_str());
            w.put_u32(s.properties.len() as u32);
            for &(p, v) in &s.properties {
                w.put_str(terms.resolve(p));
                w.put_str(terms.resolve(v));
            }
            w.put_u32(s.entities.len() as u32);
            for &e in &s.entities {
                w.put_str(terms.resolve(e));
            }
            w.put_u64(s.num_facts as u64);
            w.put_u64(s.num_new_facts as u64);
            w.put_f64(s.profit);
            w.put_u64(step.facts_added as u64);
            w.put_u64(step.kb_size as u64);
        }
    }
    w.put_u64(r.suggest_time.as_nanos() as u64);
    w.put_u64(r.suggestions as u64);
    w.put_u64(r.detect_calls as u64);
    w.put_u64(r.reused_tasks as u64);
    w.put_u64(r.kb_size as u64);
    // Deadline budget the round ran under: presence flag + milliseconds.
    // Old (pre-budget) checkpoints lack these words and fail the trailing
    // `expect_end` on load — the caller quarantines the trace and restarts
    // cold, which is always sound.
    match r.budget_ms {
        None => w.put_u32(0),
        Some(ms) => {
            w.put_u32(1);
            w.put_u64(ms);
        }
    }
    w.put_u32(r.quarantine.len() as u32);
    for f in r.quarantine.iter() {
        w.put_str(&f.source);
        w.put_u32(match f.stage {
            Stage::Read => 0,
            Stage::Detect => 1,
            Stage::Consolidate => 2,
        });
        match &f.cause {
            FaultCause::Parse {
                file,
                line,
                message,
            } => {
                w.put_u32(0);
                w.put_str(file);
                w.put_u64(*line);
                w.put_str(message);
            }
            FaultCause::Panic { message } => {
                w.put_u32(1);
                w.put_str(message);
            }
            FaultCause::Budget(breach) => {
                w.put_u32(2);
                w.put_u32(match breach.kind {
                    BreachKind::Facts => 0,
                    BreachKind::HierarchyNodes => 1,
                    BreachKind::Deadline => 2,
                    BreachKind::Injected => 3,
                });
                w.put_u64(breach.limit);
                w.put_u64(breach.observed);
            }
        }
        w.put_u64(f.facts_seen as u64);
    }
}

/// Loads a round trace saved by [`save_rounds`], re-interning its strings
/// into `terms`. Fails with [`SnapshotError::KeyMismatch`] when the file is
/// sound but belongs to a different run configuration.
pub fn load_rounds(
    path: &Path,
    expected_key: u64,
    terms: &mut Interner,
) -> Result<Vec<AugmentationRound>, SnapshotError> {
    let snap = Snapshot::open(path)?;
    if snap.cache_key() != expected_key {
        return Err(SnapshotError::KeyMismatch {
            expected: expected_key,
            found: snap.cache_key(),
        });
    }
    let mut r = snap.section(TAG_CKPT)?;
    let n_rounds = r.get_u32("round count")? as usize;
    let mut rounds = Vec::with_capacity(n_rounds);
    for _ in 0..n_rounds {
        let round = r.get_u32("round number")? as usize;
        let accepted = match r.get_u32("accepted flag")? {
            0 => None,
            1 => {
                let url = r.get_str("slice source url")?;
                let source = SourceUrl::parse(&url)
                    .map_err(|e| corrupt(format!("invalid slice url {url:?}: {e}")))?;
                let n_props = r.get_u32("property count")? as usize;
                let mut properties = Vec::with_capacity(n_props);
                for _ in 0..n_props {
                    let p = terms.intern(&r.get_str("property predicate")?);
                    let v = terms.intern(&r.get_str("property value")?);
                    properties.push((p, v));
                }
                let n_entities = r.get_u32("entity count")? as usize;
                let mut entities = Vec::with_capacity(n_entities);
                for _ in 0..n_entities {
                    entities.push(terms.intern(&r.get_str("entity")?));
                }
                let num_facts = r.get_u64("slice fact count")? as usize;
                let num_new_facts = r.get_u64("slice new-fact count")? as usize;
                let profit = r.get_f64("slice profit")?;
                let facts_added = r.get_u64("facts added")? as usize;
                let kb_size = r.get_u64("kb size after accept")? as usize;
                Some(AugmentationStep {
                    slice: DiscoveredSlice {
                        source,
                        properties,
                        entities,
                        num_facts,
                        num_new_facts,
                        profit,
                    },
                    facts_added,
                    kb_size,
                })
            }
            other => return Err(corrupt(format!("invalid accepted flag {other}"))),
        };
        let suggest_time = Duration::from_nanos(r.get_u64("suggest nanos")?);
        let suggestions = r.get_u64("suggestion count")? as usize;
        let detect_calls = r.get_u64("detect calls")? as usize;
        let reused_tasks = r.get_u64("reused tasks")? as usize;
        let kb_size = r.get_u64("kb size")? as usize;
        let budget_ms = match r.get_u32("budget flag")? {
            0 => None,
            1 => Some(r.get_u64("budget millis")?),
            other => return Err(corrupt(format!("invalid budget flag {other}"))),
        };
        let n_faults = r.get_u32("quarantine count")? as usize;
        let mut quarantine = Quarantine::new();
        for _ in 0..n_faults {
            let source = r.get_str("fault source")?;
            let stage = match r.get_u32("fault stage")? {
                0 => Stage::Read,
                1 => Stage::Detect,
                2 => Stage::Consolidate,
                other => return Err(corrupt(format!("invalid fault stage {other}"))),
            };
            let cause = match r.get_u32("fault cause tag")? {
                0 => FaultCause::Parse {
                    file: r.get_str("parse file")?,
                    line: r.get_u64("parse line")?,
                    message: r.get_str("parse message")?,
                },
                1 => FaultCause::Panic {
                    message: r.get_str("panic message")?,
                },
                2 => {
                    let kind = match r.get_u32("breach kind")? {
                        0 => BreachKind::Facts,
                        1 => BreachKind::HierarchyNodes,
                        2 => BreachKind::Deadline,
                        3 => BreachKind::Injected,
                        other => return Err(corrupt(format!("invalid breach kind {other}"))),
                    };
                    FaultCause::Budget(BudgetBreach {
                        kind,
                        limit: r.get_u64("breach limit")?,
                        observed: r.get_u64("breach observed")?,
                    })
                }
                other => return Err(corrupt(format!("invalid fault cause tag {other}"))),
            };
            let facts_seen = r.get_u64("fault facts seen")? as usize;
            quarantine.push(SourceFault {
                source,
                stage,
                cause,
                facts_seen,
            });
        }
        rounds.push(AugmentationRound {
            round,
            accepted,
            suggest_time,
            suggestions,
            detect_calls,
            reused_tasks,
            kb_size,
            budget_ms,
            quarantine,
        });
    }
    r.expect_end("checkpoint")?;
    metrics::ROUNDS_REPLAYED.add(rounds.len() as u64);
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_core::MidasConfig;

    fn sample_rounds(terms: &mut Interner) -> Vec<AugmentationRound> {
        let slice = DiscoveredSlice {
            source: SourceUrl::parse("http://a.com/x").unwrap(),
            properties: vec![(terms.intern("category"), terms.intern("rocket_family"))],
            entities: vec![terms.intern("Ariane"), terms.intern("Atlas")],
            num_facts: 7,
            num_new_facts: 4,
            profit: 3.25,
        };
        let mut quarantine = Quarantine::new();
        quarantine.push(SourceFault {
            source: "http://bad.com".to_string(),
            stage: Stage::Consolidate,
            cause: FaultCause::Budget(BudgetBreach {
                kind: BreachKind::HierarchyNodes,
                limit: 100,
                observed: 150,
            }),
            facts_seen: 42,
        });
        vec![
            AugmentationRound {
                round: 1,
                accepted: Some(AugmentationStep {
                    slice,
                    facts_added: 4,
                    kb_size: 14,
                }),
                suggest_time: Duration::from_nanos(123_456),
                suggestions: 3,
                detect_calls: 5,
                reused_tasks: 0,
                kb_size: 14,
                budget_ms: Some(2_500),
                quarantine,
            },
            AugmentationRound {
                round: 2,
                accepted: None,
                suggest_time: Duration::from_nanos(7_890),
                suggestions: 0,
                detect_calls: 1,
                reused_tasks: 4,
                kb_size: 14,
                budget_ms: None,
                quarantine: Quarantine::new(),
            },
        ]
    }

    #[test]
    fn round_trace_round_trips() {
        let dir = std::env::temp_dir().join(format!("midas_ckpt_rt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut terms = Interner::new();
        let rounds = sample_rounds(&mut terms);
        let path = checkpoint_path(&dir, 0xfeed);
        save_rounds(&path, 0xfeed, &terms, &rounds).unwrap();

        // A fresh interner: strings must re-intern, not assume symbol ids.
        let mut terms2 = Interner::new();
        let loaded = load_rounds(&path, 0xfeed, &mut terms2).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].round, 1);
        let step = loaded[0].accepted.as_ref().unwrap();
        assert_eq!(step.facts_added, 4);
        assert_eq!(step.slice.source.as_str(), "http://a.com/x");
        assert_eq!(step.slice.properties.len(), 1);
        let (p, v) = step.slice.properties[0];
        assert_eq!(terms2.resolve(p), "category");
        assert_eq!(terms2.resolve(v), "rocket_family");
        assert_eq!(step.slice.entities.len(), 2);
        assert_eq!(step.slice.profit, 3.25);
        assert_eq!(loaded[0].suggest_time, Duration::from_nanos(123_456));
        assert_eq!(loaded[0].quarantine.len(), 1);
        let fault = loaded[0].quarantine.iter().next().unwrap();
        assert_eq!(fault.stage, Stage::Consolidate);
        assert_eq!(fault.cause.tag(), "budget");
        assert_eq!(fault.facts_seen, 42);
        assert_eq!(loaded[0].budget_ms, Some(2_500));
        assert!(loaded[1].accepted.is_none());
        assert_eq!(loaded[1].reused_tasks, 4);
        assert_eq!(loaded[1].budget_ms, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_log_matches_full_reencode_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!("midas_ckpt_log_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut terms = Interner::new();
        let rounds = sample_rounds(&mut terms);

        // Append one round at a time, saving after each — the way the
        // augmentation loop drives the log — and compare every save
        // against the one-shot full re-encode of the same prefix.
        let inc_path = checkpoint_path(&dir, 0xabcd);
        let full_path = dir.join("full.ckpt");
        let mut log = RoundLog::new();
        assert!(log.is_empty());
        for i in 0..rounds.len() {
            log.append(&terms, &rounds[i]);
            assert_eq!(log.len(), i + 1);
            log.save(&inc_path, 0xabcd).unwrap();
            save_rounds(&full_path, 0xabcd, &terms, &rounds[..=i]).unwrap();
            assert_eq!(
                std::fs::read(&inc_path).unwrap(),
                std::fs::read(&full_path).unwrap(),
                "incremental save diverged from full re-encode at round {i}"
            );
        }

        // A log seeded from a replayed prefix continues the same stream.
        let mut seeded = RoundLog::from_rounds(&terms, &rounds[..1]);
        seeded.append(&terms, &rounds[1]);
        seeded.save(&inc_path, 0xabcd).unwrap();
        assert_eq!(
            std::fs::read(&inc_path).unwrap(),
            std::fs::read(&full_path).unwrap(),
            "prefix-seeded log diverged"
        );

        // And the incremental bytes load back into the same trace.
        let mut terms2 = Interner::new();
        let loaded = load_rounds(&inc_path, 0xabcd, &mut terms2).unwrap();
        assert_eq!(loaded.len(), rounds.len());
        assert_eq!(loaded[1].round, rounds[1].round);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_and_corruption_fail_closed() {
        let dir = std::env::temp_dir().join(format!("midas_ckpt_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut terms = Interner::new();
        let rounds = sample_rounds(&mut terms);
        let path = checkpoint_path(&dir, 1);
        save_rounds(&path, 1, &terms, &rounds).unwrap();

        let mut t2 = Interner::new();
        assert!(matches!(
            load_rounds(&path, 2, &mut t2),
            Err(SnapshotError::KeyMismatch { .. })
        ));

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_rounds(&path, 1, &mut t2).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_key_tracks_every_deterministic_knob() {
        let cost = MidasConfig::running_example().cost;
        let unlimited = SourceBudget::unlimited();
        let base = checkpoint_key(7, &cost, &unlimited);
        assert_eq!(base, checkpoint_key(7, &cost, &unlimited), "stable");
        assert_ne!(base, checkpoint_key(8, &cost, &unlimited), "corpus key");
        let mut cost2 = cost;
        cost2.fp += 1.0;
        assert_ne!(base, checkpoint_key(7, &cost2, &unlimited), "cost model");
        let capped = SourceBudget::unlimited().with_max_facts(100);
        assert_ne!(base, checkpoint_key(7, &cost, &capped), "budget caps");
    }
}
