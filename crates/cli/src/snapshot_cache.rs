//! `--snapshot-cache`: content-addressed corpus snapshots for the CLI.
//!
//! The cache key hashes the raw facts and kb file bytes together with the
//! snapshot format version ([`midas_extract::cachekey`]), so any edit to
//! either input, or a format bump, addresses a different snapshot file. A
//! hit memory-maps the snapshot and skips TSV parsing, sorting, and
//! fact-table construction entirely; a miss parses and builds as usual,
//! then writes the snapshot for the next run. A stale or damaged snapshot
//! is never trusted: it is moved into the cache's `quarantine/` subdirectory
//! with a reason file ([`crate::cache_dir::CacheDir::quarantine`]) and the
//! run falls back to cold extraction (mirroring the quarantine philosophy —
//! degrade loudly, never abort, never corrupt results).
//!
//! The directory is safe to share between concurrent processes: all access
//! goes through [`CacheDir`]'s advisory locks (shared to read, exclusive to
//! write/evict/quarantine), and every file is written via the
//! crash-consistent rename path. An entry evicted while another process has
//! it mapped stays valid — the unlink removes the name, the inode lives on
//! under the mapping.
//!
//! Lenient ingestion and armed fault-injection plans bypass the cache: both
//! can drop records or whole sources at parse time, and a snapshot of a
//! partial corpus keyed only by input bytes would replay those drops into
//! runs that did not ask for them.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::args::CliError;
use crate::cache_dir::CacheDir;
use crate::facts_io;
use midas_core::telemetry;
use midas_core::{
    faultinject, snapshot, CostModel, DiscoveredSlice, FactTable, SourceFacts, SourceFault,
};
use midas_extract::CacheKey;
use midas_kb::{Interner, KnowledgeBase};
use midas_weburl::SourceUrl;
use std::collections::BTreeMap;

/// Cache traffic counters. Byte volumes are sampled from file metadata and
/// only when telemetry is enabled (the extra stat is not free); the event
/// counters mirror the human-readable notes one-for-one, so a metrics
/// snapshot reconciles with the note trailer of the same run.
mod metrics {
    midas_core::counter!(pub HITS, "snapshot_cache.hits");
    midas_core::counter!(pub MISSES, "snapshot_cache.misses");
    midas_core::counter!(pub STALE, "snapshot_cache.stale");
    midas_core::counter!(pub HEALS, "snapshot_cache.heals");
    midas_core::counter!(pub EVICTIONS, "snapshot_cache.evictions");
    midas_core::counter!(pub BYPASSES, "snapshot_cache.bypasses");
    midas_core::counter!(pub SLICE_HITS, "snapshot_cache.slice_hits");
    midas_core::counter!(pub SLICE_WRITES, "snapshot_cache.slice_writes");
    midas_core::counter!(pub BYTES_READ, "snapshot_cache.bytes_read");
    midas_core::counter!(pub BYTES_WRITTEN, "snapshot_cache.bytes_written");
}

/// Records the on-disk size of `path` into `sink` (telemetry-enabled runs
/// only; the stat call is skipped otherwise).
fn record_entry_bytes(path: &std::path::Path, sink: &'static midas_core::telemetry::Counter) {
    if telemetry::enabled() {
        if let Ok(meta) = std::fs::metadata(path) {
            sink.add(meta.len());
        }
    }
}

/// An open snapshot-cache directory plus the corpus key of the current run:
/// everything later stages (slice caching, augmentation checkpoints) need
/// to address and maintain their own entries.
pub struct CacheSession {
    /// The locked-access directory handle.
    pub dir: CacheDir,
    /// Cache key of this run's corpus (facts + kb bytes + format version).
    pub corpus_key: u64,
    /// `--snapshot-cache-max-bytes`: total `.snap` size cap, if any.
    pub max_bytes: Option<u64>,
}

impl CacheSession {
    /// Enforces the size cap (if configured), never evicting `keep`.
    /// Eviction failure degrades to a note — an over-full cache is not a
    /// reason to fail a run that already has its results.
    pub fn enforce_cap(&self, keep: &str, notes: &mut Vec<String>) {
        let Some(max) = self.max_bytes else { return };
        match self.dir.evict(max, keep) {
            Ok(evicted) if evicted.is_empty() => {}
            Ok(evicted) => {
                metrics::EVICTIONS.add(evicted.len() as u64);
                notes.push(format!(
                    "snapshot cache: evicted {} (cap {max} bytes)",
                    evicted.join(", ")
                ));
            }
            Err(e) => notes.push(format!("snapshot cache: eviction failed: {e}")),
        }
    }
}

/// Everything a run needs, plus (on the cached path) prebuilt round-0 fact
/// tables and human-readable notes about cache activity.
pub struct LoadedInputs {
    /// The shared interner.
    pub terms: Interner,
    /// Per-source fact sets.
    pub sources: Vec<SourceFacts>,
    /// The knowledge base to augment.
    pub kb: KnowledgeBase,
    /// Faults quarantined while reading (lenient mode only).
    pub read_faults: Vec<SourceFault>,
    /// Prebuilt fact tables keyed by source URL, when the snapshot path was
    /// taken (hit or freshly written miss). `None` on the plain cold path.
    pub tables: Option<BTreeMap<SourceUrl, FactTable>>,
    /// Cache activity notes for the operator (hits, bypasses, fallbacks).
    pub notes: Vec<String>,
    /// The open cache directory, when the snapshot path was taken. Carries
    /// the corpus key forward for slice caching and checkpoints.
    pub session: Option<CacheSession>,
}

/// The snapshot file name addressing a corpus cache key.
pub fn snapshot_name(key: u64) -> String {
    format!("midas-{key:016x}.snap")
}

/// Derives the key addressing a cached slice report: the corpus plus every
/// knob that changes which slices the algorithm reports. Rendering flags
/// (`--top`, `--csv`, `--explain`) and schedule knobs (`--threads`,
/// `--stream-window`) are excluded — they do not affect the slice set.
pub fn slices_key(corpus_key: u64, algorithm: &str, cost: &CostModel) -> u64 {
    CacheKey::new()
        .part("corpus", &corpus_key.to_le_bytes())
        .part("algorithm", algorithm.as_bytes())
        .part("fp", &cost.fp.to_bits().to_le_bytes())
        .part("fc", &cost.fc.to_bits().to_le_bytes())
        .part("fd", &cost.fd.to_bits().to_le_bytes())
        .part("fv", &cost.fv.to_bits().to_le_bytes())
        .part("kind", b"slices")
        .finish()
}

/// The slice-report file name addressing a slices cache key.
pub fn slices_name(key: u64) -> String {
    format!("midas-{key:016x}-slices.snap")
}

/// Loads a cached slice report, or `None` on miss. A damaged or stale-keyed
/// report is quarantined (with a note) and treated as a miss.
pub fn load_cached_slices(
    session: &CacheSession,
    key: u64,
    terms: &mut Interner,
    notes: &mut Vec<String>,
) -> Option<Vec<DiscoveredSlice>> {
    let name = slices_name(key);
    let path = session.dir.entry_path(&name);
    let failure;
    {
        let _read = session.dir.shared().ok()?;
        if !path.exists() {
            return None;
        }
        match snapshot::load_slices(&path, key, terms) {
            Ok(slices) => {
                drop(_read);
                if let Ok(_write) = session.dir.exclusive() {
                    if let Err(e) = session.dir.touch(&name) {
                        notes.push(format!("snapshot cache: manifest update failed: {e}"));
                    }
                }
                metrics::SLICE_HITS.inc();
                record_entry_bytes(&path, &metrics::BYTES_READ);
                notes.push(format!("slice cache hit: {}", path.display()));
                return Some(slices);
            }
            Err(e) => failure = Some(e.to_string()),
        }
    }
    if let Some(reason) = failure {
        quarantine_entry(&session.dir, &name, &reason, notes);
    }
    None
}

/// Persists a slice report for future identical runs, then enforces the
/// size cap. Failures degrade to notes.
pub fn store_slices(
    session: &CacheSession,
    key: u64,
    terms: &Interner,
    slices: &[DiscoveredSlice],
    notes: &mut Vec<String>,
) {
    let name = slices_name(key);
    let path = session.dir.entry_path(&name);
    let Ok(_write) = session.dir.exclusive() else {
        notes.push("snapshot cache: could not lock for slice write".to_owned());
        return;
    };
    if let Err(e) = snapshot::save_slices(&path, key, terms, slices) {
        notes.push(format!(
            "snapshot cache: failed to write {}: {e}",
            path.display()
        ));
        return;
    }
    if let Err(e) = session.dir.touch(&name) {
        notes.push(format!("snapshot cache: manifest update failed: {e}"));
    }
    metrics::SLICE_WRITES.inc();
    record_entry_bytes(&path, &metrics::BYTES_WRITTEN);
    notes.push(format!("slice cache write: {}", path.display()));
    session.enforce_cap(&name, notes);
}

/// Quarantines a damaged cache entry under the exclusive lock, noting the
/// outcome either way.
fn quarantine_entry(cache: &CacheDir, name: &str, reason: &str, notes: &mut Vec<String>) {
    metrics::STALE.inc();
    let quarantined = cache
        .exclusive()
        .and_then(|_write| cache.quarantine(name, reason));
    match quarantined {
        Ok(dest) => notes.push(format!(
            "snapshot cache: quarantined {} ({reason}); re-extracting",
            dest.display()
        )),
        Err(e) => notes.push(format!(
            "snapshot cache: ignoring {name} ({reason}); quarantine failed: {e}"
        )),
    }
}

/// Loads facts + kb, going through the snapshot cache when `cache_dir` is
/// set and the run is strict (no lenient ingestion, no armed fault plan).
pub fn load_inputs_cached(
    facts_path: &str,
    kb_path: Option<&str>,
    lenient: bool,
    cache_dir: Option<&str>,
    max_bytes: Option<u64>,
) -> Result<LoadedInputs, CliError> {
    let Some(dir) = cache_dir else {
        return load_cold(facts_path, kb_path, lenient, Vec::new());
    };
    if lenient {
        metrics::BYPASSES.inc();
        return load_cold(
            facts_path,
            kb_path,
            lenient,
            vec!["snapshot cache bypassed: --lenient runs are not cacheable".to_owned()],
        );
    }
    if faultinject::armed() {
        metrics::BYPASSES.inc();
        return load_cold(
            facts_path,
            kb_path,
            lenient,
            vec!["snapshot cache bypassed: fault-injection plan armed".to_owned()],
        );
    }
    let cache = match CacheDir::open(dir) {
        Ok(cache) => cache,
        Err(e) => {
            return load_cold(
                facts_path,
                kb_path,
                lenient,
                vec![format!("snapshot cache unavailable ({dir}): {e}")],
            );
        }
    };
    let mut notes = Vec::new();

    // Opportunistic hygiene: clear temp files of writers that died before
    // their rename. Never blocks the run.
    if let Ok(_write) = cache.exclusive() {
        match cache.sweep_orphans() {
            Ok(swept) if !swept.is_empty() => {
                notes.push(format!(
                    "snapshot cache: swept orphans {}",
                    swept.join(", ")
                ));
            }
            _ => {}
        }
    }

    let facts_bytes = std::fs::read(facts_path)?;
    let kb_bytes = match kb_path {
        Some(p) => std::fs::read(p)?,
        None => Vec::new(),
    };
    let key = CacheKey::new()
        .part("facts", &facts_bytes)
        .part("kb", &kb_bytes)
        .part("config", b"strict")
        .finish();
    let name = snapshot_name(key);
    let path = cache.entry_path(&name);

    let mut hit = None;
    let mut failure = None;
    if let Ok(_read) = cache.shared() {
        if path.exists() {
            match snapshot::load_corpus(&path, key) {
                Ok(corpus) => hit = Some(corpus),
                Err(e) => failure = Some(e.to_string()),
            }
        }
    }
    let healing = failure.is_some();
    if let Some(reason) = failure {
        quarantine_entry(&cache, &name, &reason, &mut notes);
    }
    let session = CacheSession {
        dir: cache,
        corpus_key: key,
        max_bytes,
    };
    if let Some(corpus) = hit {
        metrics::HITS.inc();
        record_entry_bytes(&path, &metrics::BYTES_READ);
        if let Ok(_write) = session.dir.exclusive() {
            if let Err(e) = session.dir.touch(&name) {
                notes.push(format!("snapshot cache: manifest update failed: {e}"));
            }
            session.enforce_cap(&name, &mut notes);
        }
        let tables = corpus
            .sources
            .iter()
            .map(|s| s.url.clone())
            .zip(corpus.tables)
            .collect();
        notes.push(format!("snapshot cache hit: {}", path.display()));
        return Ok(LoadedInputs {
            terms: corpus.terms,
            sources: corpus.sources,
            kb: corpus.kb,
            read_faults: Vec::new(),
            tables: Some(tables),
            notes,
            session: Some(session),
        });
    }

    // Miss (or quarantined snapshot): parse the bytes already in memory,
    // build the round-0 tables once, and persist them for the next run. The
    // tables feed straight into the run, so the build is not extra work.
    metrics::MISSES.inc();
    let mut terms = Interner::new();
    let sources = facts_io::read_facts(&facts_bytes[..], &mut terms)?;
    let kb = if kb_bytes.is_empty() {
        KnowledgeBase::new()
    } else {
        facts_io::read_kb(&kb_bytes[..], &mut terms)?
    };
    let tables: Vec<FactTable> = sources.iter().map(|s| FactTable::build(s, &kb)).collect();
    {
        let lock = session.dir.exclusive();
        match lock {
            Ok(_write) => {
                if let Err(e) = snapshot::save_corpus(&path, key, &terms, &sources, &kb, &tables) {
                    notes.push(format!(
                        "snapshot cache: failed to write {}: {e}",
                        path.display()
                    ));
                } else {
                    if healing {
                        metrics::HEALS.inc();
                    }
                    record_entry_bytes(&path, &metrics::BYTES_WRITTEN);
                    if let Err(e) = session.dir.touch(&name) {
                        notes.push(format!("snapshot cache: manifest update failed: {e}"));
                    }
                    notes.push(format!("snapshot cache write: {}", path.display()));
                    session.enforce_cap(&name, &mut notes);
                }
            }
            Err(e) => notes.push(format!("snapshot cache: could not lock for write: {e}")),
        }
    }
    let tables = sources.iter().map(|s| s.url.clone()).zip(tables).collect();
    Ok(LoadedInputs {
        terms,
        sources,
        kb,
        read_faults: Vec::new(),
        tables: Some(tables),
        notes,
        session: Some(session),
    })
}

fn load_cold(
    facts_path: &str,
    kb_path: Option<&str>,
    lenient: bool,
    notes: Vec<String>,
) -> Result<LoadedInputs, CliError> {
    let mut terms = Interner::new();
    let reader = std::io::BufReader::new(std::fs::File::open(facts_path)?);
    let (sources, read_faults) = if lenient {
        facts_io::read_facts_lenient(reader, &mut terms, facts_path)?
    } else {
        (facts_io::read_facts(reader, &mut terms)?, Vec::new())
    };
    let kb = match kb_path {
        Some(p) => facts_io::read_kb(std::io::BufReader::new(std::fs::File::open(p)?), &mut terms)?,
        None => KnowledgeBase::new(),
    };
    Ok(LoadedInputs {
        terms,
        sources,
        kb,
        read_faults,
        tables: None,
        notes,
        session: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_dir::QUARANTINE_DIR;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("midas_snapcache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_corpus(dir: &std::path::Path) -> (String, String) {
        let facts = dir.join("facts.tsv");
        let kb = dir.join("kb.tsv");
        std::fs::write(
            &facts,
            "http://a.com/x\te1\tp\tv1\nhttp://a.com/y\te2\tp\tv2\nhttp://b.com\te3\tq\tv3\n",
        )
        .unwrap();
        std::fs::write(&kb, "e1\tp\tv1\n").unwrap();
        (
            facts.to_str().unwrap().to_owned(),
            kb.to_str().unwrap().to_owned(),
        )
    }

    fn load(facts: &str, kb: &str, lenient: bool, cache: &str) -> LoadedInputs {
        load_inputs_cached(facts, Some(kb), lenient, Some(cache), None).unwrap()
    }

    #[test]
    fn miss_writes_then_hit_maps_the_same_corpus() {
        let dir = tmpdir("misshit");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);

        let cold = load(&facts, &kb, false, cache_s);
        assert!(
            cold.notes.iter().any(|n| n.contains("write")),
            "{:?}",
            cold.notes
        );
        assert!(cold.tables.is_some());
        let session = cold.session.as_ref().unwrap();
        assert_eq!(session.dir.root(), cache.as_path());
        assert_eq!(
            session.dir.read_manifest().len(),
            1,
            "the write is recorded in the manifest"
        );

        let warm = load(&facts, &kb, false, cache_s);
        assert!(
            warm.notes.iter().any(|n| n.contains("hit")),
            "{:?}",
            warm.notes
        );
        let tables = warm.tables.as_ref().unwrap();
        assert_eq!(tables.len(), 3);
        assert!(tables.values().all(FactTable::is_mapped));
        assert_eq!(warm.sources.len(), cold.sources.len());
        for (a, b) in warm.sources.iter().zip(&cold.sources) {
            assert_eq!(a.url, b.url);
            assert_eq!(&a.facts[..], &b.facts[..]);
        }
        assert_eq!(warm.kb.len(), cold.kb.len());
        assert_eq!(warm.terms.len(), cold.terms.len());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn editing_an_input_addresses_a_new_snapshot() {
        let dir = tmpdir("invalidate");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);

        load(&facts, &kb, false, cache_s);
        let count_snaps = |cache: &std::path::Path| {
            std::fs::read_dir(cache)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .ends_with(".snap")
                })
                .count()
        };
        assert_eq!(count_snaps(&cache), 1);

        // Appending a fact changes the key: the next run misses and writes
        // a second snapshot; the edited corpus is what gets loaded.
        let mut contents = std::fs::read_to_string(&facts).unwrap();
        contents.push_str("http://b.com\te4\tq\tv4\n");
        std::fs::write(&facts, contents).unwrap();
        let after = load(&facts, &kb, false, cache_s);
        assert!(
            after.notes.iter().any(|n| n.contains("write")),
            "{:?}",
            after.notes
        );
        assert_eq!(count_snaps(&cache), 2);
        assert_eq!(
            after.sources.iter().map(|s| s.len()).sum::<usize>(),
            4,
            "the edited corpus is served, not the stale snapshot"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_with_a_reason_and_healed() {
        let dir = tmpdir("corrupt");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);

        load(&facts, &kb, false, cache_s);
        let snap = std::fs::read_dir(&cache)
            .unwrap()
            .map(|e| e.unwrap())
            .find(|e| e.file_name().to_string_lossy().ends_with(".snap"))
            .unwrap();
        let snap_name = snap.file_name().to_string_lossy().into_owned();
        let mut bytes = std::fs::read(snap.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(snap.path(), &bytes).unwrap();

        let healed = load(&facts, &kb, false, cache_s);
        assert!(
            healed.notes.iter().any(|n| n.contains("quarantined")),
            "fallback is noted: {:?}",
            healed.notes
        );
        assert!(
            healed.notes.iter().any(|n| n.contains("write")),
            "snapshot is rewritten: {:?}",
            healed.notes
        );
        assert_eq!(healed.sources.len(), 3);

        // The torn bytes and the reason are preserved as evidence.
        let qdir = cache.join(QUARANTINE_DIR);
        assert_eq!(std::fs::read(qdir.join(&snap_name)).unwrap(), bytes);
        let reason = std::fs::read_to_string(qdir.join(format!("{snap_name}.reason"))).unwrap();
        assert!(!reason.trim().is_empty());

        // And the heal produced a loadable replacement.
        let again = load(&facts, &kb, false, cache_s);
        assert!(again.notes.iter().any(|n| n.contains("hit")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lenient_runs_bypass_with_a_note() {
        let dir = tmpdir("lenient");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);
        let loaded = load(&facts, &kb, true, cache_s);
        assert!(loaded.tables.is_none());
        assert!(loaded.session.is_none());
        assert!(
            loaded.notes.iter().any(|n| n.contains("bypassed")),
            "{:?}",
            loaded.notes
        );
        assert!(!cache.exists(), "no snapshot is written on the bypass path");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_evicts_older_snapshots() {
        let dir = tmpdir("cap");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);

        load(&facts, &kb, false, cache_s);
        std::thread::sleep(std::time::Duration::from_millis(3));
        let mut contents = std::fs::read_to_string(&facts).unwrap();
        contents.push_str("http://b.com\te4\tq\tv4\n");
        std::fs::write(&facts, contents).unwrap();

        // Cap of 1 byte: writing the second snapshot must evict the first
        // (LRU) while keeping the entry the run just produced.
        let capped = load_inputs_cached(&facts, Some(&kb), false, Some(cache_s), Some(1)).unwrap();
        assert!(
            capped.notes.iter().any(|n| n.contains("evicted")),
            "{:?}",
            capped.notes
        );
        let snaps: Vec<String> = std::fs::read_dir(&cache)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".snap"))
            .collect();
        assert_eq!(snaps.len(), 1, "only the just-written snapshot survives");
        let session = capped.session.as_ref().unwrap();
        assert_eq!(snaps[0], snapshot_name(session.corpus_key));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slice_reports_round_trip_through_the_cache() {
        let dir = tmpdir("slices");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);
        let mut loaded = load(&facts, &kb, false, cache_s);
        let session = loaded.session.as_ref().unwrap();
        let cost = CostModel::default();
        let key = slices_key(session.corpus_key, "midas", &cost);
        assert_ne!(
            key,
            slices_key(session.corpus_key, "greedy", &cost),
            "algorithm is part of the key"
        );

        let mut notes = Vec::new();
        assert!(
            load_cached_slices(session, key, &mut loaded.terms, &mut notes).is_none(),
            "cold: no report yet"
        );
        let slices = vec![DiscoveredSlice {
            source: SourceUrl::parse("http://a.com").unwrap(),
            properties: vec![(loaded.terms.intern("p"), loaded.terms.intern("v1"))],
            entities: vec![loaded.terms.intern("e1")],
            num_facts: 2,
            num_new_facts: 1,
            profit: 1.5,
        }];
        store_slices(session, key, &loaded.terms, &slices, &mut notes);
        assert!(notes.iter().any(|n| n.contains("slice cache write")));

        let cached = load_cached_slices(session, key, &mut loaded.terms, &mut notes)
            .expect("warm: report served");
        assert_eq!(cached, slices);
        assert!(notes.iter().any(|n| n.contains("slice cache hit")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
