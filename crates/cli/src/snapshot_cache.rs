//! `--snapshot-cache`: content-addressed corpus snapshots for the CLI.
//!
//! The cache key hashes the raw facts and kb file bytes together with the
//! snapshot format version ([`midas_extract::cachekey`]), so any edit to
//! either input, or a format bump, addresses a different snapshot file. A
//! hit memory-maps the snapshot and skips TSV parsing, sorting, and
//! fact-table construction entirely; a miss parses and builds as usual,
//! then writes the snapshot for the next run. A stale or damaged snapshot
//! is never trusted: it is reported as a note and the run falls back to
//! cold extraction (mirroring the quarantine philosophy — degrade loudly,
//! never abort, never corrupt results).
//!
//! Lenient ingestion and armed fault-injection plans bypass the cache: both
//! can drop records or whole sources at parse time, and a snapshot of a
//! partial corpus keyed only by input bytes would replay those drops into
//! runs that did not ask for them.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::args::CliError;
use crate::facts_io;
use midas_core::{faultinject, snapshot, FactTable, SourceFacts, SourceFault};
use midas_extract::CacheKey;
use midas_kb::{Interner, KnowledgeBase};
use midas_weburl::SourceUrl;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Everything a run needs, plus (on the cached path) prebuilt round-0 fact
/// tables and human-readable notes about cache activity.
pub struct LoadedInputs {
    /// The shared interner.
    pub terms: Interner,
    /// Per-source fact sets.
    pub sources: Vec<SourceFacts>,
    /// The knowledge base to augment.
    pub kb: KnowledgeBase,
    /// Faults quarantined while reading (lenient mode only).
    pub read_faults: Vec<SourceFault>,
    /// Prebuilt fact tables keyed by source URL, when the snapshot path was
    /// taken (hit or freshly written miss). `None` on the plain cold path.
    pub tables: Option<BTreeMap<SourceUrl, FactTable>>,
    /// Cache activity notes for the operator (hits, bypasses, fallbacks).
    pub notes: Vec<String>,
}

/// The snapshot file addressing a cache key inside `dir`.
fn snapshot_path(dir: &str, key: u64) -> PathBuf {
    PathBuf::from(dir).join(format!("midas-{key:016x}.snap"))
}

/// Loads facts + kb, going through the snapshot cache when `cache_dir` is
/// set and the run is strict (no lenient ingestion, no armed fault plan).
pub fn load_inputs_cached(
    facts_path: &str,
    kb_path: Option<&str>,
    lenient: bool,
    cache_dir: Option<&str>,
) -> Result<LoadedInputs, CliError> {
    let Some(dir) = cache_dir else {
        return load_cold(facts_path, kb_path, lenient, Vec::new());
    };
    if lenient {
        return load_cold(
            facts_path,
            kb_path,
            lenient,
            vec!["snapshot cache bypassed: --lenient runs are not cacheable".to_owned()],
        );
    }
    if faultinject::armed() {
        return load_cold(
            facts_path,
            kb_path,
            lenient,
            vec!["snapshot cache bypassed: fault-injection plan armed".to_owned()],
        );
    }

    let facts_bytes = std::fs::read(facts_path)?;
    let kb_bytes = match kb_path {
        Some(p) => std::fs::read(p)?,
        None => Vec::new(),
    };
    let key = CacheKey::new()
        .part("facts", &facts_bytes)
        .part("kb", &kb_bytes)
        .part("config", b"strict")
        .finish();
    let path = snapshot_path(dir, key);
    let mut notes = Vec::new();

    if path.exists() {
        match snapshot::load_corpus(&path, key) {
            Ok(corpus) => {
                let tables = corpus
                    .sources
                    .iter()
                    .map(|s| s.url.clone())
                    .zip(corpus.tables)
                    .collect();
                notes.push(format!("snapshot cache hit: {}", path.display()));
                return Ok(LoadedInputs {
                    terms: corpus.terms,
                    sources: corpus.sources,
                    kb: corpus.kb,
                    read_faults: Vec::new(),
                    tables: Some(tables),
                    notes,
                });
            }
            Err(e) => {
                notes.push(format!(
                    "snapshot cache: ignoring {}: {e}; re-extracting",
                    path.display()
                ));
            }
        }
    }

    // Miss (or unusable snapshot): parse the bytes already in memory, build
    // the round-0 tables once, and persist them for the next run. The
    // tables feed straight into the run, so the build is not extra work.
    let mut terms = Interner::new();
    let sources = facts_io::read_facts(&facts_bytes[..], &mut terms)?;
    let kb = if kb_bytes.is_empty() {
        KnowledgeBase::new()
    } else {
        facts_io::read_kb(&kb_bytes[..], &mut terms)?
    };
    let tables: Vec<FactTable> = sources.iter().map(|s| FactTable::build(s, &kb)).collect();
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| snapshot::save_corpus(&path, key, &terms, &sources, &kb, &tables))
    {
        notes.push(format!(
            "snapshot cache: failed to write {}: {e}",
            path.display()
        ));
    } else {
        notes.push(format!("snapshot cache write: {}", path.display()));
    }
    let tables = sources.iter().map(|s| s.url.clone()).zip(tables).collect();
    Ok(LoadedInputs {
        terms,
        sources,
        kb,
        read_faults: Vec::new(),
        tables: Some(tables),
        notes,
    })
}

fn load_cold(
    facts_path: &str,
    kb_path: Option<&str>,
    lenient: bool,
    notes: Vec<String>,
) -> Result<LoadedInputs, CliError> {
    let mut terms = Interner::new();
    let reader = std::io::BufReader::new(std::fs::File::open(facts_path)?);
    let (sources, read_faults) = if lenient {
        facts_io::read_facts_lenient(reader, &mut terms, facts_path)?
    } else {
        (facts_io::read_facts(reader, &mut terms)?, Vec::new())
    };
    let kb = match kb_path {
        Some(p) => facts_io::read_kb(std::io::BufReader::new(std::fs::File::open(p)?), &mut terms)?,
        None => KnowledgeBase::new(),
    };
    Ok(LoadedInputs {
        terms,
        sources,
        kb,
        read_faults,
        tables: None,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("midas_snapcache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_corpus(dir: &std::path::Path) -> (String, String) {
        let facts = dir.join("facts.tsv");
        let kb = dir.join("kb.tsv");
        std::fs::write(
            &facts,
            "http://a.com/x\te1\tp\tv1\nhttp://a.com/y\te2\tp\tv2\nhttp://b.com\te3\tq\tv3\n",
        )
        .unwrap();
        std::fs::write(&kb, "e1\tp\tv1\n").unwrap();
        (
            facts.to_str().unwrap().to_owned(),
            kb.to_str().unwrap().to_owned(),
        )
    }

    #[test]
    fn miss_writes_then_hit_maps_the_same_corpus() {
        let dir = tmpdir("misshit");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);

        let cold = load_inputs_cached(&facts, Some(&kb), false, Some(cache_s)).unwrap();
        assert!(
            cold.notes.iter().any(|n| n.contains("write")),
            "{:?}",
            cold.notes
        );
        assert!(cold.tables.is_some());

        let warm = load_inputs_cached(&facts, Some(&kb), false, Some(cache_s)).unwrap();
        assert!(
            warm.notes.iter().any(|n| n.contains("hit")),
            "{:?}",
            warm.notes
        );
        let tables = warm.tables.as_ref().unwrap();
        assert_eq!(tables.len(), 3);
        assert!(tables.values().all(FactTable::is_mapped));
        assert_eq!(warm.sources.len(), cold.sources.len());
        for (a, b) in warm.sources.iter().zip(&cold.sources) {
            assert_eq!(a.url, b.url);
            assert_eq!(&a.facts[..], &b.facts[..]);
        }
        assert_eq!(warm.kb.len(), cold.kb.len());
        assert_eq!(warm.terms.len(), cold.terms.len());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn editing_an_input_addresses_a_new_snapshot() {
        let dir = tmpdir("invalidate");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);

        load_inputs_cached(&facts, Some(&kb), false, Some(cache_s)).unwrap();
        assert_eq!(std::fs::read_dir(&cache).unwrap().count(), 1);

        // Appending a fact changes the key: the next run misses and writes
        // a second snapshot; the edited corpus is what gets loaded.
        let mut contents = std::fs::read_to_string(&facts).unwrap();
        contents.push_str("http://b.com\te4\tq\tv4\n");
        std::fs::write(&facts, contents).unwrap();
        let after = load_inputs_cached(&facts, Some(&kb), false, Some(cache_s)).unwrap();
        assert!(
            after.notes.iter().any(|n| n.contains("write")),
            "{:?}",
            after.notes
        );
        assert_eq!(std::fs::read_dir(&cache).unwrap().count(), 2);
        assert_eq!(
            after.sources.iter().map(|s| s.len()).sum::<usize>(),
            4,
            "the edited corpus is served, not the stale snapshot"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_and_heals() {
        let dir = tmpdir("corrupt");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);

        load_inputs_cached(&facts, Some(&kb), false, Some(cache_s)).unwrap();
        let snap = std::fs::read_dir(&cache).unwrap().next().unwrap().unwrap();
        let mut bytes = std::fs::read(snap.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(snap.path(), &bytes).unwrap();

        let healed = load_inputs_cached(&facts, Some(&kb), false, Some(cache_s)).unwrap();
        assert!(
            healed.notes.iter().any(|n| n.contains("ignoring")),
            "fallback is noted: {:?}",
            healed.notes
        );
        assert!(
            healed.notes.iter().any(|n| n.contains("write")),
            "snapshot is rewritten: {:?}",
            healed.notes
        );
        assert_eq!(healed.sources.len(), 3);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lenient_runs_bypass_with_a_note() {
        let dir = tmpdir("lenient");
        let cache = dir.join("cache");
        let cache_s = cache.to_str().unwrap();
        let (facts, kb) = write_corpus(&dir);
        let loaded = load_inputs_cached(&facts, Some(&kb), true, Some(cache_s)).unwrap();
        assert!(loaded.tables.is_none());
        assert!(
            loaded.notes.iter().any(|n| n.contains("bypassed")),
            "{:?}",
            loaded.notes
        );
        assert!(!cache.exists(), "no snapshot is written on the bypass path");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
