//! Hand-rolled argument parsing (no external dependencies).

use std::fmt;

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the message explains what and shows usage.
    Usage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data file failed to parse.
    Data(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Data(m) => write!(f, "data error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
midas — web source slice discovery (ICDE 2019 reproduction)

USAGE:
  midas discover --facts FILE [--kb FILE] [--algorithm midas|greedy|aggcluster|naive]
                 [--threads N] [--top K] [--fp X] [--fc X] [--fd X] [--fv X]
                 [--csv] [--explain] [CACHING] [ROBUSTNESS]
  midas stats    --facts FILE
  midas generate --dataset synthetic|reverb-slim|nell-slim|kvault
                 [--scale X] [--seed N] --out DIR
  midas eval     --facts FILE --gold FILE [--kb FILE] [--algorithm NAME] [--threads N]
                 [CACHING] [ROBUSTNESS]
  midas augment  --facts FILE [--kb FILE] [--rounds N] [--threads N]
                 [--fp X] [--fc X] [--fd X] [--fv X] [--resume] [CACHING] [ROBUSTNESS]

CACHING (discover, eval, augment):
  --snapshot-cache DIR     reuse parsed corpora across runs. The facts and kb
                           files are hashed together with the snapshot format
                           version; a hit memory-maps the matching snapshot in
                           DIR (skipping parsing and fact-table construction),
                           a miss extracts as usual and writes the snapshot.
                           Stale, truncated, or corrupt snapshots are moved to
                           DIR/quarantine (with a reason file) and rebuilt.
                           Results are bit-identical to uncached runs. Ignored
                           under --lenient (faulty corpora are not cacheable).
                           The directory is multi-process safe: writes are
                           crash-consistent (temp file + fsync + rename + dir
                           fsync) and guarded by advisory file locks, so
                           concurrent runs may share one DIR. `discover` also
                           caches its slice report, so a repeated run with
                           identical inputs and cost model skips detection
                           entirely; `augment` checkpoints each completed
                           round for --resume.
  --snapshot-cache-max-bytes N
                           cap the total size of `.snap` entries in DIR;
                           least-recently-used entries are evicted first (the
                           entry the current run uses is never evicted, and
                           augmentation checkpoints are exempt).
  --resume (augment only)  continue from the last durable checkpointed round
                           of a previous identical `augment` run (requires
                           --snapshot-cache). Completed rounds are replayed
                           from the checkpoint; output is bit-identical to an
                           uninterrupted run. Each round records the
                           --source-deadline-ms it ran under; resuming with a
                           different deadline restarts from round 1 instead
                           of replaying (wall-clock quarantines only
                           reproduce under the budget that made them).

OBSERVABILITY (all subcommands):
  --metrics-json PATH      write a versioned JSON snapshot of every internal
                           counter and histogram to PATH at exit (schema
                           `midas.metrics/v1`; diff two runs with
                           scripts/metrics_compare.py)
  --verbose-stats          print a compact metrics table after the normal
                           output (emitted as `#` comments in --csv mode)
  The MIDAS_TRACE=spans[:PATH] environment variable streams JSONL span events
  to stderr (or PATH). None of these change any result byte.

ROBUSTNESS (discover, eval, augment):
  --lenient                quarantine malformed input lines instead of aborting
  --max-source-facts N     quarantine sources carrying more than N facts
  --max-source-nodes N     quarantine a source whose slice hierarchy exceeds N nodes
  --source-deadline-ms MS  quarantine a source still running after MS milliseconds
  --stream-window N        admit at most N sources to a round's pool at once
                           (default: unbounded). Caps peak memory — completed
                           sources free their state before later ones start —
                           without changing any result bit.
  Quarantined sources are dropped from the run and listed in a summary; the
  MIDAS_FAULTINJECT environment variable (e.g. `parse@#3,panic@flaky`) injects
  deterministic faults for testing.

FILES:
  facts: TSV  url <TAB> subject <TAB> predicate <TAB> object
  kb:    TSV  subject <TAB> predicate <TAB> object
  gold:  TSV  url <TAB> slice_id <TAB> entity";

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// MIDASalg + the multi-source framework.
    #[default]
    Midas,
    /// The GREEDY baseline (per domain).
    Greedy,
    /// The AGGCLUSTER baseline (per domain).
    AggCluster,
    /// The NAIVE baseline (whole sources).
    Naive,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "midas" => Ok(Algorithm::Midas),
            "greedy" => Ok(Algorithm::Greedy),
            "aggcluster" => Ok(Algorithm::AggCluster),
            "naive" => Ok(Algorithm::Naive),
            other => Err(CliError::Usage(format!("unknown algorithm {other:?}"))),
        }
    }
}

/// Robustness limits shared by `discover` and `eval`: lenient ingestion and
/// the per-source execution budget. All default to off/unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunLimits {
    /// Quarantine malformed input lines instead of aborting (`--lenient`).
    pub lenient: bool,
    /// Per-source fact-count cap (`--max-source-facts`).
    pub max_source_facts: Option<usize>,
    /// Per-source hierarchy-node cap (`--max-source-nodes`).
    pub max_source_nodes: Option<usize>,
    /// Per-source wall-clock deadline in ms (`--source-deadline-ms`).
    pub source_deadline_ms: Option<u64>,
    /// Streaming admission window per framework round (`--stream-window`).
    pub stream_window: Option<usize>,
}

/// A parsed subcommand.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `midas discover`.
    Discover {
        /// Facts file path.
        facts: String,
        /// Optional knowledge-base file path.
        kb: Option<String>,
        /// Algorithm selection.
        algorithm: Algorithm,
        /// Worker threads.
        threads: usize,
        /// Report only the top-K slices.
        top: usize,
        /// Cost model overrides `(fp, fc, fd, fv)`.
        cost: (f64, f64, f64, f64),
        /// Emit CSV instead of an aligned table.
        csv: bool,
        /// Include the profit breakdown per slice.
        explain: bool,
        /// Corpus snapshot cache directory (`--snapshot-cache`).
        snapshot_cache: Option<String>,
        /// Cache size cap in bytes (`--snapshot-cache-max-bytes`).
        snapshot_cache_max_bytes: Option<u64>,
        /// Robustness limits (lenient ingestion + per-source budget).
        limits: RunLimits,
    },
    /// `midas stats`.
    Stats {
        /// Facts file path.
        facts: String,
    },
    /// `midas generate`.
    Generate {
        /// Dataset family name.
        dataset: String,
        /// Generator scale.
        scale: f64,
        /// Generator seed.
        seed: u64,
        /// Output directory.
        out: String,
    },
    /// `midas augment`: the incremental augmentation loop (suggest → accept
    /// the top positive-profit slice → re-suggest on a warm cache).
    Augment {
        /// Facts file path.
        facts: String,
        /// Optional knowledge-base file path.
        kb: Option<String>,
        /// Maximum augmentation rounds (`--rounds`).
        rounds: usize,
        /// Worker threads.
        threads: usize,
        /// Cost model overrides `(fp, fc, fd, fv)`.
        cost: (f64, f64, f64, f64),
        /// Corpus snapshot cache directory (`--snapshot-cache`).
        snapshot_cache: Option<String>,
        /// Cache size cap in bytes (`--snapshot-cache-max-bytes`).
        snapshot_cache_max_bytes: Option<u64>,
        /// Continue from the last durable checkpoint (`--resume`).
        resume: bool,
        /// Robustness limits (lenient ingestion + per-source budget).
        limits: RunLimits,
    },
    /// `midas eval`.
    Eval {
        /// Facts file path.
        facts: String,
        /// Gold file path.
        gold: String,
        /// Optional knowledge-base file path.
        kb: Option<String>,
        /// Algorithm selection.
        algorithm: Algorithm,
        /// Worker threads.
        threads: usize,
        /// Corpus snapshot cache directory (`--snapshot-cache`).
        snapshot_cache: Option<String>,
        /// Cache size cap in bytes (`--snapshot-cache-max-bytes`).
        snapshot_cache_max_bytes: Option<u64>,
        /// Robustness limits (lenient ingestion + per-source budget).
        limits: RunLimits,
    },
}

/// Cross-command observability options; accepted by every subcommand and
/// strictly additive (they never change a command's normal output bytes,
/// only append opt-in telemetry after it).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryArgs {
    /// Write a versioned JSON metrics snapshot to this path at exit
    /// (`--metrics-json PATH`).
    pub metrics_json: Option<String>,
    /// Print a compact metrics table after the command's normal output
    /// (`--verbose-stats`).
    pub verbose_stats: bool,
}

impl TelemetryArgs {
    /// Whether any telemetry surface was requested.
    pub fn any(&self) -> bool {
        self.metrics_json.is_some() || self.verbose_stats
    }
}

/// Parsed command line.
#[derive(Debug, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand with its options.
    pub command: Command,
    /// Observability options shared by all subcommands.
    pub telemetry: TelemetryArgs,
}

struct Flags<'a> {
    argv: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(argv: &'a [String]) -> Self {
        Flags {
            argv,
            used: vec![false; argv.len()],
        }
    }

    fn value(&mut self, name: &str) -> Result<Option<&'a str>, CliError> {
        for i in 0..self.argv.len() {
            if self.argv[i] == name && !self.used[i] {
                self.used[i] = true;
                let v = self
                    .argv
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{name} requires a value")))?;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn flag(&mut self, name: &str) -> bool {
        for i in 0..self.argv.len() {
            if self.argv[i] == name && !self.used[i] {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn required(&mut self, name: &str) -> Result<&'a str, CliError> {
        self.value(name)?
            .ok_or_else(|| CliError::Usage(format!("{name} is required")))
    }

    fn finish(self) -> Result<(), CliError> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return Err(CliError::Usage(format!(
                    "unrecognised argument {:?}",
                    self.argv[i]
                )));
            }
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, CliError> {
    raw.parse()
        .map_err(|_| CliError::Usage(format!("invalid value {raw:?} for {name}")))
}

fn opt_num<T: std::str::FromStr>(flags: &mut Flags<'_>, name: &str) -> Result<Option<T>, CliError> {
    match flags.value(name)? {
        Some(raw) => parse_num(name, raw).map(Some),
        None => Ok(None),
    }
}

fn parse_limits(flags: &mut Flags<'_>) -> Result<RunLimits, CliError> {
    Ok(RunLimits {
        lenient: flags.flag("--lenient"),
        max_source_facts: opt_num(flags, "--max-source-facts")?,
        max_source_nodes: opt_num(flags, "--max-source-nodes")?,
        source_deadline_ms: opt_num(flags, "--source-deadline-ms")?,
        stream_window: opt_num(flags, "--stream-window")?,
    })
}

impl ParsedArgs {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let (sub, rest) = argv
            .split_first()
            .ok_or_else(|| CliError::Usage("missing subcommand".into()))?;
        let mut flags = Flags::new(rest);
        // Observability flags are global: claim them before the subcommand
        // arms so `finish()` accepts them everywhere.
        let telemetry = TelemetryArgs {
            metrics_json: flags.value("--metrics-json")?.map(str::to_owned),
            verbose_stats: flags.flag("--verbose-stats"),
        };
        let command = match sub.as_str() {
            "discover" => {
                let facts = flags.required("--facts")?.to_owned();
                let kb = flags.value("--kb")?.map(str::to_owned);
                let algorithm = Algorithm::parse(flags.value("--algorithm")?.unwrap_or("midas"))?;
                let threads = parse_num("--threads", flags.value("--threads")?.unwrap_or("1"))?;
                let top = parse_num("--top", flags.value("--top")?.unwrap_or("20"))?;
                let fp = parse_num("--fp", flags.value("--fp")?.unwrap_or("10"))?;
                let fc = parse_num("--fc", flags.value("--fc")?.unwrap_or("0.001"))?;
                let fd = parse_num("--fd", flags.value("--fd")?.unwrap_or("0.01"))?;
                let fv = parse_num("--fv", flags.value("--fv")?.unwrap_or("0.1"))?;
                Command::Discover {
                    facts,
                    kb,
                    algorithm,
                    threads,
                    top,
                    cost: (fp, fc, fd, fv),
                    csv: flags.flag("--csv"),
                    explain: flags.flag("--explain"),
                    snapshot_cache: flags.value("--snapshot-cache")?.map(str::to_owned),
                    snapshot_cache_max_bytes: opt_num(&mut flags, "--snapshot-cache-max-bytes")?,
                    limits: parse_limits(&mut flags)?,
                }
            }
            "stats" => Command::Stats {
                facts: flags.required("--facts")?.to_owned(),
            },
            "generate" => Command::Generate {
                dataset: flags.required("--dataset")?.to_owned(),
                scale: parse_num("--scale", flags.value("--scale")?.unwrap_or("0.01"))?,
                seed: parse_num("--seed", flags.value("--seed")?.unwrap_or("42"))?,
                out: flags.required("--out")?.to_owned(),
            },
            "augment" => {
                let facts = flags.required("--facts")?.to_owned();
                let kb = flags.value("--kb")?.map(str::to_owned);
                let rounds = parse_num("--rounds", flags.value("--rounds")?.unwrap_or("10"))?;
                let threads = parse_num("--threads", flags.value("--threads")?.unwrap_or("1"))?;
                let fp = parse_num("--fp", flags.value("--fp")?.unwrap_or("10"))?;
                let fc = parse_num("--fc", flags.value("--fc")?.unwrap_or("0.001"))?;
                let fd = parse_num("--fd", flags.value("--fd")?.unwrap_or("0.01"))?;
                let fv = parse_num("--fv", flags.value("--fv")?.unwrap_or("0.1"))?;
                let snapshot_cache = flags.value("--snapshot-cache")?.map(str::to_owned);
                let resume = flags.flag("--resume");
                if resume && snapshot_cache.is_none() {
                    return Err(CliError::Usage(
                        "--resume requires --snapshot-cache (checkpoints live there)".into(),
                    ));
                }
                Command::Augment {
                    facts,
                    kb,
                    rounds,
                    threads,
                    cost: (fp, fc, fd, fv),
                    snapshot_cache,
                    snapshot_cache_max_bytes: opt_num(&mut flags, "--snapshot-cache-max-bytes")?,
                    resume,
                    limits: parse_limits(&mut flags)?,
                }
            }
            "eval" => Command::Eval {
                facts: flags.required("--facts")?.to_owned(),
                gold: flags.required("--gold")?.to_owned(),
                kb: flags.value("--kb")?.map(str::to_owned),
                algorithm: Algorithm::parse(flags.value("--algorithm")?.unwrap_or("midas"))?,
                threads: parse_num("--threads", flags.value("--threads")?.unwrap_or("1"))?,
                snapshot_cache: flags.value("--snapshot-cache")?.map(str::to_owned),
                snapshot_cache_max_bytes: opt_num(&mut flags, "--snapshot-cache-max-bytes")?,
                limits: parse_limits(&mut flags)?,
            },
            "help" | "--help" | "-h" => {
                return Err(CliError::Usage("".into()));
            }
            other => return Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
        };
        flags.finish()?;
        Ok(ParsedArgs { command, telemetry })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn discover_defaults() {
        let p = ParsedArgs::parse(&argv("discover --facts f.tsv")).unwrap();
        match p.command {
            Command::Discover {
                facts,
                kb,
                algorithm,
                threads,
                top,
                cost,
                csv,
                explain,
                snapshot_cache,
                snapshot_cache_max_bytes,
                limits,
            } => {
                assert_eq!(facts, "f.tsv");
                assert_eq!(kb, None);
                assert_eq!(algorithm, Algorithm::Midas);
                assert_eq!(threads, 1);
                assert_eq!(top, 20);
                assert_eq!(cost, (10.0, 0.001, 0.01, 0.1));
                assert!(!csv && !explain);
                assert_eq!(snapshot_cache, None);
                assert_eq!(snapshot_cache_max_bytes, None);
                assert_eq!(limits, RunLimits::default());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn robustness_flags_parse_on_discover_and_eval() {
        let expected = RunLimits {
            lenient: true,
            max_source_facts: Some(5_000),
            max_source_nodes: Some(200_000),
            source_deadline_ms: Some(1_500),
            stream_window: Some(8),
        };
        let d = ParsedArgs::parse(&argv(
            "discover --facts f.tsv --lenient --max-source-facts 5000 \
             --max-source-nodes 200000 --source-deadline-ms 1500 --stream-window 8",
        ))
        .unwrap();
        match d.command {
            Command::Discover { limits, .. } => assert_eq!(limits, expected),
            other => panic!("wrong command {other:?}"),
        }
        let e = ParsedArgs::parse(&argv(
            "eval --facts f --gold g --lenient --max-source-facts 5000 \
             --max-source-nodes 200000 --source-deadline-ms 1500 --stream-window 8",
        ))
        .unwrap();
        match e.command {
            Command::Eval { limits, .. } => assert_eq!(limits, expected),
            other => panic!("wrong command {other:?}"),
        }
        let err =
            ParsedArgs::parse(&argv("discover --facts f --max-source-facts lots")).unwrap_err();
        assert!(err.to_string().contains("invalid value"));
        let err = ParsedArgs::parse(&argv("stats --facts f --lenient")).unwrap_err();
        assert!(
            err.to_string().contains("unrecognised argument"),
            "robustness flags only apply to discover/eval"
        );
    }

    #[test]
    fn discover_full_flags() {
        let p = ParsedArgs::parse(&argv(
            "discover --facts f.tsv --kb k.tsv --algorithm greedy --threads 8 --top 5 \
             --fp 1 --fc 0.002 --fd 0.02 --fv 0.2 --csv --explain",
        ))
        .unwrap();
        match p.command {
            Command::Discover {
                algorithm,
                threads,
                top,
                cost,
                csv,
                explain,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::Greedy);
                assert_eq!(threads, 8);
                assert_eq!(top, 5);
                assert_eq!(cost, (1.0, 0.002, 0.02, 0.2));
                assert!(csv && explain);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn augment_defaults_and_overrides() {
        let p = ParsedArgs::parse(&argv("augment --facts f.tsv")).unwrap();
        match p.command {
            Command::Augment {
                facts,
                kb,
                rounds,
                threads,
                cost,
                snapshot_cache,
                snapshot_cache_max_bytes,
                resume,
                limits,
            } => {
                assert_eq!(facts, "f.tsv");
                assert_eq!(kb, None);
                assert_eq!(rounds, 10);
                assert_eq!(threads, 1);
                assert_eq!(cost, (10.0, 0.001, 0.01, 0.1));
                assert_eq!(snapshot_cache, None);
                assert_eq!(snapshot_cache_max_bytes, None);
                assert!(!resume);
                assert_eq!(limits, RunLimits::default());
            }
            other => panic!("wrong command {other:?}"),
        }
        let p = ParsedArgs::parse(&argv(
            "augment --facts f.tsv --kb k.tsv --rounds 3 --threads 4 \
             --fp 1 --fc 0.002 --fd 0.02 --fv 0.2 --stream-window 2",
        ))
        .unwrap();
        match p.command {
            Command::Augment {
                kb,
                rounds,
                threads,
                cost,
                limits,
                ..
            } => {
                assert_eq!(kb.as_deref(), Some("k.tsv"));
                assert_eq!(rounds, 3);
                assert_eq!(threads, 4);
                assert_eq!(cost, (1.0, 0.002, 0.02, 0.2));
                assert_eq!(limits.stream_window, Some(2));
            }
            other => panic!("wrong command {other:?}"),
        }
        let err = ParsedArgs::parse(&argv("augment --facts f --top 3")).unwrap_err();
        assert!(
            err.to_string().contains("unrecognised argument"),
            "--top is discover-only"
        );
    }

    #[test]
    fn snapshot_cache_flag_parses_on_discover_eval_augment() {
        for cmdline in [
            "discover --facts f --snapshot-cache /tmp/cache",
            "eval --facts f --gold g --snapshot-cache /tmp/cache",
            "augment --facts f --snapshot-cache /tmp/cache",
        ] {
            let p = ParsedArgs::parse(&argv(cmdline)).unwrap();
            let cache = match p.command {
                Command::Discover { snapshot_cache, .. }
                | Command::Eval { snapshot_cache, .. }
                | Command::Augment { snapshot_cache, .. } => snapshot_cache,
                other => panic!("wrong command {other:?}"),
            };
            assert_eq!(cache.as_deref(), Some("/tmp/cache"), "{cmdline}");
        }
        let err = ParsedArgs::parse(&argv("stats --facts f --snapshot-cache /tmp/c")).unwrap_err();
        assert!(err.to_string().contains("unrecognised argument"));
        let err = ParsedArgs::parse(&argv("discover --facts f --snapshot-cache")).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn cache_cap_and_resume_flags_parse() {
        for cmdline in [
            "discover --facts f --snapshot-cache /tmp/c --snapshot-cache-max-bytes 1048576",
            "eval --facts f --gold g --snapshot-cache /tmp/c --snapshot-cache-max-bytes 1048576",
            "augment --facts f --snapshot-cache /tmp/c --snapshot-cache-max-bytes 1048576",
        ] {
            let p = ParsedArgs::parse(&argv(cmdline)).unwrap();
            let cap = match p.command {
                Command::Discover {
                    snapshot_cache_max_bytes,
                    ..
                }
                | Command::Eval {
                    snapshot_cache_max_bytes,
                    ..
                }
                | Command::Augment {
                    snapshot_cache_max_bytes,
                    ..
                } => snapshot_cache_max_bytes,
                other => panic!("wrong command {other:?}"),
            };
            assert_eq!(cap, Some(1_048_576), "{cmdline}");
        }

        let p =
            ParsedArgs::parse(&argv("augment --facts f --snapshot-cache /tmp/c --resume")).unwrap();
        assert!(matches!(p.command, Command::Augment { resume: true, .. }));

        let err = ParsedArgs::parse(&argv("augment --facts f --resume")).unwrap_err();
        assert!(
            err.to_string()
                .contains("--resume requires --snapshot-cache"),
            "{err}"
        );
        let err = ParsedArgs::parse(&argv("discover --facts f --resume")).unwrap_err();
        assert!(
            err.to_string().contains("unrecognised argument"),
            "--resume is augment-only"
        );
    }

    #[test]
    fn telemetry_flags_parse_on_every_subcommand() {
        for cmdline in [
            "discover --facts f --metrics-json m.json --verbose-stats",
            "stats --facts f --metrics-json m.json --verbose-stats",
            "generate --dataset synthetic --out /tmp/x --metrics-json m.json --verbose-stats",
            "eval --facts f --gold g --metrics-json m.json --verbose-stats",
            "augment --facts f --metrics-json m.json --verbose-stats",
        ] {
            let p = ParsedArgs::parse(&argv(cmdline)).unwrap();
            assert_eq!(
                p.telemetry,
                TelemetryArgs {
                    metrics_json: Some("m.json".into()),
                    verbose_stats: true,
                },
                "{cmdline}"
            );
            assert!(p.telemetry.any());
        }
        let p = ParsedArgs::parse(&argv("stats --facts f")).unwrap();
        assert_eq!(p.telemetry, TelemetryArgs::default());
        assert!(!p.telemetry.any());
        let err = ParsedArgs::parse(&argv("stats --facts f --metrics-json")).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let err = ParsedArgs::parse(&argv("discover")).unwrap_err();
        assert!(err.to_string().contains("--facts is required"));
    }

    #[test]
    fn unknown_flag_errors() {
        let err = ParsedArgs::parse(&argv("discover --facts f --bogus 3")).unwrap_err();
        assert!(err.to_string().contains("unrecognised argument"));
    }

    #[test]
    fn unknown_subcommand_and_algorithm_error() {
        assert!(ParsedArgs::parse(&argv("frobnicate")).is_err());
        assert!(ParsedArgs::parse(&argv("discover --facts f --algorithm magic")).is_err());
    }

    #[test]
    fn value_flag_without_value_errors() {
        let err = ParsedArgs::parse(&argv("discover --facts")).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn generate_and_eval_parse() {
        let g = ParsedArgs::parse(&argv(
            "generate --dataset synthetic --scale 0.5 --seed 7 --out /tmp/x",
        ))
        .unwrap();
        assert!(matches!(g.command, Command::Generate { seed: 7, .. }));
        let e = ParsedArgs::parse(&argv("eval --facts f --gold g --algorithm naive")).unwrap();
        assert!(matches!(
            e.command,
            Command::Eval {
                algorithm: Algorithm::Naive,
                ..
            }
        ));
    }

    #[test]
    fn bad_numeric_value_errors() {
        let err = ParsedArgs::parse(&argv("discover --facts f --threads abc")).unwrap_err();
        assert!(err.to_string().contains("invalid value"));
    }
}
