//! The `midas` binary — see [`midas_cli`] for everything.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match midas_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
