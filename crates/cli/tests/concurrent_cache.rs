//! Multi-process safety of a shared `--snapshot-cache` directory.
//!
//! Spawns several real `midas` processes against one cache dir at once —
//! all racing to write the same snapshot, touch the same manifest, and
//! (in the eviction test) evict each other's entries — and asserts every
//! process completes with the same report and the cache ends in a sane
//! state. The advisory-lock protocol (single `.lock` file, shared readers,
//! exclusive writers, never nested) is what makes this hold; a regression
//! shows up here as corruption, divergence, or a hung child.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn midas() -> Command {
    Command::new(env!("CARGO_BIN_EXE_midas"))
}

fn body(text: &str) -> String {
    text.lines()
        .filter(|l| {
            let l = l.trim_start_matches("# ");
            !l.starts_with("snapshot cache") && !l.starts_with("slice cache")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("midas_conc_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = midas()
            .current_dir(&dir)
            .args([
                "generate",
                "--dataset",
                "kvault",
                "--scale",
                "0.05",
                "--seed",
                "42",
                "--out",
                ".",
            ])
            .output()
            .expect("spawn midas generate");
        assert!(out.status.success());
        Fixture { dir }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Waits for every child with one global deadline; a deadlock or livelock
/// in the lock protocol surfaces as this panic rather than a hung CI job.
fn join_all(mut children: Vec<Child>, deadline: Duration) -> Vec<std::process::Output> {
    let start = Instant::now();
    let mut outputs = Vec::new();
    for child in children.iter_mut() {
        loop {
            match child.try_wait().expect("poll child") {
                Some(_) => break,
                None if start.elapsed() > deadline => {
                    let _ = child.kill();
                    panic!("child did not finish within {deadline:?} (deadlock?)");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
    for child in children {
        outputs.push(child.wait_with_output().expect("collect child output"));
    }
    outputs
}

fn spawn_discover(f: &Fixture, extra: &[&str]) -> Child {
    midas()
        .current_dir(&f.dir)
        .args([
            "discover",
            "--facts",
            "facts.tsv",
            "--kb",
            "kb.tsv",
            "--top",
            "8",
            "--snapshot-cache",
            "cache",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn midas discover")
}

/// Four processes race to populate and then read one cache directory.
/// Everyone must finish, agree on the report, and leave one committed,
/// loadable snapshot behind.
#[test]
fn concurrent_processes_share_a_cache_without_corruption() {
    let f = Fixture::new("share");
    let children: Vec<Child> = (0..4).map(|_| spawn_discover(&f, &[])).collect();
    let outputs = join_all(children, Duration::from_secs(120));

    let mut bodies: Vec<String> = Vec::new();
    for out in &outputs {
        assert!(
            out.status.success(),
            "child failed: {}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        bodies.push(body(&String::from_utf8_lossy(&out.stdout)));
    }
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "racing processes disagree on the report");
    }

    // The cache converged: a follow-up run is a pure hit and still agrees.
    let hit = spawn_discover(&f, &[]);
    let out = join_all(vec![hit], Duration::from_secs(120)).remove(0);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("snapshot cache hit:"), "{text}");
    assert_eq!(body(&text), bodies[0]);
}

/// Same race under a one-byte size cap: every write is immediately
/// eviction-eligible, so processes constantly evict each other's entries —
/// the nastiest interleaving the LRU code can face. Results must still
/// agree; the cache just never retains anything.
#[test]
fn concurrent_eviction_race_stays_consistent() {
    let f = Fixture::new("evict");
    let children: Vec<Child> = (0..3)
        .map(|_| spawn_discover(&f, &["--snapshot-cache-max-bytes", "1"]))
        .collect();
    let outputs = join_all(children, Duration::from_secs(120));

    let mut bodies: Vec<String> = Vec::new();
    for out in &outputs {
        assert!(
            out.status.success(),
            "child failed: {}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        bodies.push(body(&String::from_utf8_lossy(&out.stdout)));
    }
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "eviction race changed a report");
    }
    // No temp files or torn snapshots behind: every surviving .snap opens.
    for entry in std::fs::read_dir(f.dir.join("cache")).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(!name.contains(".tmp."), "temp file leaked: {name}");
        if name.ends_with(".snap") {
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(&bytes[..4], b"MSNP", "torn snapshot left behind: {name}");
        }
    }
}
