//! Kill-anywhere crash harness for the durability layer.
//!
//! Forks the real `midas` binary with `MIDAS_CRASHPOINT=<site>.<stage>@<n>`
//! so the process calls `abort()` at a chosen point inside a snapshot,
//! slice-report, checkpoint, or manifest write — including *between* the
//! rename and the directory fsync — then asserts the invariants the store
//! promises:
//!
//! * a crashed write never leaves a torn file under a trusted name (only
//!   under `*.tmp.<pid>`, which the next run sweeps);
//! * the next run heals: it completes cleanly and its report is
//!   byte-identical to a run that never used the cache;
//! * an externally-torn snapshot is quarantined with a reason file — never
//!   silently trusted, never silently deleted;
//! * `augment --resume` after a mid-loop crash reproduces the
//!   uninterrupted run byte-for-byte (under `MIDAS_FIXED_TIMING`).

#![cfg(unix)]

use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Every stage of the atomic write path, in execution order. Mirrors
/// `midas_kb::snapshot::WRITE_CRASH_STAGES`; spelled out here so the
/// harness fails loudly if a stage is ever dropped from the write path.
const STAGES: [&str; 4] = ["tmp.partial", "tmp.synced", "renamed", "dir.synced"];

fn midas() -> Command {
    Command::new(env!("CARGO_BIN_EXE_midas"))
}

fn run_ok(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> String {
    let out = run_raw(dir, args, envs);
    assert!(
        out.status.success(),
        "midas {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn run_raw(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = midas();
    cmd.current_dir(dir).args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn midas")
}

/// Output with durability-layer notes stripped: the only permitted
/// difference between cold, cached, crashed-then-healed, and resumed runs.
fn body(text: &str) -> String {
    text.lines()
        .filter(|l| {
            let l = l.trim_start_matches("# ");
            !l.starts_with("snapshot cache")
                && !l.starts_with("slice cache")
                && !l.starts_with("resume")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("midas_crash_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        run_ok(
            &dir,
            &[
                "generate",
                "--dataset",
                "kvault",
                "--scale",
                "0.05",
                "--seed",
                "42",
                "--out",
                ".",
            ],
            &[],
        );
        Fixture { dir }
    }

    fn cache_files(&self, cache: &str) -> Vec<String> {
        let dir = self.dir.join(cache);
        if !dir.exists() {
            return Vec::new();
        }
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const DISCOVER: [&str; 8] = [
    "discover",
    "--facts",
    "facts.tsv",
    "--kb",
    "kb.tsv",
    "--top",
    "8",
    "--explain",
];

const AUGMENT: [&str; 9] = [
    "augment",
    "--facts",
    "facts.tsv",
    "--kb",
    "kb.tsv",
    "--rounds",
    "4",
    "--threads",
    "2",
];

fn with_cache(base: &[&str], cache: &str) -> Vec<String> {
    let mut v: Vec<String> = base.iter().map(|s| s.to_string()).collect();
    v.push("--snapshot-cache".into());
    v.push(cache.into());
    v
}

/// Runs `args` with a crashpoint armed, asserting the process died by
/// SIGABRT (i.e. the crashpoint actually fired, rather than the run
/// finishing or failing some other way).
fn crash_at(f: &Fixture, args: &[String], point: &str) {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = run_raw(
        &f.dir,
        &argv,
        &[("MIDAS_CRASHPOINT", point), ("MIDAS_FIXED_TIMING", "1")],
    );
    assert_eq!(
        out.status.signal(),
        Some(libc_sigabrt()),
        "crashpoint {point} did not abort; status {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("crashpoint: aborting"),
        "crashpoint {point} fired without announcing itself: {stderr}"
    );
}

fn libc_sigabrt() -> i32 {
    6 // SIGABRT on every platform this harness runs on (Linux)
}

/// No file under a trusted name may be torn after a crash: torn bytes only
/// ever live under `*.tmp.<pid>`.
fn assert_no_torn_trusted_files(f: &Fixture, cache: &str) {
    for name in f.cache_files(cache) {
        assert!(
            !name.ends_with(".snap") || is_wellformed(&f.dir.join(cache).join(&name)),
            "torn snapshot under trusted name {name}"
        );
    }
}

/// A committed snapshot must carry the full container: magic at the front,
/// non-empty payload. (Checksum verification happens on open; here we only
/// care that the *file born from a crash* is either absent or complete —
/// the rename-is-atomic invariant.)
fn is_wellformed(path: &Path) -> bool {
    let bytes = std::fs::read(path).unwrap();
    bytes.len() > 8 && &bytes[..4] == b"MSNP"
}

/// Kill the CLI at every stage of every write site, then verify the next
/// run heals and matches a never-cached reference bit-for-bit.
#[test]
fn kill_anywhere_then_heal_matches_reference() {
    let f = Fixture::new("kill_anywhere");
    let reference = body(&run_ok(&f.dir, &DISCOVER, &[("MIDAS_FIXED_TIMING", "1")]));
    let augment_reference = body(&run_ok(&f.dir, &AUGMENT, &[("MIDAS_FIXED_TIMING", "1")]));

    // (site, command that exercises it, healed reference)
    let sites: [(&str, &[&str], &str); 4] = [
        ("snap", &DISCOVER, &reference),
        ("slices", &DISCOVER, &reference),
        ("manifest", &DISCOVER, &reference),
        ("ckpt", &AUGMENT, &augment_reference),
    ];

    for (site, base_args, healed_reference) in sites {
        for stage in STAGES {
            let cache = format!("cache_{site}_{}", stage.replace('.', "_"));
            let args = with_cache(base_args, &cache);
            crash_at(&f, &args, &format!("{site}.{stage}@1"));
            assert_no_torn_trusted_files(&f, &cache);

            let argv: Vec<&str> = args.iter().map(String::as_str).collect();
            let healed = run_ok(&f.dir, &argv, &[("MIDAS_FIXED_TIMING", "1")]);
            assert_eq!(
                body(&healed),
                healed_reference,
                "healed run diverges after crash at {site}.{stage}"
            );
            // The healing run swept the dead writer's temp file (if the
            // crash left one): nothing torn remains under any name.
            assert!(
                !f.cache_files(&cache).iter().any(|n| n.contains(".tmp.")),
                "temp file survived healing at {site}.{stage}: {:?}",
                f.cache_files(&cache)
            );
        }
    }
}

/// An externally torn snapshot is quarantined with its bytes and a reason
/// file — never trusted, never silently destroyed.
#[test]
fn torn_snapshot_is_quarantined_never_trusted() {
    let f = Fixture::new("torn");
    let args = with_cache(&DISCOVER, "cache");
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let reference = body(&run_ok(&f.dir, &DISCOVER, &[]));
    run_ok(&f.dir, &argv, &[]);

    let snap_name = f
        .cache_files("cache")
        .into_iter()
        .find(|n| n.ends_with(".snap") && !n.ends_with("-slices.snap"))
        .expect("committed snapshot");
    let snap = f.dir.join("cache").join(&snap_name);
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() / 2]).unwrap();

    let healed = run_ok(&f.dir, &argv, &[]);
    assert!(
        healed.contains("snapshot cache: quarantined"),
        "torn snapshot must be reported: {healed}"
    );
    assert_eq!(body(&healed), reference, "healing run diverges");

    let qdir = f.dir.join("cache").join("quarantine");
    let quarantined = std::fs::read(qdir.join(&snap_name)).unwrap();
    assert_eq!(
        quarantined,
        &bytes[..bytes.len() / 2],
        "quarantine must preserve the torn bytes as evidence"
    );
    let reason = std::fs::read_to_string(qdir.join(format!("{snap_name}.reason"))).unwrap();
    assert!(!reason.trim().is_empty(), "reason file must say why");
}

/// Crash the augmentation loop mid-way at its checkpoint commit, then
/// `--resume`: the resumed output must be byte-identical to a run that was
/// never interrupted (wall-clock columns pinned by `MIDAS_FIXED_TIMING`).
#[test]
fn resume_after_crash_is_bit_identical_to_uninterrupted_run() {
    let f = Fixture::new("resume");
    let fixed = [("MIDAS_FIXED_TIMING", "1")];
    let reference = body(&run_ok(&f.dir, &AUGMENT, &fixed));
    assert!(
        reference.contains("over 4 rounds"),
        "corpus must sustain at least 4 rounds for the crash to land mid-loop: {reference}"
    );

    // Kill at the commit of round 2's checkpoint: rounds 1-2 are durable,
    // rounds 3-4 were never run.
    let args = with_cache(&AUGMENT, "cache");
    crash_at(&f, &args, "ckpt.renamed@2");

    let mut resume_args = args.clone();
    resume_args.push("--resume".into());
    let argv: Vec<&str> = resume_args.iter().map(String::as_str).collect();
    let resumed = run_ok(&f.dir, &argv, &fixed);
    assert!(
        resumed.contains("resume: replayed 2 checkpointed round(s)"),
        "resume must replay exactly the durable rounds: {resumed}"
    );
    assert_eq!(
        body(&resumed),
        reference,
        "resumed run must be byte-identical to the uninterrupted run"
    );

    // Resuming a *finished* run replays everything and runs nothing new —
    // still byte-identical.
    let resumed_again = run_ok(&f.dir, &argv, &fixed);
    assert!(
        resumed_again.contains("resume: replayed 4 checkpointed round(s)"),
        "second resume should find the completed trace: {resumed_again}"
    );
    assert_eq!(body(&resumed_again), reference);
}

/// A damaged checkpoint is quarantined and the run restarts cold rather
/// than trusting replayed rounds — and still matches the reference.
#[test]
fn damaged_checkpoint_quarantines_and_restarts_cold() {
    let f = Fixture::new("bad_ckpt");
    let fixed = [("MIDAS_FIXED_TIMING", "1")];
    let reference = body(&run_ok(&f.dir, &AUGMENT, &fixed));

    let args = with_cache(&AUGMENT, "cache");
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    run_ok(&f.dir, &argv, &fixed);

    let ckpt_name = f
        .cache_files("cache")
        .into_iter()
        .find(|n| n.ends_with(".ckpt"))
        .expect("committed checkpoint");
    let ckpt = f.dir.join("cache").join(&ckpt_name);
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&ckpt, bytes).unwrap();

    let mut resume_args = args.clone();
    resume_args.push("--resume".into());
    let argv: Vec<&str> = resume_args.iter().map(String::as_str).collect();
    let resumed = run_ok(&f.dir, &argv, &fixed);
    assert!(
        resumed.contains("resume: quarantined checkpoint"),
        "damaged checkpoint must be quarantined: {resumed}"
    );
    assert_eq!(body(&resumed), reference, "cold restart diverges");
    assert!(
        f.dir
            .join("cache")
            .join("quarantine")
            .join(&ckpt_name)
            .exists(),
        "quarantine must hold the damaged checkpoint"
    );
}
