//! `MIDAS_KERNEL` misconfiguration must be a startup usage error, not a
//! panic inside a fault-isolated detection worker: before the CLI pinned
//! the kernel table on the main thread, `MIDAS_KERNEL=bogus` quarantined
//! every source as a "worker panic" fault and still exited 0. These tests
//! fork the real binary because the selection is process-global.

use std::io::Write;
use std::process::Command;

fn write_facts(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("midas_kernel_env_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("facts.tsv");
    let mut f = std::fs::File::create(&path).unwrap();
    for i in 0..4 {
        writeln!(f, "http://a.example.org/p\ts{i}\ttype\tcity").unwrap();
    }
    path
}

fn run_with_kernel(kernel: &str, facts: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_midas"))
        .env("MIDAS_KERNEL", kernel)
        .args(["discover", "--facts"])
        .arg(facts)
        .output()
        .unwrap()
}

#[test]
fn unknown_kernel_value_is_a_startup_usage_error() {
    let facts = write_facts("bogus");
    let out = run_with_kernel("bogus", &facts);
    assert_eq!(out.status.code(), Some(1), "must fail fast, not exit 0");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.starts_with("usage error: unknown MIDAS_KERNEL value \"bogus\""),
        "stderr: {err}"
    );
    // Detection must never have started: no slice table, no quarantine
    // report on stdout (only stderr carries the usage error).
    assert!(out.stdout.is_empty(), "must not reach detection");
}

#[test]
fn forced_kernels_still_run() {
    let facts = write_facts("forced");
    for kernel in ["auto", "scalar"] {
        let out = run_with_kernel(kernel, &facts);
        assert!(out.status.success(), "MIDAS_KERNEL={kernel} failed");
    }
}
