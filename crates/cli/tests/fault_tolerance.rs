//! CLI acceptance test for the fault-isolated pipeline: a 20-source corpus
//! with 3 injected faults (one parse error, one worker panic, one budget
//! exhaustion) completes, quarantines exactly those 3 sources, and emits
//! slices bit-identical to a clean run over the surviving 17 sources — at
//! every `--threads` value.
//!
//! The fault-injection plan and the `MIDAS_FAULTINJECT` variable are
//! process-global, so every test here serialises on [`PLAN_LOCK`].

use midas_cli::commands::{run_algorithm, run_algorithm_budgeted};
use midas_cli::{facts_io, run, CliError};
use midas_core::{faultinject, FaultPlan, SourceBudget};
use midas_kb::{Interner, KnowledgeBase};
use std::io::BufReader;
use std::sync::{Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

struct PlanSession(#[allow(dead_code)] MutexGuard<'static, ()>);

fn plan_session() -> PlanSession {
    PlanSession(PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Drop for PlanSession {
    fn drop(&mut self) {
        std::env::remove_var("MIDAS_FAULTINJECT");
        faultinject::clear();
    }
}

const PARSE_VICTIM: &str = "domain0.example.org/dir/page2";
const PANIC_VICTIM: &str = "domain2.example.org/dir/page0";
const BUDGET_VICTIM: &str = "domain4.example.org/dir/page3";

fn fault_spec() -> String {
    format!("parse@{PARSE_VICTIM},panic@{PANIC_VICTIM},budget@{BUDGET_VICTIM}")
}

/// The 20-source corpus as TSV: 5 domains × 4 pages, each page 4 entities
/// with 3 facts (one vertical per domain). `skip_victims` omits the three
/// fault targets, yielding the 17-source clean corpus.
fn corpus_tsv(skip_victims: bool) -> String {
    let mut out = String::new();
    for d in 0..5 {
        for p in 0..4 {
            let url = format!("http://domain{d}.example.org/dir/page{p}.html");
            if skip_victims
                && [PARSE_VICTIM, PANIC_VICTIM, BUDGET_VICTIM]
                    .iter()
                    .any(|v| url.contains(v))
            {
                continue;
            }
            for e in 0..4 {
                let name = format!("stem{d}_{p}_{e}");
                out.push_str(&format!("{url}\t{name}\tkind\tstem{d}\n"));
                out.push_str(&format!("{url}\t{name}\tsite\tstem{d}_dir\n"));
                out.push_str(&format!("{url}\t{name}\tserial\tstem{d}{p}{e}\n"));
            }
        }
    }
    out
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("midas_fault_tol_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

/// Bit-identical slices: the faulted 20-source run equals the clean
/// 17-source run, value for value, at every thread count.
#[test]
fn three_fault_run_is_bit_identical_to_clean_seventeen_source_run() {
    let _session = plan_session();
    let plan = FaultPlan::parse(&fault_spec()).unwrap();

    // Clean corpus, strict reader, no plan.
    let mut clean_terms = Interner::new();
    let clean_sources = facts_io::read_facts(
        BufReader::new(corpus_tsv(true).as_bytes()),
        &mut clean_terms,
    )
    .unwrap();
    assert_eq!(clean_sources.len(), 17);

    for threads in [1, 2, 4, 8] {
        // Faulted corpus: the lenient reader drops the parse victim, the
        // framework quarantines the panic and budget victims.
        faultinject::install(plan.clone());
        let mut terms = Interner::new();
        let (sources, read_faults) = facts_io::read_facts_lenient(
            BufReader::new(corpus_tsv(false).as_bytes()),
            &mut terms,
            "facts.tsv",
        )
        .unwrap();
        assert_eq!(sources.len(), 19, "parse victim dropped at read time");
        assert_eq!(read_faults.len(), 1);
        assert!(read_faults[0].source.contains(PARSE_VICTIM));

        let kb = KnowledgeBase::new();
        let (slices, quarantine) = run_algorithm_budgeted(
            Default::default(),
            midas_core::CostModel::default(),
            &sources,
            &kb,
            threads,
            SourceBudget::unlimited(),
            None,
            None,
        );
        faultinject::clear();
        assert_eq!(quarantine.len(), 2, "panic + budget victims");
        assert!(quarantine
            .iter()
            .any(|f| f.source.contains(PANIC_VICTIM) && f.cause.tag() == "panic"));
        assert!(quarantine
            .iter()
            .any(|f| f.source.contains(BUDGET_VICTIM) && f.cause.tag() == "budget"));

        let clean_slices = run_algorithm(
            Default::default(),
            midas_core::CostModel::default(),
            &clean_sources,
            &kb,
            threads,
        );
        assert_eq!(slices.len(), clean_slices.len(), "threads={threads}");
        for (a, b) in slices.iter().zip(&clean_slices) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.num_facts, b.num_facts);
            assert_eq!(a.num_new_facts, b.num_new_facts);
            assert_eq!(a.entities.len(), b.entities.len());
            assert_eq!(
                a.profit.to_bits(),
                b.profit.to_bits(),
                "threads={threads}: profits not bit-identical"
            );
        }
    }
}

/// The same scenario through the full CLI: `discover --lenient --csv` with
/// `MIDAS_FAULTINJECT` set completes, lists exactly the 3 victims as CSV
/// comments, and its data rows match the clean run's byte for byte.
#[test]
fn cli_discover_quarantines_three_and_matches_clean_output() {
    let _session = plan_session();
    let dir = tmpdir("cli");
    let faulted = dir.join("facts.tsv");
    let clean = dir.join("clean.tsv");
    std::fs::write(&faulted, corpus_tsv(false)).unwrap();
    std::fs::write(&clean, corpus_tsv(true)).unwrap();

    for threads in [1, 4] {
        std::env::set_var("MIDAS_FAULTINJECT", fault_spec());
        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {} --lenient --csv --threads {threads}",
                faulted.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        std::env::remove_var("MIDAS_FAULTINJECT");
        faultinject::clear();
        let faulted_text = String::from_utf8(out).unwrap();

        let mut out = Vec::new();
        run(
            &argv(&format!(
                "discover --facts {} --csv --threads {threads}",
                clean.to_str().unwrap()
            )),
            &mut out,
        )
        .unwrap();
        let clean_text = String::from_utf8(out).unwrap();

        let data = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| !l.starts_with('#') || l.starts_with("#,"))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(
            data(&faulted_text),
            data(&clean_text),
            "threads={threads}: CSV data rows must match the clean run"
        );
        assert!(
            faulted_text.contains("# quarantined 3 source(s):"),
            "threads={threads}:\n{faulted_text}"
        );
        for victim in [PARSE_VICTIM, PANIC_VICTIM, BUDGET_VICTIM] {
            assert!(
                faulted_text.contains(victim),
                "threads={threads}: {victim} missing:\n{faulted_text}"
            );
        }
        assert!(
            !clean_text.contains("quarantined"),
            "clean run quarantines nothing"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// When multiple sources fault in one round, the trailing summary keeps
/// each fault's own originating `file:line` (regression: injected parse
/// faults used to collapse to a context-free `file:0` entry, making the
/// victims indistinguishable in the summary).
#[test]
fn multi_fault_summary_keeps_per_source_file_line() {
    let _session = plan_session();
    let dir = tmpdir("multifault");
    let facts = dir.join("facts.tsv");
    std::fs::write(&facts, corpus_tsv(false)).unwrap();
    // Two parse victims: domain0/page2's first record is line 25 (pages are
    // 12 lines each), domain1/page1's is line 61.
    std::env::set_var(
        "MIDAS_FAULTINJECT",
        "parse@domain0.example.org/dir/page2,parse@domain1.example.org/dir/page1",
    );
    let mut out = Vec::new();
    run(
        &argv(&format!(
            "discover --facts {} --lenient",
            facts.to_str().unwrap()
        )),
        &mut out,
    )
    .unwrap();
    std::env::remove_var("MIDAS_FAULTINJECT");
    faultinject::clear();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("quarantined 2 source(s):"), "{text}");
    assert!(
        text.contains("facts.tsv:25"),
        "first victim keeps its own line context:\n{text}"
    );
    assert!(
        text.contains("facts.tsv:61"),
        "second victim keeps its own line context:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed `MIDAS_FAULTINJECT` spec is a usage error, not a panic or a
/// silently ignored plan.
#[test]
fn malformed_faultinject_spec_is_a_usage_error() {
    let _session = plan_session();
    let dir = tmpdir("badspec");
    let facts = dir.join("facts.tsv");
    std::fs::write(&facts, "http://a.com/x\te\tp\tv\n").unwrap();
    std::env::set_var("MIDAS_FAULTINJECT", "explode@#1");
    let mut out = Vec::new();
    let err = run(
        &argv(&format!("discover --facts {}", facts.to_str().unwrap())),
        &mut out,
    )
    .unwrap_err();
    std::env::remove_var("MIDAS_FAULTINJECT");
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    assert!(err.to_string().contains("MIDAS_FAULTINJECT"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
