//! Sharding by parent source — the first phase of each framework round.
//!
//! §III-B: *"At each iteration, we take a finer-grained child web source and
//! a list of slices as the input. We generate a one-level-coarser web domain
//! as parent web source (if any) and use it as the key to shard the
//! inputs."* [`shard_by_parent`] implements exactly that keying; the
//! framework then processes each shard independently (and in parallel).

use crate::url::SourceUrl;
use std::collections::BTreeMap;

/// One shard: a parent source and the child payloads grouped under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard<T> {
    /// The one-level-coarser parent URL (the shard key).
    pub parent: SourceUrl,
    /// `(child source, payload)` pairs assigned to this shard.
    pub items: Vec<(SourceUrl, T)>,
}

/// Groups `(source, payload)` pairs by the source's parent URL.
///
/// Inputs whose source is already a bare domain have no parent and are
/// returned separately as the second tuple element (the framework stops
/// propagating them upward).
pub fn shard_by_parent<T>(
    items: impl IntoIterator<Item = (SourceUrl, T)>,
) -> (Vec<Shard<T>>, Vec<(SourceUrl, T)>) {
    let mut groups: BTreeMap<SourceUrl, Vec<(SourceUrl, T)>> = BTreeMap::new();
    let mut domains = Vec::new();
    for (src, payload) in items {
        match src.parent() {
            Some(parent) => groups.entry(parent).or_default().push((src, payload)),
            None => domains.push((src, payload)),
        }
    }
    let shards = groups
        .into_iter()
        .map(|(parent, items)| Shard { parent, items })
        .collect();
    (shards, domains)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(s: &str) -> SourceUrl {
        SourceUrl::parse(s).unwrap()
    }

    #[test]
    fn shards_group_siblings_under_parent() {
        let items = vec![
            (u("http://s.de/doc_sat/mercury.htm"), 1),
            (u("http://s.de/doc_sat/gemini.htm"), 2),
            (u("http://s.de/doc_lau_fam/atlas.htm"), 3),
        ];
        let (shards, domains) = shard_by_parent(items);
        assert!(domains.is_empty());
        assert_eq!(shards.len(), 2);
        let sat = shards
            .iter()
            .find(|s| s.parent == u("http://s.de/doc_sat"))
            .unwrap();
        assert_eq!(sat.items.len(), 2);
        let fam = shards
            .iter()
            .find(|s| s.parent == u("http://s.de/doc_lau_fam"))
            .unwrap();
        assert_eq!(fam.items.len(), 1);
    }

    #[test]
    fn domain_level_inputs_are_terminal() {
        let items = vec![(u("http://s.de"), "x"), (u("http://s.de/a"), "y")];
        let (shards, domains) = shard_by_parent(items);
        assert_eq!(domains.len(), 1);
        assert_eq!(domains[0].0, u("http://s.de"));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].parent, u("http://s.de"));
    }

    #[test]
    fn shard_keys_are_deterministically_ordered() {
        let items = vec![
            (u("http://z.com/b/1"), ()),
            (u("http://a.com/b/1"), ()),
            (u("http://m.com/b/1"), ()),
        ];
        let (shards, _) = shard_by_parent(items);
        let keys: Vec<&str> = shards.iter().map(|s| s.parent.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn empty_input_yields_no_shards() {
        let (shards, domains) = shard_by_parent(Vec::<(SourceUrl, ())>::new());
        assert!(shards.is_empty());
        assert!(domains.is_empty());
    }
}
