//! URL pattern summarisation.
//!
//! A discovered slice tells an operator *which entities* to extract; the
//! crawler additionally wants to know *which pages* to fetch. Given the page
//! URLs the slice's facts came from, [`UrlPattern::summarise`] derives a
//! compact crawl spec: the deepest common URL prefix, a wildcard over the
//! varying segment, and the dominant file extension — e.g. the Figure 2
//! pages summarise to `http://space.skyrocket.de/doc_lau_fam/*.htm`.

use crate::url::SourceUrl;
use std::fmt;

/// A summarised crawl pattern over a set of page URLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlPattern {
    /// The deepest URL all pages share.
    pub prefix: SourceUrl,
    /// Whether pages continue below the prefix (i.e. a `/*` tail applies).
    pub has_tail: bool,
    /// The dominant tail file extension, if ≥ 90 % of pages share one.
    pub extension: Option<String>,
    /// How many pages the pattern covers.
    pub num_pages: usize,
    /// Maximum number of path segments below the prefix.
    pub max_tail_depth: usize,
}

impl UrlPattern {
    /// Summarises a non-empty set of page URLs from one domain.
    ///
    /// Returns `None` when `pages` is empty or spans several domains.
    pub fn summarise(pages: &[SourceUrl]) -> Option<UrlPattern> {
        let first = pages.first()?;
        let domain = first.domain();
        if pages.iter().any(|p| p.domain() != domain) {
            return None;
        }
        // Deepest common segment prefix.
        let mut common: Vec<&str> = first.segments().collect();
        for p in &pages[1..] {
            let segs: Vec<&str> = p.segments().collect();
            let n = common.iter().zip(&segs).take_while(|(a, b)| a == b).count();
            common.truncate(n);
        }
        // Don't treat a shared *page* as a prefix: if every URL is identical
        // the prefix is that page and there is no tail.
        let identical = pages.iter().all(|p| p == first);
        let prefix = if identical {
            first.clone()
        } else {
            let mut u = domain;
            for seg in &common {
                u = u.child(seg);
            }
            u
        };
        let has_tail = !identical;
        let max_tail_depth = pages
            .iter()
            .map(|p| p.depth().saturating_sub(prefix.depth()))
            .max()
            .unwrap_or(0);

        // Dominant extension of the final segment.
        let mut ext_counts: Vec<(String, usize)> = Vec::new();
        for p in pages {
            if let Some(last) = p.segments().last() {
                if let Some(dot) = last.rfind('.') {
                    let ext = last[dot + 1..].to_ascii_lowercase();
                    if !ext.is_empty() {
                        match ext_counts.iter_mut().find(|(e, _)| *e == ext) {
                            Some((_, c)) => *c += 1,
                            None => ext_counts.push((ext, 1)),
                        }
                    }
                }
            }
        }
        let extension = ext_counts
            .iter()
            .max_by_key(|(_, c)| *c)
            .filter(|(_, c)| *c * 10 >= pages.len() * 9)
            .map(|(e, _)| e.clone());

        Some(UrlPattern {
            prefix,
            has_tail,
            extension,
            num_pages: pages.len(),
            max_tail_depth,
        })
    }
}

impl fmt::Display for UrlPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix)?;
        if self.has_tail {
            match &self.extension {
                Some(ext) => write!(f, "/*.{ext}")?,
                None => write!(f, "/*")?,
            }
        }
        write!(f, "  ({} pages)", self.num_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(s: &str) -> SourceUrl {
        SourceUrl::parse(s).unwrap()
    }

    #[test]
    fn figure_2_pages_summarise_to_the_subdomain() {
        let pages = vec![
            u("http://space.skyrocket.de/doc_lau_fam/atlas.htm"),
            u("http://space.skyrocket.de/doc_lau_fam/castor-4.htm"),
        ];
        let p = UrlPattern::summarise(&pages).unwrap();
        assert_eq!(p.prefix.as_str(), "http://space.skyrocket.de/doc_lau_fam");
        assert_eq!(p.extension.as_deref(), Some("htm"));
        assert_eq!(
            p.to_string(),
            "http://space.skyrocket.de/doc_lau_fam/*.htm  (2 pages)"
        );
        assert_eq!(p.max_tail_depth, 1);
    }

    #[test]
    fn mixed_sections_fall_back_to_the_domain() {
        let pages = vec![
            u("http://space.skyrocket.de/doc_sat/mercury.htm"),
            u("http://space.skyrocket.de/doc_lau_fam/atlas.htm"),
        ];
        let p = UrlPattern::summarise(&pages).unwrap();
        assert_eq!(p.prefix.as_str(), "http://space.skyrocket.de");
        assert!(p.has_tail);
        assert_eq!(p.max_tail_depth, 2);
    }

    #[test]
    fn identical_pages_have_no_tail() {
        let pages = vec![u("http://a.com/x/page.html"), u("http://a.com/x/page.html")];
        let p = UrlPattern::summarise(&pages).unwrap();
        assert_eq!(p.prefix.as_str(), "http://a.com/x/page.html");
        assert!(!p.has_tail);
        assert_eq!(p.to_string(), "http://a.com/x/page.html  (2 pages)");
    }

    #[test]
    fn minority_extensions_are_dropped() {
        let pages = vec![
            u("http://a.com/d/1.html"),
            u("http://a.com/d/2.html"),
            u("http://a.com/d/3.php"),
        ];
        let p = UrlPattern::summarise(&pages).unwrap();
        assert_eq!(p.extension, None, "only 2/3 share .html — below 90%");
        assert_eq!(p.to_string(), "http://a.com/d/*  (3 pages)");
    }

    #[test]
    fn cross_domain_sets_are_rejected() {
        let pages = vec![u("http://a.com/x"), u("http://b.com/x")];
        assert!(UrlPattern::summarise(&pages).is_none());
        assert!(UrlPattern::summarise(&[]).is_none());
    }

    #[test]
    fn extensionless_pages_summarise_cleanly() {
        let pages = vec![
            u("https://g.com/dir/8545-jamaica"),
            u("https://g.com/dir/2-usa"),
        ];
        let p = UrlPattern::summarise(&pages).unwrap();
        assert_eq!(p.prefix.as_str(), "https://g.com/dir");
        assert_eq!(p.extension, None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The summarised prefix contains every input page, and the
            /// tail depth bound is tight.
            #[test]
            fn prefix_covers_all_pages(
                segs in proptest::collection::vec(
                    proptest::collection::vec("[a-z]{1,5}", 0..4),
                    1..10,
                )
            ) {
                let pages: Vec<SourceUrl> = segs
                    .iter()
                    .map(|s| u(&format!("http://host.com/{}", s.join("/"))))
                    .collect();
                let p = UrlPattern::summarise(&pages).unwrap();
                for page in &pages {
                    prop_assert!(p.prefix.contains(page), "{} !⊇ {}", p.prefix, page);
                    prop_assert!(page.depth() <= p.prefix.depth() + p.max_tail_depth);
                }
                prop_assert_eq!(p.num_pages, pages.len());
            }
        }
    }
}
