//! Parsed, normalised source URLs.

use std::fmt;

/// Errors from [`SourceUrl::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlError {
    /// The input has no `scheme://` separator.
    MissingScheme(String),
    /// The scheme contains characters outside `[a-zA-Z0-9+.-]`.
    InvalidScheme(String),
    /// The host component is empty.
    EmptyHost(String),
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlError::MissingScheme(u) => write!(f, "missing scheme in URL: {u:?}"),
            UrlError::InvalidScheme(u) => write!(f, "invalid scheme in URL: {u:?}"),
            UrlError::EmptyHost(u) => write!(f, "empty host in URL: {u:?}"),
        }
    }
}

impl std::error::Error for UrlError {}

/// A parsed, normalised web-source URL.
///
/// Normalisation: the scheme and host are lowercased; query strings and
/// fragments are dropped (the paper identifies sources purely by URL-path
/// hierarchy); trailing slashes are trimmed; empty path segments collapse.
///
/// The *granularity* of a URL is its [`depth`](SourceUrl::depth): 0 for a
/// bare domain, +1 per path segment. [`parent`](SourceUrl::parent) removes
/// one granularity level.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceUrl {
    canonical: String,
    // Byte offset of the end of "scheme://host" in `canonical`.
    host_end: usize,
    // Byte offsets of '/' separators that start each path segment.
    segment_starts: Vec<usize>,
}

impl SourceUrl {
    /// Parses and normalises a URL string.
    pub fn parse(input: &str) -> Result<Self, UrlError> {
        let input = input.trim();
        let (scheme, rest) = input
            .split_once("://")
            .ok_or_else(|| UrlError::MissingScheme(input.to_owned()))?;
        if scheme.is_empty()
            || !scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '+' | '.' | '-'))
        {
            return Err(UrlError::InvalidScheme(input.to_owned()));
        }
        // Strip query and fragment.
        let rest = rest.split(['?', '#']).next().unwrap_or("");
        let (host, path) = match rest.split_once('/') {
            Some((h, p)) => (h, p),
            None => (rest, ""),
        };
        if host.is_empty() {
            return Err(UrlError::EmptyHost(input.to_owned()));
        }
        let mut canonical = String::with_capacity(input.len());
        canonical.push_str(&scheme.to_ascii_lowercase());
        canonical.push_str("://");
        canonical.push_str(&host.to_ascii_lowercase());
        let host_end = canonical.len();
        let mut segment_starts = Vec::new();
        for seg in path.split('/') {
            if seg.is_empty() {
                continue;
            }
            segment_starts.push(canonical.len());
            canonical.push('/');
            canonical.push_str(seg);
        }
        Ok(SourceUrl {
            canonical,
            host_end,
            segment_starts,
        })
    }

    /// The canonical string form.
    pub fn as_str(&self) -> &str {
        &self.canonical
    }

    /// Scheme + host with no path: the web-domain granularity.
    pub fn domain(&self) -> SourceUrl {
        SourceUrl {
            canonical: self.canonical[..self.host_end].to_owned(),
            host_end: self.host_end,
            segment_starts: Vec::new(),
        }
    }

    /// The host name (lowercased).
    pub fn host(&self) -> &str {
        let after_scheme = self.canonical.find("://").expect("canonical has scheme") + 3;
        &self.canonical[after_scheme..self.host_end]
    }

    /// Number of path segments; 0 means this is a bare domain.
    pub fn depth(&self) -> usize {
        self.segment_starts.len()
    }

    /// Whether this URL is a bare domain.
    pub fn is_domain(&self) -> bool {
        self.segment_starts.is_empty()
    }

    /// Path segments in order.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        let canonical = &self.canonical;
        let n = self.segment_starts.len();
        self.segment_starts
            .iter()
            .enumerate()
            .map(move |(i, &start)| {
                let end = if i + 1 < n {
                    self.segment_starts[i + 1]
                } else {
                    canonical.len()
                };
                &canonical[start + 1..end]
            })
    }

    /// The URL one granularity level up, or `None` for a bare domain.
    pub fn parent(&self) -> Option<SourceUrl> {
        let (&last, rest) = self.segment_starts.split_last()?;
        Some(SourceUrl {
            canonical: self.canonical[..last].to_owned(),
            host_end: self.host_end,
            segment_starts: rest.to_vec(),
        })
    }

    /// All strict ancestors from the immediate parent up to the domain.
    pub fn ancestors(&self) -> Vec<SourceUrl> {
        let mut out = Vec::with_capacity(self.depth());
        let mut cur = self.parent();
        while let Some(u) = cur {
            cur = u.parent();
            out.push(u);
        }
        out
    }

    /// Appends one path segment, producing a finer-grained URL.
    pub fn child(&self, segment: &str) -> SourceUrl {
        let seg = segment.trim_matches('/');
        let mut canonical = self.canonical.clone();
        let mut segment_starts = self.segment_starts.clone();
        segment_starts.push(canonical.len());
        canonical.push('/');
        canonical.push_str(seg);
        SourceUrl {
            canonical,
            host_end: self.host_end,
            segment_starts,
        }
    }

    /// Whether `self` is `other` or an ancestor of `other` in the URL
    /// hierarchy (prefix on whole segments, same domain).
    pub fn contains(&self, other: &SourceUrl) -> bool {
        if self.host_end != other.host_end
            || self.canonical[..self.host_end] != other.canonical[..other.host_end]
        {
            return false;
        }
        if self.depth() > other.depth() {
            return false;
        }
        other.canonical.starts_with(&self.canonical)
            && (other.canonical.len() == self.canonical.len()
                || other.canonical.as_bytes()[self.canonical.len()] == b'/')
    }
}

impl fmt::Display for SourceUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical)
    }
}

impl std::str::FromStr for SourceUrl {
    type Err = UrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SourceUrl::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalises_case_and_trailing_slash() {
        let u = SourceUrl::parse("HTTP://Space.Skyrocket.DE/doc_sat/").unwrap();
        assert_eq!(u.as_str(), "http://space.skyrocket.de/doc_sat");
        assert_eq!(u.depth(), 1);
    }

    #[test]
    fn parse_drops_query_and_fragment() {
        let u = SourceUrl::parse("https://a.com/x/y?q=1#frag").unwrap();
        assert_eq!(u.as_str(), "https://a.com/x/y");
    }

    #[test]
    fn parse_collapses_empty_segments() {
        let u = SourceUrl::parse("https://a.com//x///y").unwrap();
        assert_eq!(u.as_str(), "https://a.com/x/y");
        assert_eq!(u.depth(), 2);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(matches!(
            SourceUrl::parse("no-scheme.com/x"),
            Err(UrlError::MissingScheme(_))
        ));
        assert!(matches!(
            SourceUrl::parse("ht tp://a.com"),
            Err(UrlError::InvalidScheme(_))
        ));
        assert!(matches!(
            SourceUrl::parse("http:///x"),
            Err(UrlError::EmptyHost(_))
        ));
    }

    #[test]
    fn parent_walks_one_level() {
        let page = SourceUrl::parse("http://space.skyrocket.de/doc_lau_fam/atlas.htm").unwrap();
        let sub = page.parent().unwrap();
        assert_eq!(sub.as_str(), "http://space.skyrocket.de/doc_lau_fam");
        let dom = sub.parent().unwrap();
        assert_eq!(dom.as_str(), "http://space.skyrocket.de");
        assert!(dom.parent().is_none());
        assert!(dom.is_domain());
    }

    #[test]
    fn ancestors_lists_all_coarser_granularities() {
        let page = SourceUrl::parse("https://www.cdc.gov/niosh/ipcsneng/neng0363.html").unwrap();
        let anc = page.ancestors();
        let strs: Vec<&str> = anc.iter().map(|u| u.as_str()).collect();
        assert_eq!(
            strs,
            vec![
                "https://www.cdc.gov/niosh/ipcsneng",
                "https://www.cdc.gov/niosh",
                "https://www.cdc.gov",
            ]
        );
    }

    #[test]
    fn segments_iterate_in_order() {
        let u = SourceUrl::parse("https://a.com/x/y/z.html").unwrap();
        let segs: Vec<&str> = u.segments().collect();
        assert_eq!(segs, vec!["x", "y", "z.html"]);
    }

    #[test]
    fn child_round_trips_with_parent() {
        let dom = SourceUrl::parse("https://golfadvisor.com").unwrap();
        let child = dom.child("course-directory");
        assert_eq!(child.as_str(), "https://golfadvisor.com/course-directory");
        assert_eq!(child.parent().unwrap(), dom);
    }

    #[test]
    fn host_and_domain_accessors() {
        let u = SourceUrl::parse("https://www.golfadvisor.com/course-directory/2-usa").unwrap();
        assert_eq!(u.host(), "www.golfadvisor.com");
        assert_eq!(u.domain().as_str(), "https://www.golfadvisor.com");
        assert_eq!(u.domain().depth(), 0);
    }

    #[test]
    fn contains_is_segment_aware() {
        let a = SourceUrl::parse("https://a.com/doc").unwrap();
        let b = SourceUrl::parse("https://a.com/doc/page.htm").unwrap();
        let c = SourceUrl::parse("https://a.com/doc_sat").unwrap();
        assert!(a.contains(&b));
        assert!(a.contains(&a));
        assert!(
            !a.contains(&c),
            "doc is not a prefix of doc_sat on segments"
        );
        assert!(!b.contains(&a));
        let other = SourceUrl::parse("https://b.com/doc").unwrap();
        assert!(!a.contains(&other));
    }

    #[test]
    fn display_and_fromstr() {
        let u: SourceUrl = "https://a.com/x".parse().unwrap();
        assert_eq!(u.to_string(), "https://a.com/x");
    }
}
