//! # midas-weburl — URL parsing and the multi-granularity source hierarchy
//!
//! The MIDAS paper (§II-A, §III-B) treats web sources at *every* granularity
//! of the URL hierarchy: a web domain (`https://www.cdc.gov`), a sub-domain
//! path prefix (`https://www.cdc.gov/niosh`), or an individual page
//! (`https://www.cdc.gov/niosh/ipcsneng/neng0363.html`). The multi-source
//! framework shards extracted facts and discovered slices by the *parent*
//! source at each round, walking the hierarchy bottom-up.
//!
//! This crate provides:
//!
//! * [`SourceUrl`] — a parsed, normalised URL with granularity operations
//!   (`parent`, `ancestors`, `depth`);
//! * [`SourceTrie`] — the hierarchy over a corpus of page URLs, materialising
//!   every intermediate granularity exactly once;
//! * [`shard_by_parent`] — the sharding step of the framework.
//!
//! ```
//! use midas_weburl::SourceUrl;
//!
//! let page = SourceUrl::parse("http://space.skyrocket.de/doc_lau_fam/atlas.htm").unwrap();
//! let sub = page.parent().unwrap();
//! assert_eq!(sub.as_str(), "http://space.skyrocket.de/doc_lau_fam");
//! assert_eq!(sub.parent().unwrap().as_str(), "http://space.skyrocket.de");
//! ```

#![warn(missing_docs)]

pub mod hierarchy;
pub mod pattern;
pub mod shard;
pub mod url;

pub use hierarchy::{SourceNode, SourceNodeId, SourceTrie};
pub use pattern::UrlPattern;
pub use shard::{shard_by_parent, Shard};
pub use url::{SourceUrl, UrlError};
