//! The source hierarchy over a URL corpus.
//!
//! Given the page URLs a corpus was extracted from, [`SourceTrie`]
//! materialises every URL granularity exactly once — each page, each
//! intermediate path prefix, and each domain — and exposes parent/children
//! navigation plus level-by-level iteration, which is what the §III-B
//! framework rounds walk over.

use crate::url::SourceUrl;
use std::collections::HashMap;

/// Index of a node inside a [`SourceTrie`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceNodeId(u32);

impl SourceNodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One web source (at some granularity) in the hierarchy.
#[derive(Debug, Clone)]
pub struct SourceNode {
    /// The source URL of this node.
    pub url: SourceUrl,
    /// Parent node (None for domains).
    pub parent: Option<SourceNodeId>,
    /// Children nodes (finer granularities).
    pub children: Vec<SourceNodeId>,
    /// Whether this URL appeared verbatim in the input corpus (i.e. facts
    /// were extracted directly from it), as opposed to being materialised as
    /// an intermediate granularity.
    pub is_leaf_source: bool,
}

/// A forest over all granularities of a URL corpus.
#[derive(Debug, Default)]
pub struct SourceTrie {
    nodes: Vec<SourceNode>,
    by_url: HashMap<SourceUrl, SourceNodeId>,
    roots: Vec<SourceNodeId>,
    max_depth: usize,
}

impl SourceTrie {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the hierarchy from corpus page URLs.
    pub fn build<'a>(urls: impl IntoIterator<Item = &'a SourceUrl>) -> Self {
        let mut trie = SourceTrie::new();
        for u in urls {
            trie.insert(u.clone());
        }
        trie
    }

    /// Inserts a source URL (and all its ancestors), marking it as a leaf
    /// source. Returns its node id.
    pub fn insert(&mut self, url: SourceUrl) -> SourceNodeId {
        let id = self.intern_node(url);
        self.nodes[id.index()].is_leaf_source = true;
        id
    }

    fn intern_node(&mut self, url: SourceUrl) -> SourceNodeId {
        if let Some(&id) = self.by_url.get(&url) {
            return id;
        }
        let parent = url.parent().map(|p| self.intern_node(p));
        let id = SourceNodeId(u32::try_from(self.nodes.len()).expect("trie overflow"));
        self.max_depth = self.max_depth.max(url.depth());
        self.nodes.push(SourceNode {
            url: url.clone(),
            parent,
            children: Vec::new(),
            is_leaf_source: false,
        });
        match parent {
            Some(p) => self.nodes[p.index()].children.push(id),
            None => self.roots.push(id),
        }
        self.by_url.insert(url, id);
        id
    }

    /// Looks a URL up.
    pub fn get(&self, url: &SourceUrl) -> Option<SourceNodeId> {
        self.by_url.get(url).copied()
    }

    /// Node accessor.
    pub fn node(&self, id: SourceNodeId) -> &SourceNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes (all granularities).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Domain-level roots.
    pub fn roots(&self) -> &[SourceNodeId] {
        &self.roots
    }

    /// Deepest depth present.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// All node ids at exactly `depth` path segments.
    pub fn nodes_at_depth(&self, depth: usize) -> Vec<SourceNodeId> {
        (0..self.nodes.len())
            .map(|i| SourceNodeId(i as u32))
            .filter(|id| self.node(*id).url.depth() == depth)
            .collect()
    }

    /// Iterates all nodes.
    pub fn iter(&self) -> impl Iterator<Item = (SourceNodeId, &SourceNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (SourceNodeId(i as u32), n))
    }

    /// All leaf-source node ids (URLs that appeared in the corpus).
    pub fn leaf_sources(&self) -> Vec<SourceNodeId> {
        self.iter()
            .filter(|(_, n)| n.is_leaf_source)
            .map(|(id, _)| id)
            .collect()
    }

    /// All descendant leaf sources of `id`, including `id` itself when it is
    /// a leaf source.
    pub fn descendant_leaves(&self, id: SourceNodeId) -> Vec<SourceNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let n = self.node(cur);
            if n.is_leaf_source {
                out.push(cur);
            }
            stack.extend(n.children.iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skyrocket_urls() -> Vec<SourceUrl> {
        [
            "http://space.skyrocket.de/doc_sat/mercury-history.htm",
            "http://space.skyrocket.de/doc_sat/gemini-history.htm",
            "http://space.skyrocket.de/doc_sat/apollo-history.htm",
            "http://space.skyrocket.de/doc_lau_fam/atlas.htm",
            "http://space.skyrocket.de/doc_lau_fam/castor-4.htm",
        ]
        .iter()
        .map(|u| SourceUrl::parse(u).unwrap())
        .collect()
    }

    #[test]
    fn build_materialises_every_granularity() {
        let trie = SourceTrie::build(&skyrocket_urls());
        // 5 pages + 2 sub-domains + 1 domain = 8 — the "7 web sources"
        // of §III-B plus the domain counted once.
        assert_eq!(trie.len(), 8);
        assert_eq!(trie.roots().len(), 1);
        assert_eq!(trie.max_depth(), 2);
    }

    #[test]
    fn leaf_sources_are_only_corpus_urls() {
        let urls = skyrocket_urls();
        let trie = SourceTrie::build(&urls);
        let leaves = trie.leaf_sources();
        assert_eq!(leaves.len(), 5);
        let sub = SourceUrl::parse("http://space.skyrocket.de/doc_sat").unwrap();
        let sub_id = trie.get(&sub).unwrap();
        assert!(!trie.node(sub_id).is_leaf_source);
    }

    #[test]
    fn parent_child_links_are_consistent() {
        let trie = SourceTrie::build(&skyrocket_urls());
        for (id, node) in trie.iter() {
            if let Some(p) = node.parent {
                assert!(trie.node(p).children.contains(&id));
                assert_eq!(node.url.parent().unwrap(), trie.node(p).url);
            } else {
                assert!(trie.roots().contains(&id));
                assert!(node.url.is_domain());
            }
        }
    }

    #[test]
    fn nodes_at_depth_partition_the_trie() {
        let trie = SourceTrie::build(&skyrocket_urls());
        let total: usize = (0..=trie.max_depth())
            .map(|d| trie.nodes_at_depth(d).len())
            .sum();
        assert_eq!(total, trie.len());
        assert_eq!(trie.nodes_at_depth(0).len(), 1);
        assert_eq!(trie.nodes_at_depth(1).len(), 2);
        assert_eq!(trie.nodes_at_depth(2).len(), 5);
    }

    #[test]
    fn descendant_leaves_cover_subtrees() {
        let trie = SourceTrie::build(&skyrocket_urls());
        let dom = SourceUrl::parse("http://space.skyrocket.de").unwrap();
        let dom_id = trie.get(&dom).unwrap();
        assert_eq!(trie.descendant_leaves(dom_id).len(), 5);
        let fam = SourceUrl::parse("http://space.skyrocket.de/doc_lau_fam").unwrap();
        let fam_id = trie.get(&fam).unwrap();
        assert_eq!(trie.descendant_leaves(fam_id).len(), 2);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut trie = SourceTrie::new();
        let u = SourceUrl::parse("https://a.com/x").unwrap();
        let id1 = trie.insert(u.clone());
        let id2 = trie.insert(u);
        assert_eq!(id1, id2);
        assert_eq!(trie.len(), 2); // node + its domain
    }

    #[test]
    fn multiple_domains_form_a_forest() {
        let urls: Vec<SourceUrl> = ["https://a.com/x", "https://b.com/y/z"]
            .iter()
            .map(|u| SourceUrl::parse(u).unwrap())
            .collect();
        let trie = SourceTrie::build(&urls);
        assert_eq!(trie.roots().len(), 2);
        assert_eq!(trie.max_depth(), 2);
    }

    #[test]
    fn inserting_a_domain_marks_it_leaf() {
        let mut trie = SourceTrie::new();
        let dom = SourceUrl::parse("https://a.com").unwrap();
        trie.insert(dom.clone());
        let id = trie.get(&dom).unwrap();
        assert!(trie.node(id).is_leaf_source);
        assert_eq!(trie.len(), 1);
    }
}
