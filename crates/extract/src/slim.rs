//! The ReVerb-Slim / NELL-Slim generators (Figures 8 and 9).
//!
//! §IV-B: *"we manually select 100 web sources, such that 50 of them contain
//! at least one high-profit slice, with respect to an empty knowledge
//! base"*. The slim corpora carry a curated silver standard of optimal
//! slices, which the evaluation then partially loads into the knowledge base
//! to emulate different coverage levels.
//!
//! The generator plants 50 "good" domains — each with one or two verticals
//! whose sections yield high-profit slices — and 50 forum/news-like noise
//! domains with loosely related facts. The flavours differ the way the real
//! datasets do (Figure 7):
//!
//! * **ReVerb-Slim** (OpenIE): a large unlexicalised predicate vocabulary
//!   (`be_a_city_in`, …), 33 K predicates at full scale, 859 K facts.
//! * **NELL-Slim** (ClosedIE): a fixed ontology of 280 predicates, 508 K
//!   facts.

use crate::model::{Dataset, GroundTruth};
use crate::vertical::{
    plant_noise_source, plant_vertical, predicate_pool, CorpusBuilder, VerticalSpec,
};
use midas_kb::{Interner, KnowledgeBase};
use midas_weburl::SourceUrl;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which real slim dataset to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlimFlavor {
    /// OpenIE shape: huge predicate vocabulary.
    ReVerb,
    /// ClosedIE shape: 280 ontology predicates.
    Nell,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SlimConfig {
    /// Dataset flavour.
    pub flavor: SlimFlavor,
    /// Scale factor relative to the paper's dataset sizes (1.0 ≈ 859 K /
    /// 508 K facts). Default 0.02 keeps experiment runs interactive.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SlimConfig {
    /// ReVerb-Slim at the default scale.
    pub fn reverb(seed: u64) -> Self {
        SlimConfig {
            flavor: SlimFlavor::ReVerb,
            scale: 0.02,
            seed,
        }
    }

    /// NELL-Slim at the default scale.
    pub fn nell(seed: u64) -> Self {
        SlimConfig {
            flavor: SlimFlavor::Nell,
            scale: 0.02,
            seed,
        }
    }

    /// Overrides the scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

/// Themes for the good sources; the first rows echo Figure 8.
const GOOD_THEMES: &[(&str, &str, &str)] = &[
    (
        "nationsencyclopedia.com",
        "nation",
        "Information about nations",
    ),
    ("drugs.com", "drug", "Medicinal chemicals"),
    ("citytowninfo.com", "us_city", "US city profiles"),
    ("u-s-history.com", "us_event", "Events in US history"),
    ("schoolmap.org", "school", "Education organizations"),
    ("golfadvisor.com", "golf_course", "US golf courses"),
    ("marinespecies.org", "marine_species", "Biology facts"),
    ("boardgaming.com", "board_game", "Board games"),
    (
        "skyscrapercenter.com",
        "skyscraper",
        "Skyscraper architectures",
    ),
    (
        "archive.india.gov.in",
        "indian_politician",
        "Indian politicians",
    ),
];

/// Generates a slim dataset with its silver standard.
pub fn generate(cfg: &SlimConfig) -> Dataset {
    // Decorrelate the flavours: identical seeds must not produce identical
    // corpora topologies for ReVerb-Slim and NELL-Slim.
    let flavor_salt = match cfg.flavor {
        SlimFlavor::ReVerb => 0x5eed_0001u64,
        SlimFlavor::Nell => 0x5eed_0002u64,
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ flavor_salt);
    let mut terms = Interner::new();
    let mut builder = CorpusBuilder::new();
    let mut truth = GroundTruth::default();

    let (target_facts, noise_pred_count, flavor_name) = match cfg.flavor {
        // The OpenIE predicate pool stays well above NELL's 280 at any scale.
        SlimFlavor::ReVerb => (
            859_000.0 * cfg.scale,
            ((33_000.0 * cfg.scale) as usize).max(400),
            "reverb-slim",
        ),
        SlimFlavor::Nell => (508_000.0 * cfg.scale, 240, "nell-slim"),
    };
    // Facts split roughly evenly between good and noise domains; good
    // domains put ~80% of their facts into vertical sections.
    let facts_per_good_domain = (target_facts * 0.5 / 50.0).max(60.0) as usize;
    let facts_per_noise_domain = (target_facts * 0.5 / 50.0).max(60.0) as usize;

    let noise_preds = match cfg.flavor {
        SlimFlavor::ReVerb => predicate_pool(
            &mut terms,
            "be_related_to_variant",
            noise_pred_count.max(50),
        ),
        SlimFlavor::Nell => predicate_pool(&mut terms, "concept:relation", noise_pred_count),
    };

    // 50 good domains.
    for g in 0..50usize {
        let (host, theme, description) = GOOD_THEMES[g % GOOD_THEMES.len()];
        let domain =
            SourceUrl::parse(&format!("http://site{g:02}.{host}")).expect("static URL parses");
        // Some good domains are "pure": a single vertical and no chatter,
        // so the whole source *is* the slice. These are the sources the
        // NAIVE baseline can get right (§IV-C notes its accuracy "heavily
        // relies on the portion of web sources that contain only one
        // high-profit slice"). The two flavours differ in topology: NELL
        // sources are fewer-but-denser, ReVerb sources more fragmented.
        let (pure, verticals) = match cfg.flavor {
            SlimFlavor::ReVerb => {
                let pure = g % 3 == 0;
                (pure, if pure { 1 } else { 1 + (g % 2) })
            }
            SlimFlavor::Nell => {
                let pure = g % 4 == 0;
                (pure, if pure { 1 } else { 1 + ((g + 1) % 2) })
            }
        };
        let facts_per_vertical = facts_per_good_domain * 8 / 10 / verticals;
        for v in 0..verticals {
            let section = domain.child(if v == 0 { "directory" } else { "archive" });
            let entities = (facts_per_vertical / 5).max(8);
            // Each vertical of a domain is a genuinely different topic
            // (e.g. current vs historical listings) with its own defining
            // property values, so each yields its own silver slice.
            let kind = format!("{theme}_kind{v}");
            let spec = VerticalSpec {
                name: format!("{theme}_{g}_{v}"),
                description: format!("{description} (site {g}, section {v})"),
                defining: match cfg.flavor {
                    SlimFlavor::ReVerb => vec![
                        ("be_a".to_owned(), kind.clone()),
                        ("be_listed_in".to_owned(), format!("{host}_section{v}")),
                    ],
                    SlimFlavor::Nell => vec![
                        ("generalizations".to_owned(), format!("concept/{kind}")),
                        (
                            "concept:listedin".to_owned(),
                            format!("concept/site/{host}{v}"),
                        ),
                    ],
                },
                extra_predicates: match cfg.flavor {
                    SlimFlavor::ReVerb => vec![
                        format!("have_{theme}_rating"),
                        format!("be_located_in"),
                        format!("be_founded_in"),
                    ],
                    SlimFlavor::Nell => vec![
                        "concept:locatedin".to_owned(),
                        "concept:foundedin".to_owned(),
                        "concept:hasrating".to_owned(),
                    ],
                },
                num_entities: match cfg.flavor {
                    SlimFlavor::ReVerb => entities,
                    // ClosedIE sources are denser: fewer, larger verticals.
                    SlimFlavor::Nell => entities + entities / 3,
                },
                extra_facts_per_entity: match cfg.flavor {
                    SlimFlavor::ReVerb => (1, 3),
                    SlimFlavor::Nell => (2, 4),
                },
                entities_per_page: match cfg.flavor {
                    SlimFlavor::ReVerb => 4,
                    SlimFlavor::Nell => 6,
                },
            };
            plant_vertical(
                &mut rng,
                &mut terms,
                &mut builder,
                &mut truth,
                &section,
                &spec,
            );
        }
        // In non-pure domains, the remaining ~20% of facts are unstructured
        // chatter (news items, about pages) that no slice should cover.
        if !pure {
            let chatter = (facts_per_good_domain / 10).max(4);
            plant_noise_source(
                &mut rng,
                &mut terms,
                &mut builder,
                &domain.child("news"),
                chatter,
                &noise_preds,
                6,
            );
        }
    }

    // 50 noise domains.
    for n in 0..50usize {
        let host = match n % 3 {
            0 => format!("http://blogs.news{n:02}.com"),
            1 => format!("http://voices.paper{n:02}.com"),
            _ => format!("http://forum{n:02}.example.net"),
        };
        let domain = SourceUrl::parse(&host).expect("static URL parses");
        let entities = (facts_per_noise_domain / 2).max(10);
        plant_noise_source(
            &mut rng,
            &mut terms,
            &mut builder,
            &domain,
            entities,
            &noise_preds,
            8,
        );
        let _ = rng.gen::<u32>(); // decorrelate consecutive domains
    }

    Dataset {
        name: flavor_name.to_owned(),
        terms,
        sources: builder.finish(),
        kb: KnowledgeBase::new(),
        truth,
        faults: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(flavor: SlimFlavor) -> Dataset {
        generate(&SlimConfig {
            flavor,
            scale: 0.002,
            seed: 7,
        })
    }

    #[test]
    fn reverb_slim_has_100_domains_50_with_gold() {
        let ds = tiny(SlimFlavor::ReVerb);
        let mut domains: Vec<String> = ds
            .sources
            .iter()
            .map(|s| s.url.domain().as_str().to_owned())
            .collect();
        domains.sort();
        domains.dedup();
        assert_eq!(domains.len(), 100);
        let mut gold_domains: Vec<String> = ds
            .truth
            .gold
            .iter()
            .map(|g| g.source.domain().as_str().to_owned())
            .collect();
        gold_domains.sort();
        gold_domains.dedup();
        assert_eq!(gold_domains.len(), 50);
        assert!(ds.truth.gold.len() >= 50, "some domains have two slices");
    }

    #[test]
    fn nell_slim_has_bounded_predicates() {
        let ds = tiny(SlimFlavor::Nell);
        let stats = ds.stats();
        assert!(
            stats.num_predicates <= 330,
            "ClosedIE predicate vocabulary stays within the NELL ontology size, got {}",
            stats.num_predicates
        );
    }

    #[test]
    fn reverb_slim_has_larger_vocabulary_than_nell_slim() {
        let r = tiny(SlimFlavor::ReVerb);
        let n = tiny(SlimFlavor::Nell);
        assert!(r.stats().num_predicates > n.stats().num_predicates);
    }

    #[test]
    fn gold_slices_live_in_good_domains_only() {
        let ds = tiny(SlimFlavor::ReVerb);
        for g in &ds.truth.gold {
            let d = g.source.domain();
            assert!(
                !d.as_str().contains("blogs.") && !d.as_str().contains("forum"),
                "gold slice in noise domain {d}"
            );
            assert!(!g.entities.is_empty());
            assert_eq!(g.properties.len(), 2);
        }
    }

    #[test]
    fn homogeneous_entities_are_exactly_the_planted_ones() {
        let ds = tiny(SlimFlavor::ReVerb);
        let planted: usize = ds.truth.gold.iter().map(|g| g.entities.len()).sum();
        assert_eq!(ds.truth.homogeneous_entities.len(), planted);
    }

    #[test]
    fn kb_starts_empty() {
        let ds = tiny(SlimFlavor::Nell);
        assert!(ds.kb.is_empty());
    }

    #[test]
    fn scale_controls_volume() {
        let small = generate(&SlimConfig {
            flavor: SlimFlavor::ReVerb,
            scale: 0.002,
            seed: 1,
        });
        let large = generate(&SlimConfig {
            flavor: SlimFlavor::ReVerb,
            scale: 0.03,
            seed: 1,
        });
        assert!(large.total_facts() > small.total_facts() * 2);
    }
}
